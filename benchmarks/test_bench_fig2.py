"""Bench E-FIG2: regenerate the Figure 2 spectrogram experiment."""

from repro.experiments import get_experiment


def test_bench_fig2(run_once):
    result = run_once(get_experiment("fig2"), quick=True, seed=1)
    by_component = {r["component"]: r for r in result.rows}
    assert by_component["1*f0"]["on_off_contrast"] > 5
    assert by_component["2*f0"]["on_off_contrast"] > 5
