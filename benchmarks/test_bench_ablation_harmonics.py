"""Ablation: the harmonic set S in Eq. 1.

The paper sums the fundamental and first harmonic "to increase the
difference in magnitude between bit 0 and bit 1".  This bench measures
the one/zero separation of the per-bit powers for S = {f0},
S = {f0, 2*f0} and a widened-bin variant.
"""

import numpy as np
import pytest

from repro.core.acquisition import AcquisitionConfig, acquire
from repro.core.labeling import bit_average_powers
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


@pytest.fixture(scope="module")
def capture_and_decode():
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=13)
    payload = np.random.default_rng(44).integers(0, 2, size=120)
    result = link.run(payload)
    return link, result


def separation_for(link, result, harmonics, bin_halfwidth=1):
    config = AcquisitionConfig(
        fft_size=256, hop=32, harmonics=harmonics, bin_halfwidth=bin_halfwidth
    )
    envelope = acquire(result.capture, link.vrm_frequency_hz, config)
    # Reuse the decoded starts, rescaled to this envelope's frame grid.
    starts = result.decode.starts
    powers = bit_average_powers(envelope, starts)
    bits = result.decode.bits
    ones = powers[bits == 1]
    zeros = powers[bits == 0]
    return float(ones.mean() - zeros.mean())


def test_bench_ablation_harmonics(benchmark, capture_and_decode):
    link, result = capture_and_decode

    def sweep():
        return {
            "f0 only": separation_for(link, result, (1,)),
            "f0 + 2f0": separation_for(link, result, (1, 2)),
            "f0 + 2f0, wide bins": separation_for(
                link, result, (1, 2), bin_halfwidth=3
            ),
        }

    seps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Eq. 1's motivation: adding the first harmonic increases the
    # absolute 0/1 magnitude separation.
    assert seps["f0 + 2f0"] > seps["f0 only"]
