"""Bench E-BGND: transmission under resource-intensive background load."""

from repro.experiments import get_experiment


def test_bench_background(run_once):
    result = run_once(get_experiment("background"), quick=True, seed=0)
    rows = {r["condition"]: r for r in result.rows}
    quiet = rows["quiet, full rate"]
    loaded = rows["background, full rate"]
    slowed = rows["background, rate -15%"]
    # Background load degrades the raw channel; slowing down recovers
    # (at least) the insertion rate.
    assert loaded["BER"] + loaded["IP"] > quiet["BER"] + quiet["IP"]
    assert slowed["IP"] <= loaded["IP"]
