"""Bench E-FIG4: the Eq. 1 envelope / bit-overlay experiment."""

from repro.experiments import get_experiment


def test_bench_fig4(run_once):
    result = run_once(get_experiment("fig4"), quick=True, seed=1)
    rows = {r["quantity"]: r for r in result.rows}
    assert rows["one/zero separation"]["mean"] > 5
