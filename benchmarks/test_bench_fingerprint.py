"""Bench: website fingerprinting accuracy (Section III attack model)."""

from repro.experiments import get_experiment


def test_bench_fingerprint(run_once):
    result = run_once(get_experiment("fingerprint"), quick=True, seed=0)
    row = result.rows[0]
    assert row["accuracy"] > 4 * row["chance"]
