"""Ablation: STFT size and hop.

The paper uses M=1024 with "maximum overlapping" (hop 1); DESIGN.md
documents why this library defaults to M=256 with hop 32.  This bench
sweeps (fft_size, hop) and reports the total error rate of each
configuration, demonstrating (a) insensitivity to hop well below one
bit period and (b) the deletion blow-up once the window spans more than
a bit.
"""

import numpy as np

from repro.core.acquisition import AcquisitionConfig
from repro.core.decoder import DecoderConfig
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


def total_error_rate(config, payload):
    link = CovertLink(
        machine=DELL_INSPIRON,
        profile=TINY,
        seed=17,
        decoder_config=DecoderConfig(acquisition=config),
    )
    m = link.run(payload).metrics
    return m.ber + m.insertion_probability + m.deletion_probability


def test_bench_ablation_fft_and_hop(benchmark):
    payload = np.random.default_rng(48).integers(0, 2, size=120)

    def sweep():
        return {
            (256, 16): total_error_rate(
                AcquisitionConfig(fft_size=256, hop=16), payload
            ),
            (256, 32): total_error_rate(
                AcquisitionConfig(fft_size=256, hop=32), payload
            ),
            (256, 64): total_error_rate(
                AcquisitionConfig(fft_size=256, hop=64), payload
            ),
            (1024, 32): total_error_rate(
                AcquisitionConfig(fft_size=1024, hop=32), payload
            ),
        }

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Hop insensitivity at fixed window size.
    assert abs(errors[(256, 16)] - errors[(256, 32)]) < 0.05
    # A window longer than a bit period costs real errors.
    assert errors[(1024, 32)] > errors[(256, 32)]
