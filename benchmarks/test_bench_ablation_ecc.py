"""Ablation: error-correcting code on vs off.

The paper adds a simple distance-3 code so residual *substitution*
errors do not reach the payload, noting that deletions are rare enough
(<0.2%) not to matter.  Two facts are demonstrated here on the real
decoded stream of a near-field link:

1. against substitution errors (injected at 1%, i.e. the paper's upper
   BER band), Hamming(7,4) removes nearly all payload errors;
2. against *deletions*, a block code is useless or harmful (codeword
   boundaries shift) - which is exactly why the receiver's gap-filling
   step must keep the deletion rate near zero before coding can help.
"""

import numpy as np

from repro.core.align import align_bits
from repro.core.coding import hamming_decode, hamming_encode
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


def test_bench_ablation_ecc(benchmark):
    rng = np.random.default_rng(47)
    payload = rng.integers(0, 2, size=240)
    coded = hamming_encode(payload)

    def compare():
        # 1% substitution channel, as measured on the noisier Table II
        # laptops.
        flip = rng.random(coded.size) < 0.01
        received = coded ^ flip.astype(int)
        with_ecc, _ = hamming_decode(received)
        ecc_errors = int(np.count_nonzero(with_ecc[: payload.size] != payload))

        raw_received = payload ^ (rng.random(payload.size) < 0.01).astype(int)
        raw_errors = int(np.count_nonzero(raw_received != payload))

        # Deletion channel: one missing bit early in the stream.
        deleted = np.delete(coded, 10)
        del_decoded, _ = hamming_decode(deleted)
        m = align_bits(payload, del_decoded[: payload.size])
        deletion_errors = m.bit_errors + m.deletions + m.insertions
        return raw_errors, ecc_errors, deletion_errors

    raw_errors, ecc_errors, deletion_errors = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # (1) the code removes substitution errors,
    assert ecc_errors < max(raw_errors, 1)
    # (2) but a single uncorrected deletion costs far more than the
    # substitutions ever did - keeping DP low is the receiver's job.
    assert deletion_errors > raw_errors


def test_bench_ecc_on_real_link(benchmark):
    """End-to-end: a clean near-field link plus ECC stays error-free."""
    link = CovertLink(
        machine=DELL_INSPIRON, profile=TINY, seed=16, use_ecc=True
    )
    payload = np.random.default_rng(48).integers(0, 2, size=120)

    def run():
        from repro.core.sync import strip_header

        result = link.run(payload)
        recovered = strip_header(result.decode.bits, link.frame_format)
        assert recovered is not None
        data, corrected = hamming_decode(recovered)
        m = align_bits(payload, data[: payload.size])
        return m.bit_errors + m.deletions + m.insertions

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert errors <= 2
