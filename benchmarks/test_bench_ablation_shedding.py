"""Ablation: what actually sets the channel's OOK depth.

Section II attributes the side channel to the VRM's light-load phase
shedding.  This bench measures the envelope's on/off contrast (the
channel's raw SNR) while sweeping (a) the shedding threshold and (b)
the processor's deep-idle residual current, and documents a subtle
point the simulation makes measurable: the f0 *line amplitude* is
proportional to the load current in both switching regimes - shedding
at rate f0/m with charge m*q has the same f0 Fourier component as
every-period switching with charge q.  The OOK depth is therefore set
by the active/idle *current ratio* (i.e. by the C-states); shedding
changes the spectral structure (subharmonics, efficiency) rather than
the line depth.
"""

import numpy as np

from repro.core.acquisition import AcquisitionConfig, acquire
from repro.em.environment import near_field_scenario
from repro.params import TINY
from repro.power.pmu import PMU
from repro.power.states import default_table
from repro.power.workload import alternating_workload
from repro.sdr.rtlsdr import RtlSdrV3
from repro.systems.laptops import DELL_INSPIRON
from repro.vrm.buck import BuckConverter, BuckDesign
from repro.vrm.emission import EmissionModel


def contrast_for(shed_fraction: float, deep_idle_current_a: float) -> float:
    machine = DELL_INSPIRON
    profile = TINY
    rng = np.random.default_rng(3)
    table = default_table(deep_idle_current_a=deep_idle_current_a)
    pmu = PMU(table, governor=machine.governor(table, profile), rng=rng)
    workload = alternating_workload(
        profile.dilate(8e-3), profile.dilate(1e-3), profile.dilate(1e-3)
    )
    trace = pmu.run(workload)
    load = trace.current_draw(table.current_a)
    f0 = machine.vrm_frequency_hz / profile.total_freq_divisor
    design = BuckDesign(switching_frequency_hz=f0, shed_fraction=shed_fraction)
    bursts = BuckConverter(design, rng=rng).simulate(load)
    wave = EmissionModel().synthesize(bursts, profile.rf_sample_rate_hz)
    scenario = near_field_scenario(
        1.5 * f0, physics_frequency_hz=1.5 * machine.vrm_frequency_hz
    )
    received = scenario.apply(wave, profile.rf_sample_rate_hz, rng)
    capture = RtlSdrV3(sample_rate=profile.sdr_sample_rate_hz).capture(
        received, profile.rf_sample_rate_hz, 1.5 * f0, rng
    )
    envelope = acquire(capture, f0, AcquisitionConfig(fft_size=256, hop=64))
    hi = float(np.percentile(envelope.samples, 85))
    lo = float(np.percentile(envelope.samples, 15))
    return hi / max(lo, 1e-9)


def test_bench_ablation_shedding_and_idle_current(benchmark):
    def sweep():
        return {
            ("shed=0.002", "idle=0.15A"): contrast_for(0.002, 0.15),
            ("shed=0.12", "idle=0.15A"): contrast_for(0.12, 0.15),
            ("shed=0.12", "idle=1.5A"): contrast_for(0.12, 1.5),
            ("shed=0.12", "idle=4A"): contrast_for(0.12, 4.0),
        }

    contrasts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # (a) OOK depth tracks the active/idle current ratio...
    assert (
        contrasts[("shed=0.12", "idle=0.15A")]
        > 2 * contrasts[("shed=0.12", "idle=1.5A")]
        > 2 * contrasts[("shed=0.12", "idle=4A")]
    )
    # ...(b) and is insensitive to the shedding threshold itself: the
    # f0 line amplitude is current-proportional in both regimes.
    lo_shed = contrasts[("shed=0.002", "idle=0.15A")]
    hi_shed = contrasts[("shed=0.12", "idle=0.15A")]
    assert 0.5 < lo_shed / hi_shed < 2.0
