"""Bench E-FIG7: bimodal power distribution and threshold selection."""

from repro.experiments import get_experiment


def test_bench_fig7(run_once):
    result = run_once(get_experiment("fig7"), quick=True, seed=1)
    rows = {r["quantity"]: r["value"] for r in result.rows}
    assert rows["threshold between modes"]
    assert rows["mode separation (hi/lo)"] > 3
