"""Bench the trial-major batched chain against the serial scalar chain.

The claim under test (ISSUE 6 tentpole): on `repro sweep receiver-grid`
the batched engine - one bincount/convolution/STFT pass per shared
stage group, scheduled by the adaptive executor's batched-serial lane -
beats trial-at-a-time naive scalar execution, with every per-trial
record bit-identical.

Measurement notes.  Shared-host CPU throttling makes single timings
swing several-fold here, so both sides are timed interleaved and the
*minimum* over rounds is compared (the ``timeit`` estimator: the min is
the least-throttled observation of a deterministic workload).  Two
ratios are recorded to ``BENCH_vector.json`` via ``extra_info``:

* ``speedup`` - whole-sweep naive/batched.  Bounded by the grid's
  sharing structure: all eight receiver variants decode one shared
  capture, and bit-identity freezes that chain's FFT arithmetic, so the
  batched sweep still pays one full scalar-equivalent chain render.
* ``per_trial_speedup`` - naive per-trial cost vs the batched
  *marginal* cost per trial (total minus the one shared chain render).
  This is the ratio that governs large homogeneous batches, where the
  one-off chain render amortises away; the >= 10x vectorization target
  applies here.
"""

import time

from repro.exec import choose_executor, execution_scope, reset_chain_cache
from repro.obs.trace import collect_events
from repro.sweep import receiver_grid, run_sweep

ROUNDS = 3


def _comparable(record):
    return {k: v for k, v in record.items() if k != "elapsed_s"}


def _time_naive(spec):
    reset_chain_cache()
    t0 = time.perf_counter()
    outcome = run_sweep(spec, naive=True, jobs=1)
    return time.perf_counter() - t0, outcome


def _time_batched(spec):
    reset_chain_cache()
    t0 = time.perf_counter()
    with execution_scope(cache_enabled=True):
        with collect_events() as events:
            outcome = run_sweep(spec, jobs=1, batch="on")
    return time.perf_counter() - t0, outcome, list(events)


def test_bench_vector_receiver_grid(benchmark):
    """Naive serial scalar vs batched engine, interleaved min-of-N."""
    spec = receiver_grid(seed=0, quick=False)

    # Warm both paths once: the first FFTs of a process run while the
    # CPU governor is still ramping, which would bias whichever side
    # goes first.
    _time_batched(spec)
    _time_naive(spec)

    naive_s, batched_s = float("inf"), float("inf")
    naive = batched = events = None
    for _ in range(ROUNDS - 1):
        b, batched_i, events_i = _time_batched(spec)
        n, naive_i = _time_naive(spec)
        if b < batched_s:
            batched_s, batched, events = b, batched_i, events_i
        if n < naive_s:
            naive_s, naive = n, naive_i

    def batched_once():
        return _time_batched(spec)

    b, batched_i, events_i = benchmark.pedantic(
        batched_once, rounds=1, iterations=1
    )
    if b < batched_s:
        batched_s, batched, events = b, batched_i, events_i
    reset_chain_cache()

    # Bit-identity: batching reorders the arithmetic across trials,
    # never within one.
    assert batched.stats["batch"] == 1.0
    assert len(batched.records) == 8
    for got, want in zip(batched.records, naive.records):
        assert _comparable(got) == _comparable(want)

    # The shared chain rendered exactly once in the batched sweep.
    chain_spans = [
        e
        for e in events
        if e.get("event") == "span" and e.get("name") == "batch.chain"
    ]
    assert len(chain_spans) == 1
    chain_s = chain_spans[0]["duration_s"]

    trials = len(batched.records)
    marginal_s = max(batched_s - chain_s, 1e-9) / trials
    per_trial_naive_s = naive_s / trials
    decision = choose_executor(trials, jobs=1, batchable=True)

    benchmark.extra_info["naive_s"] = round(naive_s, 3)
    benchmark.extra_info["batched_s"] = round(batched_s, 3)
    benchmark.extra_info["chain_s"] = round(chain_s, 3)
    benchmark.extra_info["speedup"] = round(naive_s / batched_s, 2)
    benchmark.extra_info["per_trial_naive_s"] = round(per_trial_naive_s, 4)
    benchmark.extra_info["per_trial_batched_marginal_s"] = round(
        marginal_s, 4
    )
    benchmark.extra_info["per_trial_speedup"] = round(
        per_trial_naive_s / marginal_s, 2
    )
    benchmark.extra_info["trials"] = trials
    benchmark.extra_info["warm_groups"] = batched.stats["warm_groups"]
    benchmark.extra_info["executor"] = decision.as_dict()

    # Whole-sweep floor (sharing-bounded, see module docstring) and the
    # vectorization target on the marginal per-trial cost.
    assert batched_s * 3 <= naive_s, (
        f"batched sweep {batched_s:.2f}s vs naive {naive_s:.2f}s: "
        "below the 3x whole-sweep floor"
    )
    assert marginal_s * 10 <= per_trial_naive_s, (
        f"batched marginal {marginal_s * 1e3:.1f}ms/trial vs naive "
        f"{per_trial_naive_s * 1e3:.1f}ms/trial: below the 10x "
        "vectorization target"
    )
