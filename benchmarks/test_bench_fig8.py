"""Bench E-FIG8: insertions/deletions under interrupt storms."""

from repro.experiments import get_experiment


def test_bench_fig8(run_once):
    result = run_once(get_experiment("fig8"), quick=True, seed=1)
    rows = {r["condition"]: r for r in result.rows}
    normal = rows["normal interrupts"]
    storm = rows["interrupt storm"]
    assert storm["raw_BER"] >= normal["raw_BER"]
    assert normal["payload_bit_errors"] == 0
