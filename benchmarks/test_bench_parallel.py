"""Bench the execution subsystem: trial-pool fan-out and chain cache.

Two claims are benchmarked:

* ``parallel_map`` never changes results — the Table II rows at
  ``jobs=4`` are compared against a serial reference run.  The speedup
  itself is only asserted when the host actually has spare cores
  (CI containers are often single-core, where fan-out can't win).
* the content-addressed chain cache makes receiver-only sweeps cheap —
  the same link is decoded under four acquisition configs; after the
  first config the whole analog chain (PMU/VRM/emission/propagation/
  SDR) is served from ``k_capture`` hits, and the error rates are
  bit-identical to the uncached sweep.

Timings for both sides of each comparison land in
``benchmark.extra_info`` so `--benchmark-json` output (see
``make bench-parallel``) records the actual speedups.
"""

import time

import numpy as np

from repro.core.acquisition import AcquisitionConfig
from repro.core.decoder import DecoderConfig
from repro.covert.link import CovertLink
from repro.exec import execution_scope, get_chain_cache, reset_chain_cache
from repro.exec.pool import default_jobs
from repro.experiments import get_experiment
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


def test_bench_parallel_table2(benchmark):
    """Table II at jobs=4 vs serial: identical rows, timed fan-out."""
    run = get_experiment("table2")

    with execution_scope(jobs=1, cache_enabled=False):
        t0 = time.perf_counter()
        serial = run(quick=True, seed=0)
        serial_s = time.perf_counter() - t0

    def fan_out():
        with execution_scope(jobs=4, cache_enabled=False):
            return run(quick=True, seed=0)

    parallel = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    assert parallel.rows == serial.rows  # bit-identical at any jobs
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["jobs4_s"] = round(parallel_s, 3)
    benchmark.extra_info["cpus"] = default_jobs()
    if default_jobs() >= 4:
        assert parallel_s < 0.75 * serial_s
    elif default_jobs() >= 2:
        assert parallel_s < serial_s


def _receiver_sweep():
    """Decode one link under four acquisition configs (chain is fixed)."""
    payload = np.random.default_rng(48).integers(0, 2, size=120)
    rates = {}
    for fft_size, hop in ((256, 16), (256, 32), (256, 64), (512, 32)):
        link = CovertLink(
            machine=DELL_INSPIRON,
            profile=TINY,
            seed=17,
            decoder_config=DecoderConfig(
                acquisition=AcquisitionConfig(fft_size=fft_size, hop=hop)
            ),
        )
        m = link.run(payload).metrics
        rates[(fft_size, hop)] = (
            m.ber + m.insertion_probability + m.deletion_probability
        )
    return rates


def test_bench_chain_cache_receiver_sweep(benchmark):
    """Receiver-only sweep: cached pass skips the analog chain."""
    reset_chain_cache()
    with execution_scope(cache_enabled=False):
        t0 = time.perf_counter()
        uncached = _receiver_sweep()
        uncached_s = time.perf_counter() - t0

    def cached_sweep():
        with execution_scope(cache_enabled=True):
            rates = _receiver_sweep()
            return rates, get_chain_cache().stats()

    (cached, stats) = benchmark.pedantic(cached_sweep, rounds=1, iterations=1)
    cached_s = benchmark.stats.stats.mean

    assert cached == uncached  # cache is transparent
    assert stats["hits"] >= 3  # configs 2..4 hit the capture layer
    benchmark.extra_info["uncached_s"] = round(uncached_s, 3)
    benchmark.extra_info["cached_s"] = round(cached_s, 3)
    benchmark.extra_info["speedup"] = round(uncached_s / cached_s, 2)
    benchmark.extra_info["cache"] = stats
    assert cached_s < 0.7 * uncached_s
    reset_chain_cache()
