"""Bench the execution subsystem: trial-pool fan-out and chain cache.

Two claims are benchmarked:

* the adaptive executor never regresses the Table II harness — a
  ``--jobs 4`` request is routed through
  :func:`~repro.exec.executor.choose_executor` first, and the harness
  runs at whatever worker count the decision says.  On a single-CPU
  host the decision is ``batched-serial`` (jobs=1), which is asserted:
  an earlier recording of this file blindly honoured ``jobs=4`` and
  timed the process pool 24% *slower* than serial (10.3 s vs 8.3 s) on
  1 CPU - exactly the mistake the decision table exists to prevent.
  Rows are compared against a serial reference run either way; real
  pool speedups are only asserted when the host has spare cores.
* the content-addressed chain cache makes receiver-only sweeps cheap —
  the same link is decoded under four acquisition configs; after the
  first config the whole analog chain (PMU/VRM/emission/propagation/
  SDR) is served from ``k_capture`` hits, and the error rates are
  bit-identical to the uncached sweep.

Timings for both sides of each comparison land in
``benchmark.extra_info`` so `--benchmark-json` output (see
``make bench-parallel``) records the actual speedups.
"""

import time

import numpy as np

from repro.core.acquisition import AcquisitionConfig
from repro.core.decoder import DecoderConfig
from repro.covert.link import CovertLink
from repro.exec import execution_scope, get_chain_cache, reset_chain_cache
from repro.exec.executor import choose_executor, effective_cpus
from repro.experiments import get_experiment
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON

#: Trials each ``evaluate_link`` call fans out (its ``n_runs`` default)
#: - the task shape the executor decision is made from.
TRIALS_PER_LINK = 5


def test_bench_parallel_table2(benchmark):
    """Table II, jobs=4 requested, executor-resolved: identical rows."""
    run = get_experiment("table2")

    with execution_scope(jobs=1, cache_enabled=False):
        t0 = time.perf_counter()
        serial = run(quick=True, seed=0)
        serial_s = time.perf_counter() - t0

    decision = choose_executor(
        TRIALS_PER_LINK, jobs=4, batchable=True
    )
    cpus = effective_cpus()
    if cpus <= 1:
        # the whole point on a 1-CPU host: the pool is never forked
        assert decision.mode == "batched-serial"
        assert decision.jobs == 1

    def adaptive():
        with execution_scope(jobs=decision.jobs, cache_enabled=False):
            return run(quick=True, seed=0)

    resolved = benchmark.pedantic(adaptive, rounds=1, iterations=1)
    adaptive_s = benchmark.stats.stats.mean

    assert resolved.rows == serial.rows  # bit-identical at any jobs
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["adaptive_s"] = round(adaptive_s, 3)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["decision"] = decision.as_dict()
    if cpus <= 1:
        # same code path as serial: equal up to timer noise, never the
        # 1.24x pool regression the old recording showed
        assert adaptive_s < 1.15 * serial_s
    elif cpus >= 4:
        assert adaptive_s < 0.75 * serial_s
    else:
        assert adaptive_s < serial_s


def _receiver_sweep():
    """Decode one link under four acquisition configs (chain is fixed)."""
    payload = np.random.default_rng(48).integers(0, 2, size=120)
    rates = {}
    for fft_size, hop in ((256, 16), (256, 32), (256, 64), (512, 32)):
        link = CovertLink(
            machine=DELL_INSPIRON,
            profile=TINY,
            seed=17,
            decoder_config=DecoderConfig(
                acquisition=AcquisitionConfig(fft_size=fft_size, hop=hop)
            ),
        )
        m = link.run(payload).metrics
        rates[(fft_size, hop)] = (
            m.ber + m.insertion_probability + m.deletion_probability
        )
    return rates


def test_bench_chain_cache_receiver_sweep(benchmark):
    """Receiver-only sweep: cached pass skips the analog chain."""
    reset_chain_cache()
    with execution_scope(cache_enabled=False):
        t0 = time.perf_counter()
        uncached = _receiver_sweep()
        uncached_s = time.perf_counter() - t0

    def cached_sweep():
        with execution_scope(cache_enabled=True):
            rates = _receiver_sweep()
            return rates, get_chain_cache().stats()

    (cached, stats) = benchmark.pedantic(cached_sweep, rounds=1, iterations=1)
    cached_s = benchmark.stats.stats.mean

    assert cached == uncached  # cache is transparent
    assert stats["hits"] >= 3  # configs 2..4 hit the capture layer
    benchmark.extra_info["uncached_s"] = round(uncached_s, 3)
    benchmark.extra_info["cached_s"] = round(cached_s, 3)
    benchmark.extra_info["speedup"] = round(uncached_s / cached_s, 2)
    benchmark.extra_info["cache"] = stats
    assert cached_s < 0.7 * uncached_s
    reset_chain_cache()
