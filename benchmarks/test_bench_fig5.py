"""Bench E-FIG5: edge-detection convolution alignment."""

from repro.experiments import get_experiment


def test_bench_fig5(run_once):
    result = run_once(get_experiment("fig5"), quick=True, seed=1)
    rows = {r["quantity"]: r for r in result.rows}
    assert rows["starts within 0.3 period of a true edge"]["value"] > 0.9
