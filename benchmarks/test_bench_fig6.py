"""Bench E-FIG6: pulse-width distribution statistics."""

from repro.experiments import get_experiment


def test_bench_fig6(run_once):
    result = run_once(get_experiment("fig6"), quick=True, seed=1)
    rows = {r["statistic"]: r["value"] for r in result.rows}
    assert rows["skewness (positive expected)"] > 0
    assert rows["n widths"] > 50
