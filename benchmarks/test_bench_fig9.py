"""Bench E-FIG9: transmission-rate comparison with prior work."""

from repro.experiments import get_experiment


def test_bench_fig9(run_once):
    result = run_once(get_experiment("fig9"), quick=True, seed=1)
    speedup = [
        r for r in result.rows if r["channel"].startswith("speedup")
    ][0]["rate_bps"]
    assert speedup > 3.0
