"""Ablation: adaptive bimodal threshold vs a fixed naive threshold.

The paper selects the decision threshold per batch as the midpoint of
the two power-distribution modes.  This bench compares that against a
naive fixed threshold (the stream's mean power), which is biased by the
0/1 imbalance and the skewed one-lobe.
"""

import numpy as np

from repro.core.align import align_bits
from repro.core.labeling import label_bits
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


def test_bench_ablation_threshold(benchmark):
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=15)
    # An unbalanced payload (80% ones) exposes mean-threshold bias.
    rng = np.random.default_rng(46)
    payload = (rng.random(150) < 0.8).astype(int)
    result = link.run(payload)
    powers = result.decode.powers

    def compare():
        adaptive = label_bits(powers).bits
        naive = (powers > powers.mean()).astype(int)
        m_adaptive = align_bits(result.tx_bits, adaptive)
        m_naive = align_bits(result.tx_bits, naive)
        return m_adaptive.ber, m_naive.ber

    adaptive_ber, naive_ber = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert adaptive_ber <= naive_ber
