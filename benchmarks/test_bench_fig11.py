"""Bench E-FIG11: the "can you hear me" keylogging spectrogram."""

from repro.experiments import get_experiment


def test_bench_fig11(run_once):
    result = run_once(get_experiment("fig11"), quick=True, seed=0)
    rows = {r["quantity"]: r["value"] for r in result.rows}
    assert abs(rows["characters typed (incl. spaces)"] - rows["spikes detected"]) <= 2
