"""Bench: the Section VI countermeasure sweep."""

from repro.experiments import get_experiment


def test_bench_countermeasures(run_once):
    result = run_once(get_experiment("countermeasures"), quick=True, seed=0)
    rows = {r["countermeasure"]: r for r in result.rows}
    assert rows["none (baseline)"]["channel_usable"]
    assert not rows["disable P+C states"]["channel_usable"]
    assert not rows["VRM dithering +/-5%"]["channel_usable"]
