"""Bench E-TAB4: keylogging accuracy vs distance (Table IV)."""

from repro.experiments import get_experiment


def test_bench_table4(run_once):
    result = run_once(get_experiment("table4"), quick=True, seed=0)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["char_TPR"] > 0.9
        assert row["char_FPR"] < 0.1
        assert row["word_recall"] > 0.85
