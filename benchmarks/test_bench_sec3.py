"""Bench E-SEC3: the BIOS P/C-state disable experiment."""

from repro.experiments import get_experiment


def test_bench_sec3(run_once):
    result = run_once(get_experiment("sec3"), quick=True, seed=1)
    rows = {r["bios_config"]: r for r in result.rows}
    assert rows["C+P enabled"]["spikes_present"]
    assert rows["C disabled"]["spikes_present"]
    assert rows["P disabled"]["spikes_present"]
    assert not rows["C+P disabled"]["spikes_present"]
