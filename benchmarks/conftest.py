"""Benchmark configuration.

Each bench regenerates one paper table/figure in quick mode (TINY or
KEYLOG profile) and asserts its qualitative shape, so `pytest
benchmarks/ --benchmark-only` both times the harness and re-validates
the reproduction.  Experiments are too slow for statistical repetition:
every bench uses pedantic mode with one round.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
