"""Bench E-TAB3 / E-NLOS: distance and through-wall Table III sweep."""

from repro.experiments import get_experiment


def test_bench_table3(run_once):
    result = run_once(get_experiment("table3"), quick=True, seed=0)
    trs = [r["TR_bps"] for r in result.rows]
    assert trs[1] > trs[2] > trs[3] > trs[4]
    # The through-wall (NLoS) row still clears 700 bps at low BER.
    wall = result.rows[-1]
    assert wall["TR_bps"] > 700
    assert wall["BER"] < 0.06
