"""Micro-benchmarks of the hot substrate paths.

These are conventional pytest-benchmark timings (multiple rounds) of
the kernels the experiments spend their time in, so performance
regressions in the simulation core are visible.
"""

import numpy as np
import pytest

from repro.core.align import align_bits
from repro.dsp.stft import stft
from repro.types import PiecewiseConstant
from repro.vrm.buck import BuckConverter, BuckDesign
from repro.vrm.emission import EmissionModel


@pytest.fixture(scope="module")
def burst_train():
    design = BuckDesign(switching_frequency_hz=970e3)
    buck = BuckConverter(design, rng=np.random.default_rng(0))
    load = PiecewiseConstant(
        np.linspace(0, 0.05, 200, endpoint=False),
        np.tile([16.0, 0.15], 100),
        0.05,
    )
    return buck, load


def test_bench_buck_simulation(benchmark, burst_train):
    buck, load = burst_train
    bursts = benchmark(buck.simulate, load)
    assert bursts.count > 10_000


def test_bench_emission_synthesis(benchmark, burst_train):
    buck, load = burst_train
    bursts = buck.simulate(load)
    emitter = EmissionModel()
    wave = benchmark(emitter.synthesize, bursts, 9.6e6)
    assert wave.size == int(0.05 * 9.6e6)


def test_bench_stft(benchmark):
    rng = np.random.default_rng(1)
    samples = (
        rng.standard_normal(240_000) + 1j * rng.standard_normal(240_000)
    ).astype(np.complex64)
    spec = benchmark(stft, samples, 2.4e6, 1024, 32)
    assert spec.magnitudes.shape[1] == 1024


def test_bench_alignment(benchmark):
    rng = np.random.default_rng(2)
    tx = rng.integers(0, 2, size=1500)
    rx = np.delete(tx, [100, 900])
    metrics = benchmark(align_bits, tx, rx)
    assert metrics.deletions == 2
