"""Ablation: batch receiver vs the conventional matched filter.

Reproduces the paper's Section IV-B2 observation: a matched filter with
a fixed receiver clock loses lock on the covert channel's asynchronous
symbols and produces a high BER, which is why the (more expensive)
batch timing recovery is necessary.
"""

import numpy as np

from repro.core.matched_filter import matched_filter_decode
from repro.covert.link import CovertLink
from repro.params import TINY
from repro.systems.laptops import DELL_INSPIRON


def test_bench_ablation_matched_filter(benchmark):
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=14)
    payload = np.random.default_rng(45).integers(0, 2, size=150)
    result = link.run(payload)

    def decode_both():
        batch_ber = result.metrics.ber + result.metrics.deletion_probability
        envelope = result.decode.envelope
        nominal = link.transmitter(
            np.random.default_rng(0)
        ).nominal_bit_duration_s()
        mf_bits = matched_filter_decode(
            envelope, nominal * envelope.frame_rate
        )
        n = min(mf_bits.size, result.tx_bits.size)
        mf_positional = float(
            np.count_nonzero(mf_bits[:n] != result.tx_bits[:n]) / n
        )
        return batch_ber, mf_positional

    batch_ber, mf_ber = benchmark.pedantic(
        decode_both, rounds=1, iterations=1
    )
    # The async symbol timing ruins the fixed-clock receiver.
    assert mf_ber > 5 * max(batch_ber, 0.005)
