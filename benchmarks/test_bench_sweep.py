"""Bench the cache-topology-aware sweep engine.

The acceptance claim: on a cold cache, sweeping the eight-configuration
receiver grid through the engine runs the analog chain (PMU / VRM /
emission / propagation / SDR) **exactly once** - proven by counting the
stage span events - and beats trial-at-a-time naive execution by >= 3x,
while every per-trial record stays bit-identical to the naive run.

``make bench-sweep`` records both sides (and the speedup) to
``BENCH_sweep.json`` via ``benchmark.extra_info``.
"""

import time

from repro.exec import execution_scope, reset_chain_cache
from repro.obs.trace import collect_events
from repro.sweep import receiver_grid, run_sweep

ANALOG_SPANS = ("pmu", "vrm", "emission", "propagation", "sdr")


def _comparable(record):
    return {k: v for k, v in record.items() if k != "elapsed_s"}


def test_bench_sweep_receiver_grid(benchmark):
    """Naive vs engine, cold cache, serial both sides (fair timing)."""
    spec = receiver_grid(seed=0, quick=True)

    reset_chain_cache()
    t0 = time.perf_counter()
    naive = run_sweep(spec, naive=True, jobs=1)
    naive_s = time.perf_counter() - t0
    reset_chain_cache()

    def engine_cold():
        with execution_scope(cache_enabled=True):
            with collect_events() as events:
                outcome = run_sweep(spec, jobs=1)
        return outcome, list(events)

    (engine, events) = benchmark.pedantic(engine_cold, rounds=1, iterations=1)
    engine_s = benchmark.stats.stats.mean
    reset_chain_cache()

    # Bit-identity: the engine adds scheduling, not new physics.
    assert len(engine.records) == 8
    for got, want in zip(engine.records, naive.records):
        assert _comparable(got) == _comparable(want)

    # The whole analog chain executed exactly once across 8 trials.
    stage_runs = {}
    for stage in ANALOG_SPANS:
        stage_runs[stage] = sum(
            1
            for e in events
            if e.get("event") == "span" and e.get("name") == stage
        )
        assert stage_runs[stage] == 1, f"{stage} ran {stage_runs[stage]}x"

    benchmark.extra_info["naive_s"] = round(naive_s, 3)
    benchmark.extra_info["engine_s"] = round(engine_s, 3)
    benchmark.extra_info["speedup"] = round(naive_s / engine_s, 2)
    benchmark.extra_info["trials"] = engine.plan.n_trials
    benchmark.extra_info["naive_stage_runs"] = engine.plan.naive_stage_runs
    benchmark.extra_info["planned_stage_runs"] = engine.plan.planned_stage_runs
    benchmark.extra_info["sharing_factor"] = round(
        engine.plan.sharing_factor, 2
    )
    benchmark.extra_info["chain_stage_runs"] = stage_runs
    assert engine_s * 3 <= naive_s
