"""Bench E-TAB2: the near-field Table II sweep over all six laptops."""

from repro.experiments import get_experiment


def test_bench_table2(run_once):
    result = run_once(get_experiment("table2"), quick=True, seed=0)
    assert len(result.rows) == 6
    for row in result.rows:
        assert row["BER"] < 0.05
        if "Windows" in row["OS"]:
            assert row["TR_bps"] < 1200
        else:
            assert row["TR_bps"] > 2500
