"""Bench the incremental lint cache against a cold full run.

The claim under test (ISSUE 10, satellite 1): with the content-hash
cache (:mod:`repro.lint.cache`) a warm ``repro lint`` over an unchanged
tree - which hashes every source file, hits the run-layer entry, and
re-applies only the baseline - beats the cold run (parse every module,
build the project call graph, run all twelve rules) by >= 3x, with a
byte-identical finding set.

Both sides run in-process over the shipped tree with the same config
the real gate uses (``load_config``: defaults + ``[tool.repro.lint]``).
The cold side is timed once (it is the multi-second, stable side); the
warm side takes the min over rounds, ``timeit``-style.  Numbers land in
``BENCH_lint.json`` via ``extra_info``:

* ``cold_s`` / ``warm_s`` - wall-clock of each side.
* ``speedup`` - cold/warm; the >= 3x acceptance floor applies here
  (observed ~100-300x: the warm run is pure hashing + one JSON read).
* ``files`` - modules covered, so regressions in coverage are visible
  next to the timing they would fake-improve.
"""

import time

from repro.lint import LintCache, load_config, run_lint
from repro.lint.cli import default_root

WARM_ROUNDS = 3
MIN_SPEEDUP = 3.0


def test_bench_lint_incremental(benchmark, tmp_path):
    root = default_root()
    config = load_config(root)
    cache = LintCache(tmp_path / "lint-cache")

    t0 = time.perf_counter()
    cold_report = run_lint(root, config, cache=cache)
    cold_s = time.perf_counter() - t0
    assert cache.stats.run_misses == 1 and cache.stats.run_hits == 0

    warm_s = float("inf")
    warm_report = None
    for _ in range(WARM_ROUNDS - 1):
        t0 = time.perf_counter()
        warm_report = run_lint(root, config, cache=cache)
        warm_s = min(warm_s, time.perf_counter() - t0)

    def warm_once():
        t0 = time.perf_counter()
        report = run_lint(root, config, cache=cache)
        return time.perf_counter() - t0, report

    timed, warm_report = benchmark.pedantic(
        warm_once, rounds=1, iterations=1
    )
    warm_s = min(warm_s, timed)

    # Same verdict, same findings, same coverage - warm is a cache hit,
    # not a shortcut.
    assert cache.stats.run_hits >= WARM_ROUNDS
    assert warm_report.ok == cold_report.ok
    assert warm_report.files_checked == cold_report.files_checked
    assert [f.fingerprint for f in warm_report.findings] == [
        f.fingerprint for f in cold_report.findings
    ]

    speedup = cold_s / warm_s
    assert speedup >= MIN_SPEEDUP, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s); cache floor is "
        f"{MIN_SPEEDUP}x"
    )
    benchmark.extra_info.update(
        {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(speedup, 1),
            "files": cold_report.files_checked,
            "findings": len(cold_report.findings),
            "cache_stats": cache.stats.as_dict(),
        }
    )
