"""Bench the fleet multiplexer: batched cross-stream DSP at 1k streams.

Two claims are benchmarked:

* **aggregate throughput** — 1000 concurrent receivers replaying the
  reference covert capture through one :class:`StreamMultiplexer`
  (shared pool, one batched windowed FFT per config group per tick)
  against the naive fleet loop: the same 1000 per-stream
  ``StreamingReceiver`` instances serviced round-robin in arrival
  order, one ``push_samples`` each.  The mux must be >=5x faster *and*
  finalise bit-identical decodes (the batching is an execution
  strategy, not an approximation).
* **capacity curve** — the same fleet under a fixed aggregate service
  budget, scaled from 32 to 1000 streams.  Below the capacity knee the
  shed fraction is ~0; past it the scheduler sheds predictably
  (conservation holds at every point) while aggregate demod throughput
  keeps climbing.  The curve points land in ``benchmark.extra_info``
  so ``make bench-stream`` records streams vs shed fraction vs
  aggregate bits/s to ``BENCH_stream.json``.

Fleet streams run deferred (``online=False``): envelopes accumulate
per tick, detection happens once at finalize.  Finalised bits are
identical either way (DESIGN.md section 16); the per-stream baseline
runs fully online, as ``repro stream`` ships it, so the measured gap
includes everything a real fleet deployment would skip.
"""

import time

import numpy as np

from repro.mux import FleetStreamSpec, build_multiplexer, finalized_digests
from repro.mux.fleet import bits_digest, stream_spec_from_scenario, truncate_spec

#: Per-stream replay length.  0.5 s of the reference capture keeps the
#: full bench under a minute while each stream still spans many ticks.
DURATION_S = 0.5
CHUNK_SIZE = 512
TICK_CHUNKS = 16
N_STREAMS = 1000


def _naive_fleet_loop(spec, n_streams):
    """The shipped per-stream path, scaled by a bare scheduler loop.

    One online ``StreamingReceiver`` per stream, serviced round-robin
    in arrival order - the honest single-threaded fleet server built
    from the pre-mux pieces (no batching, no shared pool).
    """
    sources = [
        iter(spec.make_source(CHUNK_SIZE, 0.05, 1000 + i))
        for i in range(n_streams)
    ]
    receivers = [spec.make_receiver(online=True) for _ in range(n_streams)]
    t0 = time.perf_counter()
    alive = True
    while alive:
        alive = False
        for source, receiver in zip(sources, receivers):
            chunk = next(source, None)
            if chunk is not None:
                alive = True
                receiver.push_samples(chunk.samples, chunk.arrival_s)
    elapsed = time.perf_counter() - t0
    return receivers, elapsed


def test_bench_stream_throughput_1k(benchmark):
    """1000-stream mux vs naive fleet loop: >=5x, bit-identical."""
    spec = truncate_spec(stream_spec_from_scenario("stream-covert"), DURATION_S)
    n_samples = spec.capture.samples.size

    # Reference: 32 per-stream receivers give the golden digest (every
    # stream replays the same capture; jitter only moves arrival times,
    # never samples) without paying 1000 naive finalizes.
    golden_receivers, _ = _naive_fleet_loop(spec, 32)
    golden = {bits_digest(r.finalize().bits) for r in golden_receivers}
    assert len(golden) == 1  # same capture => same decode
    (golden_digest,) = golden

    naive_receivers, naive_s = _naive_fleet_loop(spec, N_STREAMS)
    del naive_receivers

    def mux_run():
        mux, by_stream = build_multiplexer(
            [FleetStreamSpec("stream-covert", count=N_STREAMS,
                             duration_s=DURATION_S)],
            chunk_size=CHUNK_SIZE,
            tick_chunks=TICK_CHUNKS,
        )
        t0 = time.perf_counter()
        mux.run()
        elapsed = time.perf_counter() - t0
        return mux, by_stream, elapsed

    mux, by_stream, mux_s = benchmark.pedantic(
        mux_run, rounds=1, iterations=1
    )
    mux.check_conservation()
    totals = mux.totals()
    assert totals["dropped_chunks"] == 0 and totals["shed_chunks"] == 0

    digests = set(finalized_digests(mux, by_stream).values())
    assert digests == {golden_digest}  # batched DSP is bit-identical

    aggregate_sps = n_samples * N_STREAMS / mux_s
    speedup = naive_s / mux_s
    benchmark.extra_info["streams"] = N_STREAMS
    benchmark.extra_info["naive_s"] = round(naive_s, 3)
    benchmark.extra_info["mux_s"] = round(mux_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["aggregate_msps"] = round(aggregate_sps / 1e6, 2)
    assert speedup >= 5.0


def test_bench_stream_capacity_curve(benchmark):
    """Shed fraction and aggregate bits/s vs stream count, fixed budget."""
    #: Aggregate simulated service capacity, in multiples of one
    #: stream's real-time rate: 256 streams saturate it exactly, so the
    #: knee of the curve sits inside the sweep.
    capacity_streams = 256
    #: Queues sized to exactly one tick's arrivals: lossless while the
    #: budget keeps up, but no slack to absorb a sustained overload -
    #: past the knee the scheduler must shed, it cannot just run late.
    #: Arrivals run jitter-free so the knee is sharp (with jitter an
    #: occasional 9th chunk lands in an 8-slot tick even under budget).
    curve_tick_chunks = 8
    counts = (32, 128, 256, 512, 1000)
    spec = truncate_spec(stream_spec_from_scenario("stream-covert"), DURATION_S)
    n_samples = spec.capture.samples.size
    bit_period = spec.expected_bit_period_s

    def sweep():
        points = []
        for n in counts:
            factor = min(4.0, capacity_streams / n)
            mux, by_stream = build_multiplexer(
                [
                    FleetStreamSpec(
                        "stream-covert",
                        count=n,
                        duration_s=DURATION_S,
                        service_rate_factor=factor,
                        capacity=curve_tick_chunks,
                        jitter_rel=0.0,
                    )
                ],
                chunk_size=CHUNK_SIZE,
                tick_chunks=curve_tick_chunks,
            )
            t0 = time.perf_counter()
            mux.run()
            elapsed = time.perf_counter() - t0
            mux.check_conservation()
            totals = mux.totals()
            delivered = totals["delivered_samples"]
            points.append(
                {
                    "streams": n,
                    "service_rate_factor": round(factor, 4),
                    "shed_fraction": round(mux.shed_fraction(), 4),
                    "mux_s": round(elapsed, 3),
                    "aggregate_msps": round(
                        n * n_samples / elapsed / 1e6, 2
                    ),
                    "demod_bits_per_s": round(
                        delivered
                        / spec.capture.sample_rate
                        / bit_period
                        / elapsed,
                        1,
                    ),
                    "pool_high_watermark": mux.pool.high_watermark,
                }
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["capacity_streams"] = capacity_streams
    benchmark.extra_info["curve"] = points

    shed = [p["shed_fraction"] for p in points]
    # below the knee: effectively lossless; past it: monotone shedding
    for p in points:
        if p["streams"] <= capacity_streams:
            assert p["shed_fraction"] <= 0.02, p
    assert shed == sorted(shed)
    assert shed[-1] > 0.3  # 1000 streams on a 256-stream budget
    # the constrained scheduler still engages the shared pool
    assert points[-1]["pool_high_watermark"] > 0
