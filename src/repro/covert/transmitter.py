"""The covert-channel transmitter (paper Figure 3).

A user-level process with no special privileges reads the secret and,
per bit, either computes for LOOP_PERIOD then sleeps SLEEP_PERIOD
(bit 1, return-to-zero coding) or just sleeps twice as long (bit 0).
This module simulates that process: for each bit it draws the realised
busy and sleep durations from the machine's compute and timer models and
emits the resulting activity trace.

Even a zero-bit produces a short burst of activity - the housekeeping at
the end of the previous ``usleep`` plus reading the next data bit - which
is exactly the envelope rise the receiver's edge detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..core.coding import as_bit_array, hamming_encode
from ..core.sync import FrameFormat
from ..osmodel.timers import ComputeModel, SleepTimer
from ..types import ActivityTrace, Interval


@dataclass(frozen=True)
class TransmitterConfig:
    """Figure 3 knobs, in simulation-profile seconds.

    Attributes
    ----------
    sleep_period_s:
        The SLEEP_PERIOD argument to usleep()/Sleep().
    active_period_s:
        Target busy-loop wall time per one-bit (sets LOOP_PERIOD through
        the machine's compute model).
    """

    sleep_period_s: float
    active_period_s: float

    def __post_init__(self) -> None:
        if self.sleep_period_s <= 0 or self.active_period_s <= 0:
            raise ValueError("periods must be positive")


class Transmitter:
    """Simulates the Figure 3 transmitter process on one machine."""

    def __init__(
        self,
        config: TransmitterConfig,
        timer: SleepTimer,
        compute: ComputeModel,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self.timer = timer
        self.compute = compute
        self._rng = rng if rng is not None else np.random.default_rng(6)
        self._loop_iterations = compute.iterations_for(config.active_period_s)

    @property
    def loop_iterations(self) -> int:
        """The LOOP_PERIOD constant the transmitter would use."""
        return self._loop_iterations

    def transmit(self, bits: Iterable[int], start_time: float = 0.0) -> ActivityTrace:
        """Produce the activity trace for a raw bit stream."""
        bits = as_bit_array(bits)
        intervals: List[Interval] = []
        t = start_time
        for bit in bits:
            if bit == 1:
                busy = self.compute.seconds_for(self._loop_iterations, self._rng)
                intervals.append(Interval(t, t + busy))
                t += busy
                t += self.timer.sleep(self.config.sleep_period_s, now_s=t)
            else:
                # Housekeeping burst: end-of-sleep cleanup + reading the
                # next bit, then the double-length sleep.
                busy = self.compute.seconds_for(0, self._rng)
                intervals.append(Interval(t, t + busy))
                t += busy
                t += self.timer.sleep(self.config.sleep_period_s * 2, now_s=t)
        return ActivityTrace(intervals, duration=t)

    def nominal_bit_duration_s(self) -> float:
        """Expected duration of one bit (for TR estimates and kernels).

        Measured with a short dry run over alternating bits using an
        independent random stream, so tick-quantised timers (Windows)
        report their *realised* bit period, not the requested one.
        """
        probe = Transmitter(
            self.config,
            timer=type(self.timer)(
                np.random.default_rng(0), time_scale=self.timer.time_scale
            ),
            compute=self.compute,
            rng=np.random.default_rng(0),
        )
        n = 32
        trace = probe.transmit(np.tile([1, 0], n // 2))
        return trace.duration / n


def frame_payload(
    payload_bits: Iterable[int],
    frame_format: FrameFormat = FrameFormat(),
    use_ecc: bool = True,
) -> np.ndarray:
    """Build the on-air bit stream: header + (optionally ECC-coded) payload."""
    bits = as_bit_array(payload_bits)
    if use_ecc:
        bits = hamming_encode(bits)
    return frame_format.frame(bits)
