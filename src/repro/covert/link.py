"""End-to-end covert-channel link simulation.

Connects every substrate in the signal-chain order of DESIGN.md:
transmitter process -> scheduler/interrupt mixing -> PMU -> VRM ->
emission -> propagation/noise -> SDR -> batch receiver.  This is the
machinery behind Tables II and III and most figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..chain import render_capture as render_chain_capture
from ..core.align import ChannelMetrics, align_bits
from ..core.decoder import BatchDecoder, DecodeResult, DecoderConfig
from ..core.sync import FrameFormat
from ..em.environment import Scenario, near_field_scenario
from ..osmodel import interrupts as irq
from ..osmodel.scheduler import Scheduler
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON, Machine
from ..types import ActivityTrace, IQCapture
from .transmitter import Transmitter, TransmitterConfig, frame_payload


@dataclass
class PreparedTrial:
    """The digital (cheap) half of one link run, before the analog chain.

    Everything up to the first stochastic analog stage: framed bits, the
    mixed activity trace, and the RNG positioned exactly where
    :func:`repro.chain.render_capture` would consume it.  The sweep
    planner uses this to fingerprint a trial's cache-key chain without
    paying for the chain itself; :meth:`CovertLink.run_prepared`
    finishes the run.
    """

    tx_bits: np.ndarray
    activity: ActivityTrace
    rng: np.random.Generator
    nominal_bit_duration_s: float


@dataclass
class LinkResult:
    """Everything produced by one link run."""

    tx_bits: np.ndarray
    decode: DecodeResult
    metrics: ChannelMetrics
    capture: IQCapture
    activity: ActivityTrace
    duration_s: float
    profile: SimProfile

    @property
    def transmission_rate_bps(self) -> float:
        """Paper-scale transmission rate (transmitted bits per second)."""
        if self.duration_s <= 0:
            return 0.0
        return self.profile.paper_rate(self.tx_bits.size / self.duration_s)


@dataclass
class CovertLink:
    """A configured transmitter-to-receiver chain.

    Parameters
    ----------
    machine:
        The target laptop (Table I row).
    scenario:
        Measurement setup (distance, antenna, wall, noise).  Defaults to
        the paper's 10 cm near-field coil probe.
    profile:
        Simulation scaling profile.
    allow_c_states / allow_p_states:
        BIOS knobs for the Section III experiments.
    background:
        Optional competing activity trace generator flag - when True, a
        resource-intensive background process runs during transmission
        (Section IV-C2).
    seed:
        Seed for all stochastic components.
    """

    machine: Machine = DELL_INSPIRON
    scenario: Optional[Scenario] = None
    profile: SimProfile = TINY
    decoder_config: DecoderConfig = field(default_factory=DecoderConfig)
    frame_format: FrameFormat = field(default_factory=FrameFormat)
    allow_c_states: bool = True
    allow_p_states: bool = True
    background: bool = False
    use_ecc: bool = False
    rate_scale: float = 1.0
    vrm_dithering: object = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scenario is None:
            self.scenario = near_field_scenario(
                self.tuned_frequency_hz,
                physics_frequency_hz=self.paper_tuned_frequency_hz,
            )

    @property
    def vrm_frequency_hz(self) -> float:
        """The machine's VRM frequency in profile-scaled Hz."""
        return self.machine.vrm_frequency_hz / self.profile.total_freq_divisor

    @property
    def tuned_frequency_hz(self) -> float:
        """SDR tuning: midway between the fundamental and first harmonic,
        so both Eq. 1 components sit inside the capture bandwidth."""
        return 1.5 * self.vrm_frequency_hz

    @property
    def paper_tuned_frequency_hz(self) -> float:
        """Paper-scale tuning frequency, for profile-invariant physics."""
        return 1.5 * self.machine.vrm_frequency_hz

    def transmitter(self, rng: np.random.Generator) -> Transmitter:
        if self.rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        # Lowering rate_scale stretches both halves of each bit - how the
        # paper trades transmission rate for reliability at distance.
        stretch = 1.0 / self.rate_scale
        config = TransmitterConfig(
            sleep_period_s=self.machine.scaled_sleep_period(self.profile) * stretch,
            active_period_s=self.machine.scaled_active_period(self.profile) * stretch,
        )
        return Transmitter(
            config,
            timer=self.machine.sleep_timer(rng, self.profile),
            compute=self.machine.compute_model(self.profile),
            rng=rng,
        )

    def prepare(self, payload_bits) -> PreparedTrial:
        """Run the digital half only: framing, transmission timing, and
        OS activity mixing.

        Consumes exactly the RNG draws the full :meth:`run` would before
        entering the analog chain, so the returned generator state is
        the chain's true entry state (the root of its cache-key chain).
        """
        rng = np.random.default_rng(self.seed)
        tx_bits = frame_payload(payload_bits, self.frame_format, self.use_ecc)
        transmitter = self.transmitter(rng)
        activity = transmitter.transmit(tx_bits)
        activity = self._mix_system_activity(activity, rng)
        return PreparedTrial(
            tx_bits=tx_bits,
            activity=activity,
            rng=rng,
            nominal_bit_duration_s=transmitter.nominal_bit_duration_s(),
        )

    def run_prepared(self, prepared: PreparedTrial) -> LinkResult:
        """Finish a prepared run: analog chain, then the batch receiver."""
        capture = self.render_capture(prepared.activity, prepared.rng)
        decoder = BatchDecoder(
            self.vrm_frequency_hz,
            expected_bit_period_s=prepared.nominal_bit_duration_s,
            config=self.decoder_config,
        )
        decode = decoder.decode(capture)
        metrics = align_bits(prepared.tx_bits, decode.bits)
        return LinkResult(
            tx_bits=prepared.tx_bits,
            decode=decode,
            metrics=metrics,
            capture=capture,
            activity=prepared.activity,
            duration_s=prepared.activity.duration,
            profile=self.profile,
        )

    def run(self, payload_bits) -> LinkResult:
        """Transmit a payload and decode it; returns raw-channel metrics.

        The returned metrics compare the *on-air* frame bits against the
        receiver's raw decoded stream (before ECC), which is what the
        paper's BER/IP/DP columns measure.
        """
        return self.run_prepared(self.prepare(payload_bits))

    def render_capture(
        self, activity: ActivityTrace, rng: np.random.Generator
    ) -> IQCapture:
        """Run the analog chain: activity -> power states -> IQ samples."""
        return render_chain_capture(
            self.machine,
            activity,
            self.scenario,
            self.profile,
            rng,
            allow_c_states=self.allow_c_states,
            allow_p_states=self.allow_p_states,
            vrm_dithering=self.vrm_dithering,
        )

    def _mix_system_activity(
        self, activity: ActivityTrace, rng: np.random.Generator
    ) -> ActivityTrace:
        """Add interrupts (always) and background load (when enabled)."""
        scheduler = Scheduler(rng=rng, time_scale=self.profile.time_scale)
        traces = [activity]
        system = irq.generate(
            self.machine.interrupt_profile,
            activity.duration,
            rng,
            time_scale=self.profile.time_scale,
        )
        traces.append(system)
        if self.background:
            load = irq.background_load(
                activity.duration, rng, time_scale=self.profile.time_scale
            )
            # Contention stretches the transmitter's own timing too.
            stretched = scheduler.contend(activity, load)
            traces = [stretched, system, load]
        return scheduler.package_activity(*traces)
