"""Measurement harness for the covert channel (Tables II and III).

Runs a :class:`~repro.covert.link.CovertLink` several times with random
payloads (matching the paper's randomly-generated sequences, 5 runs per
cell) and pools the alignment metrics into the table's BER / TR / IP /
DP columns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..core.align import ChannelMetrics
from ..exec.pool import parallel_map
from ..obs.metrics import get_metrics
from .link import CovertLink, LinkResult


@dataclass
class ChannelEvaluation:
    """Pooled results of several link runs: one Table II/III row."""

    label: str
    metrics: ChannelMetrics
    transmission_rate_bps: float
    runs: List[LinkResult]

    @property
    def ber(self) -> float:
        return self.metrics.ber

    @property
    def insertion_probability(self) -> float:
        return self.metrics.insertion_probability

    @property
    def deletion_probability(self) -> float:
        return self.metrics.deletion_probability

    def row(self) -> dict:
        """The table row as a plain dict (used by experiment reports)."""
        return {
            "label": self.label,
            "BER": self.ber,
            "TR_bps": self.transmission_rate_bps,
            "IP": self.insertion_probability,
            "DP": self.deletion_probability,
        }


def _execute_trial(task: Tuple[CovertLink, np.ndarray]) -> LinkResult:
    """One link trial; module-level so it crosses the process boundary."""
    run_link, payload = task
    return run_link.run(payload)


def evaluate_link(
    link: CovertLink,
    bits_per_run: int = 200,
    n_runs: int = 5,
    label: Optional[str] = None,
    payload_seed: int = 1234,
    jobs: Optional[int] = None,
) -> ChannelEvaluation:
    """Measure BER/TR/IP/DP over ``n_runs`` random payloads.

    Each run uses a fresh payload and a distinct link seed, mirroring
    the paper's five measurement repetitions per configuration.  The
    payloads and per-trial seeds are derived serially up front, then the
    independent trials fan out through
    :func:`repro.exec.pool.parallel_map` (``jobs=None`` reads the active
    execution config); results are bit-identical at any worker count.
    """
    if bits_per_run < 16:
        raise ValueError("need at least 16 bits per run")
    if n_runs < 1:
        raise ValueError("need at least one run")
    rng = np.random.default_rng(payload_seed)
    trials: List[Tuple[CovertLink, np.ndarray]] = []
    for i in range(n_runs):
        payload = rng.integers(0, 2, size=bits_per_run)
        trials.append((replace(link, seed=link.seed + 1000 * (i + 1)), payload))
    runs = parallel_map(_execute_trial, trials, jobs=jobs)
    pooled: Optional[ChannelMetrics] = None
    rates: List[float] = []
    for result in runs:
        pooled = result.metrics if pooled is None else pooled.combined(result.metrics)
        rates.append(result.transmission_rate_bps)
    evaluation = ChannelEvaluation(
        label=label if label is not None else link.machine.name,
        metrics=pooled,
        transmission_rate_bps=float(np.mean(rates)),
        runs=runs,
    )
    registry = get_metrics()
    if registry is not None:
        registry.histogram("covert.ber").observe(evaluation.ber)
        registry.histogram("covert.insertion_probability").observe(
            evaluation.insertion_probability
        )
        registry.histogram("covert.deletion_probability").observe(
            evaluation.deletion_probability
        )
        registry.histogram("covert.transmission_rate_bps").observe(
            evaluation.transmission_rate_bps
        )
    return evaluation
