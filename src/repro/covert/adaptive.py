"""Adaptive rate control for the covert channel.

Table III shows the attacker manually lowering the transmission rate
with distance to hold the BER constant.  This module automates that:
probe transmissions at candidate rates bracket the highest rate whose
error rate stays under a target, the same way a modem trains.

The search exploits that channel quality is monotone (noisily) in the
symbol rate: slower bits integrate more envelope SNR and tolerate more
timing jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from .link import CovertLink


@dataclass
class RateProbe:
    """One probe transmission's outcome."""

    rate_scale: float
    total_error_rate: float
    transmission_rate_bps: float


@dataclass
class RateSearchResult:
    """Outcome of the adaptive search."""

    best_rate_scale: float
    best_transmission_rate_bps: float
    probes: List[RateProbe]

    @property
    def converged(self) -> bool:
        return self.best_rate_scale > 0


def total_error_rate(link: CovertLink, payload: np.ndarray) -> float:
    """BER + IP + DP of one transmission."""
    m = link.run(payload).metrics
    return m.ber + m.insertion_probability + m.deletion_probability


def find_max_rate(
    link: CovertLink,
    target_error_rate: float = 0.01,
    probe_bits: int = 120,
    min_scale: float = 0.25,
    max_scale: float = 1.0,
    grid_points: int = 5,
    iterations: int = 2,
    seed: int = 991,
) -> RateSearchResult:
    """Find the fastest reliable rate_scale.

    Error rate is *not* monotone over the whole range (very slow bits
    accumulate more interrupt hits each), so the search first scans a
    geometric grid from ``max_scale`` down to ``min_scale``, takes the
    fastest passing point, then bisects between it and the next-faster
    grid point for ``iterations`` refinement probes.  If nothing passes,
    ``best_rate_scale`` is 0 (``converged`` False).
    """
    if not 0 < min_scale < max_scale <= 1.0:
        raise ValueError("need 0 < min_scale < max_scale <= 1")
    if grid_points < 2:
        raise ValueError("need at least two grid points")
    rng = np.random.default_rng(seed)
    probes: List[RateProbe] = []

    def probe(scale: float) -> RateProbe:
        payload = rng.integers(0, 2, size=probe_bits)
        probe_link = replace(
            link, rate_scale=scale, seed=link.seed + len(probes) + 1
        )
        result = probe_link.run(payload)
        m = result.metrics
        p = RateProbe(
            rate_scale=scale,
            total_error_rate=m.ber
            + m.insertion_probability
            + m.deletion_probability,
            transmission_rate_bps=result.transmission_rate_bps,
        )
        probes.append(p)
        return p

    grid = np.geomspace(max_scale, min_scale, grid_points)
    passing: Optional[RateProbe] = None
    failing_above: Optional[float] = None
    for scale in grid:
        p = probe(float(scale))
        if p.total_error_rate <= target_error_rate:
            passing = p
            break
        failing_above = float(scale)
    if passing is None:
        return RateSearchResult(0.0, 0.0, probes)
    best = passing
    if failing_above is not None:
        lo, hi = passing.rate_scale, failing_above
        for _ in range(iterations):
            mid = float(np.sqrt(lo * hi))
            p = probe(mid)
            if p.total_error_rate <= target_error_rate:
                lo = mid
                best = p
            else:
                hi = mid
    return RateSearchResult(best.rate_scale, best.transmission_rate_bps, probes)
