"""Covert-channel application layer: transmitter, link, evaluation."""

from .adaptive import RateProbe, RateSearchResult, find_max_rate
from .evaluate import ChannelEvaluation, evaluate_link
from .link import CovertLink, LinkResult
from .packets import Packet, PacketFormat, Packetizer, crc8
from .transmitter import Transmitter, TransmitterConfig, frame_payload

__all__ = [
    "ChannelEvaluation",
    "CovertLink",
    "LinkResult",
    "Packet",
    "PacketFormat",
    "Packetizer",
    "RateProbe",
    "RateSearchResult",
    "Transmitter",
    "TransmitterConfig",
    "crc8",
    "evaluate_link",
    "find_max_rate",
    "frame_payload",
]
