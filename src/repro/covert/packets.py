"""Packetised covert transmission (paper Section IV-C1).

"Depending on the requirement, the data can be sent in packets or
continuously."  This module implements the packet mode: the payload is
split into fixed-size packets, each carrying a sequence number and a
CRC-8, individually Hamming-coded and framed.  Packets localise damage:
an insertion/deletion burst corrupts one packet instead of shifting the
rest of the stream, and the sequence numbers expose missing packets so
a long exfiltration can be resumed or repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.coding import as_bit_array, hamming_decode, hamming_encode
from ..core.sync import FrameFormat, locate_preamble

#: CRC-8 polynomial (CRC-8/ATM: x^8 + x^2 + x + 1).
_CRC8_POLY = 0x07


def crc8(bits: np.ndarray) -> np.ndarray:
    """CRC-8 of a bit array, returned as 8 bits (MSB first)."""
    bits = as_bit_array(bits)
    crc = 0
    for bit in bits:
        crc ^= int(bit) << 7
        crc = ((crc << 1) ^ _CRC8_POLY if crc & 0x80 else crc << 1) & 0xFF
    return np.array([(crc >> (7 - i)) & 1 for i in range(8)], dtype=int)


@dataclass(frozen=True)
class PacketFormat:
    """Layout of one packet.

    Attributes
    ----------
    payload_bits:
        Data bits per packet (before coding).
    sequence_bits:
        Width of the sequence-number field; sequence numbers wrap.
    """

    payload_bits: int = 64
    sequence_bits: int = 8

    def __post_init__(self) -> None:
        if self.payload_bits < 8:
            raise ValueError("packets need at least 8 payload bits")
        if not 1 <= self.sequence_bits <= 16:
            raise ValueError("sequence field must be 1..16 bits")

    @property
    def header_bits(self) -> int:
        return self.sequence_bits

    @property
    def uncoded_bits(self) -> int:
        return self.header_bits + self.payload_bits + 8  # + CRC-8

    def sequence_field(self, seq: int) -> np.ndarray:
        wrapped = seq % (1 << self.sequence_bits)
        return np.array(
            [
                (wrapped >> (self.sequence_bits - 1 - i)) & 1
                for i in range(self.sequence_bits)
            ],
            dtype=int,
        )

    def parse_sequence(self, bits: np.ndarray) -> int:
        value = 0
        for b in bits[: self.sequence_bits]:
            value = (value << 1) | int(b)
        return value


@dataclass
class Packet:
    """A decoded packet: sequence number, payload, CRC verdict."""

    sequence: int
    payload: np.ndarray
    crc_ok: bool
    corrected_bits: int


class Packetizer:
    """Split payloads into packets and reassemble received ones."""

    def __init__(self, fmt: PacketFormat = PacketFormat()):
        self.fmt = fmt

    def packetize(self, payload_bits) -> List[np.ndarray]:
        """Payload -> list of Hamming-coded packet bit arrays.

        The final packet is zero-padded to full size (the reassembler
        trims using the caller's known payload length).
        """
        bits = as_bit_array(payload_bits)
        out: List[np.ndarray] = []
        n = self.fmt.payload_bits
        for seq, lo in enumerate(range(0, max(bits.size, 1), n)):
            chunk = bits[lo : lo + n]
            if chunk.size < n:
                chunk = np.concatenate([chunk, np.zeros(n - chunk.size, int)])
            body = np.concatenate([self.fmt.sequence_field(seq), chunk])
            packet = np.concatenate([body, crc8(body)])
            out.append(hamming_encode(packet))
        return out

    def frame_stream(
        self, payload_bits, frame_format: FrameFormat = FrameFormat()
    ) -> np.ndarray:
        """The full on-air stream: every packet individually framed.

        Each packet gets its own header (training + preamble) so the
        receiver can resynchronise at packet granularity.
        """
        parts = []
        for packet in self.packetize(payload_bits):
            parts.append(frame_format.frame(packet))
        return np.concatenate(parts) if parts else np.empty(0, dtype=int)

    def parse(self, coded_bits: np.ndarray) -> Packet:
        """Decode one packet's coded bits."""
        decoded, corrected = hamming_decode(coded_bits)
        decoded = decoded[: self.fmt.uncoded_bits]
        if decoded.size < self.fmt.uncoded_bits:
            decoded = np.concatenate(
                [decoded, np.zeros(self.fmt.uncoded_bits - decoded.size, int)]
            )
        body, crc_rx = decoded[:-8], decoded[-8:]
        crc_ok = bool(np.array_equal(crc8(body), crc_rx))
        return Packet(
            sequence=self.fmt.parse_sequence(body),
            payload=body[self.fmt.header_bits :],
            crc_ok=crc_ok,
            corrected_bits=corrected,
        )

    def depacketize_stream(
        self,
        received_bits: np.ndarray,
        frame_format: FrameFormat = FrameFormat(),
        max_preamble_errors: int = 2,
    ) -> List[Packet]:
        """Find every packet in a raw decoded bit stream.

        Scans for preambles; each hit is parsed as one packet of the
        expected coded length.  Bad CRCs are returned (flagged) so the
        caller can request retransmission by sequence number.
        """
        bits = as_bit_array(received_bits)
        coded_len = ((self.fmt.uncoded_bits + 3) // 4) * 7
        packets: List[Packet] = []
        cursor = 0
        while True:
            pos = locate_preamble(
                bits, frame_format.preamble, max_preamble_errors, cursor
            )
            if pos is None or pos + coded_len // 2 > bits.size:
                break
            chunk = bits[pos : pos + coded_len]
            packets.append(self.parse(chunk))
            cursor = pos + max(coded_len // 2, 1)
        return packets

    def reassemble(
        self, packets: List[Packet], total_payload_bits: int
    ) -> Tuple[np.ndarray, List[int]]:
        """Merge packets into a payload; returns ``(bits, missing_seqs)``.

        Later duplicates of a sequence number win only if their CRC is
        good; gaps are zero-filled and reported.
        """
        n = self.fmt.payload_bits
        n_packets = (total_payload_bits + n - 1) // n
        payload = np.zeros(n_packets * n, dtype=int)
        have = [False] * n_packets
        for packet in packets:
            seq = packet.sequence
            if seq >= n_packets:
                continue
            if packet.crc_ok or not have[seq]:
                payload[seq * n : (seq + 1) * n] = packet.payload
                have[seq] = have[seq] or packet.crc_ok
        missing = [i for i, ok in enumerate(have) if not ok]
        return payload[:total_payload_bits], missing
