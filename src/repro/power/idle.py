"""C-state idle governor.

When the processor goes idle the OS (or, on recent parts, the hardware)
must guess how long the idle period will last and pick a C-state whose
wake-up cost is justified.  The paper notes that the real selection
algorithm is undocumented and generation-specific; we model the widely
described "menu governor" shape: predict the idle length, derate the
prediction, and choose the deepest state whose target residency fits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .states import CState, PowerStateTable


class MenuIdleGovernor:
    """Pick a C-state for each idle period.

    Parameters
    ----------
    table:
        The processor's power-state table.
    prediction_noise:
        Standard deviation of the multiplicative log-normal error applied
        to the true idle length, modelling the governor's imperfect
        predictor.  0 disables the noise.
    latency_tolerance_s:
        Upper bound on acceptable exit latency (a QoS constraint); states
        with a larger exit latency are never chosen.
    rng:
        NumPy random generator (required when ``prediction_noise > 0``).
    """

    def __init__(
        self,
        table: PowerStateTable,
        prediction_noise: float = 0.25,
        latency_tolerance_s: float = 2e-3,
        rng: Optional[np.random.Generator] = None,
    ):
        if prediction_noise < 0:
            raise ValueError("prediction noise cannot be negative")
        self.table = table
        self.prediction_noise = prediction_noise
        self.latency_tolerance_s = latency_tolerance_s
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def predict(self, true_idle_s: float) -> float:
        """The governor's (noisy) estimate of the upcoming idle length."""
        if self.prediction_noise == 0.0:
            return true_idle_s
        factor = float(
            np.exp(self._rng.normal(0.0, self.prediction_noise))
        )
        return true_idle_s * factor

    def select(self, true_idle_s: float) -> CState:
        """Choose the C-state for an idle period of the given length.

        Always returns at least C0's shallowest idle sibling when any
        non-running state exists (the table may have been restricted to
        C0 only, in which case C0 is returned and the "idle" period is
        actually the OS spinning in its idle loop).
        """
        candidates = [c for c in self.table.c_states if c.index > 0]
        if not candidates:
            return self.table.c_states[0]
        predicted = self.predict(true_idle_s)
        chosen = candidates[0]
        for c in candidates:
            if (
                c.target_residency_s <= predicted
                and c.exit_latency_s <= self.latency_tolerance_s
            ):
                chosen = c
        return chosen
