"""Processor power-management substrate: P/C-states, governors, PMU."""

from .governor import DvfsGovernor, OndemandGovernor, SpeedShiftGovernor
from .idle import MenuIdleGovernor
from .pmu import PMU
from .states import CState, PState, PowerStateTable, default_table
from .workload import (
    alternating_workload,
    burst_workload,
    constant_workload,
    idle_workload,
)

__all__ = [
    "CState",
    "DvfsGovernor",
    "MenuIdleGovernor",
    "OndemandGovernor",
    "PMU",
    "PState",
    "PowerStateTable",
    "SpeedShiftGovernor",
    "alternating_workload",
    "burst_workload",
    "constant_workload",
    "default_table",
    "idle_workload",
]
