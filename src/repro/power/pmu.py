"""The power management unit: activity in, power-state residencies out.

This is the digital half of the side-channel: the PMU converts what the
*software* does (run / sleep) into what the *package* does (P/C-state
residencies), which the VRM then turns into load-dependent switching
activity.  Section III of the paper shows the channel exists whenever the
processor can move between at least one high-power and one low-power
state - C-states, P-states, or both - and disappears (the emission
becomes continuously strong) only when both are pinned.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..types import ActivityTrace, PowerStateTrace, StateResidency
from .governor import DvfsGovernor, SpeedShiftGovernor
from .idle import MenuIdleGovernor
from .states import PowerStateTable


class PMU:
    """Convert an :class:`~repro.types.ActivityTrace` into power states.

    Parameters
    ----------
    table:
        The processor's P/C-state table (possibly restricted via
        :meth:`~repro.power.states.PowerStateTable.restrict` to reproduce
        the BIOS-disable experiments).
    governor:
        DVFS policy; defaults to :class:`SpeedShiftGovernor`.
    idle_governor:
        C-state policy; defaults to :class:`MenuIdleGovernor`.
    """

    def __init__(
        self,
        table: PowerStateTable,
        governor: Optional[DvfsGovernor] = None,
        idle_governor: Optional[MenuIdleGovernor] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.table = table
        rng = rng if rng is not None else np.random.default_rng(1)
        self.governor = governor if governor is not None else SpeedShiftGovernor(table)
        self.idle_governor = (
            idle_governor
            if idle_governor is not None
            else MenuIdleGovernor(table, rng=rng)
        )

    @property
    def c_states_enabled(self) -> bool:
        return len(self.table.c_states) > 1

    @property
    def p_states_enabled(self) -> bool:
        return len(self.table.p_states) > 1

    def run(self, trace: ActivityTrace) -> PowerStateTrace:
        """Walk the activity trace and emit power-state residencies."""
        self.governor.reset()
        residencies: List[StateResidency] = []
        cursor = 0.0
        for interval in trace.intervals:
            if interval.start > cursor:
                self._emit_idle(residencies, cursor, interval.start)
            self._emit_active(
                residencies, interval.start, interval.end, interval.level
            )
            cursor = interval.end
        if trace.duration > cursor:
            self._emit_idle(residencies, cursor, trace.duration)
        return PowerStateTrace(residencies, trace.duration)

    def _emit_idle(self, out: List[StateResidency], start: float, end: float) -> None:
        """Append residencies covering an idle gap ``[start, end)``."""
        parked_p = self.governor.on_idle(start, end)
        if not self.c_states_enabled:
            # C-states disabled: the OS spins in its idle loop, so the
            # package stays in C0 and keeps drawing active current - the
            # paper's "continuously strong spikes" observation.
            out.append(StateResidency(start, end, parked_p, 0))
            return
        c = self.idle_governor.select(end - start)
        entry_end = min(start + c.entry_latency_s, end)
        if entry_end > start:
            # The entry transition is spent in the shallowest idle state.
            shallow = self.table.c_states[1].index
            out.append(StateResidency(start, entry_end, parked_p, shallow))
        if end > entry_end:
            out.append(StateResidency(entry_end, end, parked_p, c.index))

    def _emit_active(
        self, out: List[StateResidency], start: float, end: float, level: float
    ) -> None:
        """Append C0 residencies for an active interval, split at P changes."""
        schedule = self.governor.on_active(start, end, level)
        for i, (t, p) in enumerate(schedule):
            seg_end = schedule[i + 1][0] if i + 1 < len(schedule) else end
            if seg_end > t:
                out.append(StateResidency(t, seg_end, p, 0))
