"""DVFS governors: policies that pick the P-state while the core runs.

Two policies from the paper's background section are modelled:

* :class:`SpeedShiftGovernor` - hardware-controlled P-states (Intel
  Speed Shift / HWP, Skylake onwards): the hardware ramps toward the
  target P-state in microsecond-scale steps.
* :class:`OndemandGovernor` - OS-controlled P-states (pre-Skylake): the
  OS samples utilisation on a coarse period (default 10 ms) and jumps to
  the highest frequency when busy, decaying when idle.

A governor is a small state machine consumed by :class:`repro.power.pmu.PMU`;
for each active interval it returns the P-state schedule as a list of
``(time, p_index)`` change points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from .states import PowerStateTable

PStateSchedule = List[Tuple[float, int]]


class DvfsGovernor(ABC):
    """Base class for P-state selection policies."""

    def __init__(self, table: PowerStateTable):
        self.table = table
        self._lowest = len(table.p_states) - 1
        self._current = self._lowest

    def reset(self) -> None:
        """Return to the lowest-performance P-state (cold start)."""
        self._current = self._lowest

    @property
    def current_p_state(self) -> int:
        return self._current

    @abstractmethod
    def on_active(self, start: float, end: float, level: float) -> PStateSchedule:
        """Plan P-state changes for an active interval.

        Returns the schedule of ``(time, p_index)`` change points; the
        first entry must be at ``start``.  Implementations must leave
        ``self._current`` at the P-state in force at ``end``.
        """

    @abstractmethod
    def on_idle(self, start: float, end: float) -> int:
        """Account for an idle gap; returns the parked P-state."""


class SpeedShiftGovernor(DvfsGovernor):
    """Hardware P-state control with fast, stepped ramps.

    The hardware walks one P-state per ``step_interval_s`` toward the
    target.  Under full load the target is P0; light load targets a
    mid-table state.  On idle entry the P-state parks at the lowest
    operating point almost immediately.
    """

    def __init__(
        self,
        table: PowerStateTable,
        step_interval_s: float = 5e-6,
        hold_s: float = 1e-3,
    ):
        super().__init__(table)
        if step_interval_s <= 0:
            raise ValueError("step interval must be positive")
        self.step_interval_s = step_interval_s
        self.hold_s = hold_s

    def _target_for(self, level: float) -> int:
        if level >= 0.75:
            return 0
        if level >= 0.25:
            return max(0, self._lowest // 2)
        return self._lowest

    def on_active(self, start: float, end: float, level: float) -> PStateSchedule:
        target = self._target_for(level)
        schedule: PStateSchedule = [(start, self._current)]
        t = start
        p = self._current
        while p != target:
            t += self.step_interval_s
            if t >= end:
                break
            p += -1 if target < p else 1
            schedule.append((t, p))
        self._current = p
        return schedule

    def on_idle(self, start: float, end: float) -> int:
        # The hardware holds the operating point across short idle gaps
        # (its utilisation filter works on ~ms timescales) and only
        # parks the rail at the lowest point for longer idleness.
        if end - start >= self.hold_s:
            self._current = self._lowest
        return self._current


class OndemandGovernor(DvfsGovernor):
    """OS-driven P-state control with a coarse sampling period.

    Mirrors Linux's classic ``ondemand`` policy: every ``sampling_s`` the
    OS inspects utilisation since the last sample; above ``up_threshold``
    it jumps straight to P0, otherwise it steps down one state.  Between
    samples the P-state is constant, which is why pre-Skylake systems
    react to bursty loads on millisecond timescales only.
    """

    def __init__(
        self,
        table: PowerStateTable,
        sampling_s: float = 10e-3,
        up_threshold: float = 0.80,
    ):
        super().__init__(table)
        if sampling_s <= 0:
            raise ValueError("sampling period must be positive")
        self.sampling_s = sampling_s
        self.up_threshold = up_threshold
        self._busy_since_sample = 0.0
        self._next_sample = sampling_s

    def reset(self) -> None:
        super().reset()
        self._busy_since_sample = 0.0
        self._next_sample = self.sampling_s

    def _sample(self, now: float) -> int:
        """Run pending sampling decisions up to ``now``.

        Mirrors classic ondemand: jump straight to the top frequency
        when utilisation crosses ``up_threshold``, drop straight to the
        bottom when the sample was (nearly) idle, otherwise step down
        one state.  The direct drop is ondemand's powersave bias and is
        what lets P-states alone modulate the VRM when C-states are
        disabled (Section III).
        """
        while self._next_sample <= now:
            util = self._busy_since_sample / self.sampling_s
            if util >= self.up_threshold:
                self._current = 0
            elif util <= 0.3:
                self._current = self._lowest
            elif self._current < self._lowest:
                self._current += 1
            self._busy_since_sample = 0.0
            self._next_sample += self.sampling_s
        return self._current

    def on_active(self, start: float, end: float, level: float) -> PStateSchedule:
        schedule: PStateSchedule = [(start, self._sample(start))]
        t = start
        while self._next_sample < end:
            boundary = self._next_sample
            self._busy_since_sample += (boundary - t) * level
            p = self._sample(boundary)
            if p != schedule[-1][1]:
                schedule.append((boundary, p))
            t = boundary
        self._busy_since_sample += (end - t) * level
        return schedule

    def on_idle(self, start: float, end: float) -> int:
        self._sample(end)
        return self._current
