"""Workload sources: activity traces for experiments.

These generate :class:`~repro.types.ActivityTrace` objects representing
the software side of the micro-benchmarks in the paper: Figure 1's
active/idle alternation loop, constant load, and fully idle systems.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..types import ActivityTrace, Interval


def idle_workload(duration: float) -> ActivityTrace:
    """A completely idle system for ``duration`` seconds."""
    return ActivityTrace([], duration)


def constant_workload(duration: float, level: float = 1.0) -> ActivityTrace:
    """A core pinned at the given utilisation for ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return ActivityTrace([Interval(0.0, duration, level)], duration)


def alternating_workload(
    duration: float,
    active_s: float,
    idle_s: float,
    *,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> ActivityTrace:
    """Figure 1's micro-benchmark: busy for ``t1``, idle for ``t2``, repeat.

    Parameters
    ----------
    duration:
        Total trace length in seconds.
    active_s / idle_s:
        The paper's ``t1`` and ``t2`` knobs.
    jitter:
        Relative standard deviation applied to each period length,
        modelling loop-count and sleep variability.  0 means exact.
    """
    if active_s <= 0 or idle_s <= 0:
        raise ValueError("active and idle periods must be positive")
    if jitter < 0:
        raise ValueError("jitter cannot be negative")
    rng = rng if rng is not None else np.random.default_rng(2)
    intervals: List[Interval] = []
    t = 0.0
    while t < duration - 1e-12:
        a = active_s * (1.0 + jitter * float(rng.standard_normal())) if jitter else active_s
        a = max(a, active_s * 0.1)
        end = min(t + a, duration)
        intervals.append(Interval(t, end))
        i = idle_s * (1.0 + jitter * float(rng.standard_normal())) if jitter else idle_s
        i = max(i, idle_s * 0.1)
        t = end + i
    return ActivityTrace(intervals, duration)


def burst_workload(
    duration: float,
    burst_times: List[float],
    burst_length_s: float,
    level: float = 1.0,
) -> ActivityTrace:
    """Short bursts of activity at given times (keystrokes, interrupts).

    Overlapping bursts are merged.
    """
    edges = []
    for t in sorted(burst_times):
        start = max(0.0, t)
        end = min(duration, t + burst_length_s)
        if end <= start:
            continue
        if edges and start <= edges[-1][1]:
            edges[-1] = (edges[-1][0], max(edges[-1][1], end))
        else:
            edges.append((start, end))
    intervals = [Interval(a, b, level) for a, b in edges]
    return ActivityTrace(intervals, duration)
