"""P-state and C-state definitions.

Models Intel's Demand Based Switching nomenclature described in the
paper's Section II: *P-states* trade performance for energy while the
processor is running (P0 is the fastest), and *C-states* are idle states
with increasing levels of clock/power gating (C0 is "running"; deeper
states save more power but take longer to wake from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class PState:
    """One performance state: a voltage/frequency operating point."""

    index: int
    frequency_hz: float
    voltage_v: float
    active_current_a: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("P-state index must be non-negative")
        if self.frequency_hz <= 0 or self.voltage_v <= 0:
            raise ValueError("P-state frequency and voltage must be positive")


@dataclass(frozen=True)
class CState:
    """One idle state.

    Attributes
    ----------
    index:
        0 for C0 (running); larger numbers are deeper idle states.
    idle_current_a:
        Residual current drawn from the VRM while resident.
    entry_latency_s / exit_latency_s:
        Time to enter / wake from the state.
    target_residency_s:
        Minimum profitable residency; the idle governor will not choose
        this state for an expected idle period shorter than this.
    gates_voltage:
        True for states (C4+) that also lower the VID voltage, not just
        stop the clock.
    """

    index: int
    idle_current_a: float
    entry_latency_s: float
    exit_latency_s: float
    target_residency_s: float
    gates_voltage: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("C-state index must be non-negative")
        if self.idle_current_a < 0:
            raise ValueError("idle current cannot be negative")


@dataclass(frozen=True)
class PowerStateTable:
    """The full set of P- and C-states exposed by one processor.

    ``p_states`` must be ordered P0, P1, ... (descending performance);
    ``c_states`` must be ordered C0, C1, ... (increasing depth).
    """

    p_states: Sequence[PState]
    c_states: Sequence[CState]

    def __post_init__(self) -> None:
        for i, p in enumerate(self.p_states):
            if p.index != i:
                raise ValueError("p_states must be contiguous from P0")
        indices = [c.index for c in self.c_states]
        if not indices or indices[0] != 0:
            raise ValueError("c_states must start at C0")
        if sorted(indices) != indices or len(set(indices)) != len(indices):
            raise ValueError("c_states must be strictly increasing")

    @property
    def deepest_c_state(self) -> CState:
        return self.c_states[-1]

    def p_state(self, index: int) -> PState:
        return self.p_states[index]

    def c_state(self, index: int) -> CState:
        for c in self.c_states:
            if c.index == index:
                return c
        raise KeyError(f"no C{index} in table")

    def current_a(self, p_index: int, c_index: int) -> float:
        """Load current drawn from the VRM in a (P, C) pair.

        In C0 the current is the P-state's active current; in any idle
        state it is the C-state's residual current (the P-state then only
        determines the parked voltage).
        """
        if c_index == 0:
            return self.p_state(p_index).active_current_a
        return self.c_state(c_index).idle_current_a

    def voltage_v(self, p_index: int, c_index: int) -> float:
        """VID voltage requested from the VRM in a (P, C) pair."""
        base = self.p_state(p_index).voltage_v
        if c_index == 0:
            return base
        c = self.c_state(c_index)
        if c.gates_voltage:
            # Voltage-gating C-states park the rail at a retention level.
            return min(base, 0.65)
        return base

    def restrict(self, *, allow_c: bool = True, allow_p: bool = True) -> "PowerStateTable":
        """Return a table with C- and/or P-states disabled (BIOS knobs).

        Disabling C-states leaves only C0 (the OS "idles" by spinning);
        disabling P-states pins the core at P0.  This reproduces the
        Section III BIOS experiments.
        """
        p_states = self.p_states if allow_p else self.p_states[:1]
        c_states = self.c_states if allow_c else self.c_states[:1]
        return PowerStateTable(tuple(p_states), tuple(c_states))


def default_table(
    *,
    max_frequency_hz: float = 3.4e9,
    n_p_states: int = 8,
    max_current_a: float = 16.0,
    deep_idle_current_a: float = 0.15,
) -> PowerStateTable:
    """Build a representative laptop power-state table.

    P-state voltage/frequency points follow the near-linear V-f relation
    of commodity parts (0.7 V at the lowest point up to ~1.15 V at P0);
    active current scales roughly with f * V^2.
    """
    if n_p_states < 1:
        raise ValueError("need at least one P-state")
    p_states: List[PState] = []
    for i in range(n_p_states):
        frac = 1.0 - i / max(n_p_states, 1) * 0.65
        freq = max_frequency_hz * frac
        volt = 0.70 + 0.45 * frac
        current = max_current_a * frac * (volt / 1.15) ** 2
        p_states.append(
            PState(index=i, frequency_hz=freq, voltage_v=volt, active_current_a=current)
        )
    c_states = (
        CState(0, max_current_a, 0.0, 0.0, 0.0),
        CState(1, 1.2, 1e-6, 2e-6, 4e-6),
        CState(2, 0.8, 5e-6, 10e-6, 30e-6),
        CState(3, 0.5, 10e-6, 30e-6, 80e-6, gates_voltage=False),
        CState(6, deep_idle_current_a, 30e-6, 80e-6, 300e-6, gates_voltage=True),
    )
    return PowerStateTable(tuple(p_states), c_states)
