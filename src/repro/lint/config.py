"""Lint configuration: what the rules treat as contract boundaries.

Everything path-like is *root-relative* (the root is the directory that
contains the ``repro`` package, i.e. ``src/`` in this repository), so
the same rules run unchanged over the shipped tree and over the tiny
synthetic trees the fixture tests build in ``tmp_path``.

Precedence, weakest first: built-in defaults (this module) <
``[tool.repro.lint]`` in ``pyproject.toml`` (:func:`load_config`) <
an explicitly constructed :class:`LintConfig` passed to ``run_lint``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class LintConfig:
    """Knobs for the rule set; defaults describe this repository."""

    #: Top-level package directory to walk, relative to the root.
    package: str = "repro"

    #: Root-relative paths never linted (directories end with "/").
    exclude: Tuple[str, ...] = ()

    # -- DET002: wall-clock ------------------------------------------------
    #: Files allowed to read the wall clock.  The run manifest stamps
    #: ``generated_unix`` for humans; it is never fingerprinted.
    wallclock_allowlist: Tuple[str, ...] = ("repro/obs/manifest.py",)

    # -- CACHE001: cache-schema drift --------------------------------------
    #: Module holding the chain key construction.
    chain_module: str = "repro/chain.py"
    #: Scope of the cross-module key-coverage check: every *public*
    #: stage runner in these files/directories (entries ending with
    #: "/" are prefixes) must prove its parameters reach fingerprint().
    chain_scope: Tuple[str, ...] = ("repro/chain.py", "repro/batch/")
    #: Parameter names that are plumbing, not physics inputs.
    plumbing_params: Tuple[str, ...] = (
        "self",
        "cache",
        "key",
        "on_hit",
        "compute",
        "warmed",
        "emit_warm_events",
    )
    #: Attribute names that hold *already-fingerprinted* cache keys
    #: (sweep plans precompute them); reaching such an attribute of a
    #: parameter proves the parameter's key coverage.
    key_carrier_attrs: Tuple[str, ...] = (
        "keys",
        "key",
        "digital_id",
        "trial_id",
        "digital_prefix_id",
    )
    #: Module and constant naming the chain schema tag.
    schema_const_module: str = "repro/exec/cache.py"
    schema_const_name: str = "CHAIN_SCHEMA"
    #: Committed manifest of (chain schema tag, fingerprinted dataclass
    #: fields); regenerated with ``repro lint --update-schema``.
    schema_manifest: str = "repro/lint/chain_schema.json"
    #: Seed dataclasses whose instances reach ``fingerprint()`` as chain
    #: key components; the rule expands this set transitively through
    #: dataclass-typed fields.
    tracked_dataclasses: Tuple[Tuple[str, str], ...] = (
        ("repro/params.py", "SimProfile"),
        ("repro/systems/laptops.py", "Machine"),
        ("repro/em/environment.py", "Scenario"),
        ("repro/countermeasures.py", "VrmDithering"),
        ("repro/scenario/registry.py", "ScenarioSpec"),
    )

    # -- CONC001: raw writes under locked stores ---------------------------
    #: Modules that own the locked/atomic write discipline; raw writes
    #: to cache/scratch/store paths anywhere else are findings.
    raw_write_allowlist: Tuple[str, ...] = (
        "repro/exec/cache.py",
        "repro/sweep/store.py",
        "repro/obs/manifest.py",
        "repro/lint/cache.py",
    )
    #: Identifier pattern marking a path expression as cache/store-like.
    guarded_path_pattern: str = r"cache|scratch|store|result"

    # -- TRACE001: span discipline -----------------------------------------
    #: Module defining the span-name registry.
    trace_module: str = "repro/obs/trace.py"
    span_registry_name: str = "REGISTERED_SPANS"
    #: Package prefix whose modules may touch Tracer internals.
    trace_internal_prefix: str = "repro/obs/"

    # -- FLOAT001: float equality ------------------------------------------
    #: Path prefixes where ``==``/``!=`` on float expressions is flagged.
    float_eq_scopes: Tuple[str, ...] = ("repro/dsp/", "repro/vrm/")

    # -- ASYNC001/ASYNC002: event-loop safety ------------------------------
    #: Path prefixes whose ``async def`` functions are analyzed.
    async_scopes: Tuple[str, ...] = ("repro/mux/",)
    #: Dotted call names (alias-expanded) that block the event loop.
    blocking_calls: Tuple[str, ...] = (
        "time.sleep",
        "os.system",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "fcntl.flock",
        "fcntl.lockf",
        "open",
    )
    #: ``receiver.method`` suffixes that block (process-pool fan-out).
    blocking_attr_calls: Tuple[str, ...] = (
        "pool.map",
        "pool.starmap",
        "pool.imap",
        "executor.map",
    )
    #: Method names that are file I/O no matter the receiver.
    blocking_io_methods: Tuple[str, ...] = (
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
    )

    # -- RES001/RES002: pooled-buffer lifecycle ----------------------------
    #: Path prefixes where pool acquire/release discipline is checked.
    res_scopes: Tuple[str, ...] = ("repro/mux/",)
    #: Modules implementing the pool itself: their internal freelist
    #: ``.pop()`` calls are bookkeeping, not ownership acquisition.
    res_impl_modules: Tuple[str, ...] = ("repro/mux/pool.py",)
    #: Method names that discharge ownership of the passed buffer.
    res_release_methods: Tuple[str, ...] = ("release",)
    #: Attributes that alias pool-backed storage: reading them after
    #: release observes recycled memory (plain metadata stays valid).
    res_view_attrs: Tuple[str, ...] = ("samples",)

    # -- SCEN001/SCEN002: scenario component contracts ---------------------
    #: (module, class) of the component base every plugin derives from.
    scenario_component_base: Tuple[str, str] = (
        "repro/scenario/component.py",
        "Component",
    )
    #: Parameter names treated as the scenario context handle.
    scenario_context_params: Tuple[str, ...] = ("ctx",)

    # -- baseline ----------------------------------------------------------
    #: Committed baseline of accepted findings (content fingerprints).
    baseline_path: str = "repro/lint/baseline.json"

    #: Extra per-rule settings fixture tests may override.
    extras: Tuple[Tuple[str, str], ...] = field(default=())

    def is_excluded(self, relpath: str) -> bool:
        for pattern in self.exclude:
            if pattern.endswith("/"):
                if relpath.startswith(pattern):
                    return True
            elif relpath == pattern:
                return True
        return False

    def in_scope(self, relpath: str, scopes: Tuple[str, ...]) -> bool:
        """True when ``relpath`` matches a file or "dir/" prefix entry."""
        for entry in scopes:
            if entry.endswith("/"):
                if relpath.startswith(entry):
                    return True
            elif relpath == entry:
                return True
        return False


#: Configuration for the shipped tree.
DEFAULT_CONFIG = LintConfig()


# -- pyproject loading -----------------------------------------------------

_FIELD_TYPES = {f.name: f.type for f in fields(LintConfig)}


def _coerce(name: str, value: Any) -> Any:
    """Match pyproject values to the dataclass field shapes."""
    if isinstance(value, list):
        return tuple(
            tuple(item) if isinstance(item, list) else item
            for item in value
        )
    return value


def _parse_toml_value(text: str) -> Any:
    """Parse one TOML value with :func:`ast.literal_eval`.

    TOML strings and arrays of strings/numbers are valid Python
    literals; booleans differ only in case.  That covers every value
    shape ``[tool.repro.lint]`` uses, which is all the fallback parser
    promises.
    """
    text = text.strip()
    if text == "true":
        return True
    if text == "false":
        return False
    return ast.literal_eval(text)


def _parse_toml_section_fallback(
    text: str, section: str
) -> Optional[Dict[str, Any]]:
    """Minimal TOML section reader for Python < 3.11 (no tomllib).

    Handles ``key = value`` lines with string/number/boolean/array
    values (arrays may span lines) inside the requested ``[section]``.
    Returns None when the section is absent.
    """
    found: Optional[Dict[str, Any]] = None
    current: Optional[str] = None
    pending_key: Optional[str] = None
    pending_value = ""
    depth = 0
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is None:
            if not line or line.startswith("#"):
                continue
            header = re.match(r"^\[(?P<name>[^\]]+)\]$", line)
            if header:
                current = header.group("name").strip()
                if current == section and found is None:
                    found = {}
                continue
        if current != section or found is None:
            continue
        if pending_key is None:
            assignment = re.match(
                r"^(?P<key>[A-Za-z0-9_.\-\"']+)\s*=\s*(?P<value>.*)$", line
            )
            if not assignment:
                continue
            pending_key = assignment.group("key").strip("\"'")
            pending_value = assignment.group("value")
        else:
            pending_value += " " + line
        depth = pending_value.count("[") - pending_value.count("]")
        if depth > 0:
            continue
        value_text = pending_value.split("#")[0] if (
            "#" in pending_value and '"' not in pending_value
        ) else pending_value
        try:
            found[pending_key] = _parse_toml_value(value_text)
        except (ValueError, SyntaxError):
            pass  # unsupported shape: keep the built-in default
        pending_key, pending_value = None, ""
    return found


def _read_pyproject_section(path: Path) -> Optional[Dict[str, Any]]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        import tomllib  # Python >= 3.11

        data = tomllib.loads(text)
        section = data.get("tool", {}).get("repro", {}).get("lint")
        return dict(section) if isinstance(section, dict) else None
    except ModuleNotFoundError:
        return _parse_toml_section_fallback(text, "tool.repro.lint")
    except ValueError:
        return None


def find_pyproject(root) -> Optional[Path]:
    """``pyproject.toml`` at the lint root or the directory above it.

    The lint root is usually ``src/``; the project file lives one level
    up in this repository.
    """
    root = Path(root)
    for candidate in (root / "pyproject.toml", root.parent / "pyproject.toml"):
        if candidate.is_file():
            return candidate
    return None


def load_config(
    root, base: LintConfig = DEFAULT_CONFIG, pyproject=None
) -> LintConfig:
    """Config for ``root``: defaults overlaid with ``[tool.repro.lint]``.

    ``pyproject`` overrides the search; pass ``False`` to skip the
    overlay entirely (fixture trees that must see pristine defaults).
    """
    if pyproject is False:
        return base
    path = Path(pyproject) if pyproject is not None else find_pyproject(root)
    if path is None:
        return base
    section = _read_pyproject_section(path)
    if not section:
        return base
    overrides = {
        name: _coerce(name, value)
        for name, value in section.items()
        if name in _FIELD_TYPES
    }
    if not overrides:
        return base
    return replace(base, **overrides)
