"""Lint configuration: what the rules treat as contract boundaries.

Everything path-like is *root-relative* (the root is the directory that
contains the ``repro`` package, i.e. ``src/`` in this repository), so
the same rules run unchanged over the shipped tree and over the tiny
synthetic trees the fixture tests build in ``tmp_path``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class LintConfig:
    """Knobs for the rule set; defaults describe this repository."""

    #: Top-level package directory to walk, relative to the root.
    package: str = "repro"

    #: Root-relative paths never linted (directories end with "/").
    exclude: Tuple[str, ...] = ()

    # -- DET002: wall-clock ------------------------------------------------
    #: Files allowed to read the wall clock.  The run manifest stamps
    #: ``generated_unix`` for humans; it is never fingerprinted.
    wallclock_allowlist: Tuple[str, ...] = ("repro/obs/manifest.py",)

    # -- CACHE001: cache-schema drift --------------------------------------
    #: Module holding the chain key construction.
    chain_module: str = "repro/chain.py"
    #: Module and constant naming the chain schema tag.
    schema_const_module: str = "repro/exec/cache.py"
    schema_const_name: str = "CHAIN_SCHEMA"
    #: Committed manifest of (chain schema tag, fingerprinted dataclass
    #: fields); regenerated with ``repro lint --update-schema``.
    schema_manifest: str = "repro/lint/chain_schema.json"
    #: Seed dataclasses whose instances reach ``fingerprint()`` as chain
    #: key components; the rule expands this set transitively through
    #: dataclass-typed fields.
    tracked_dataclasses: Tuple[Tuple[str, str], ...] = (
        ("repro/params.py", "SimProfile"),
        ("repro/systems/laptops.py", "Machine"),
        ("repro/em/environment.py", "Scenario"),
        ("repro/countermeasures.py", "VrmDithering"),
        ("repro/scenario/registry.py", "ScenarioSpec"),
    )

    # -- CONC001: raw writes under locked stores ---------------------------
    #: Modules that own the locked/atomic write discipline; raw writes
    #: to cache/scratch/store paths anywhere else are findings.
    raw_write_allowlist: Tuple[str, ...] = (
        "repro/exec/cache.py",
        "repro/sweep/store.py",
        "repro/obs/manifest.py",
    )
    #: Identifier pattern marking a path expression as cache/store-like.
    guarded_path_pattern: str = r"cache|scratch|store|result"

    # -- TRACE001: span discipline -----------------------------------------
    #: Module defining the span-name registry.
    trace_module: str = "repro/obs/trace.py"
    span_registry_name: str = "REGISTERED_SPANS"
    #: Package prefix whose modules may touch Tracer internals.
    trace_internal_prefix: str = "repro/obs/"

    # -- FLOAT001: float equality ------------------------------------------
    #: Path prefixes where ``==``/``!=`` on float expressions is flagged.
    float_eq_scopes: Tuple[str, ...] = ("repro/dsp/", "repro/vrm/")

    # -- baseline ----------------------------------------------------------
    #: Committed baseline of accepted findings (content fingerprints).
    baseline_path: str = "repro/lint/baseline.json"

    #: Extra per-rule settings fixture tests may override.
    extras: Tuple[Tuple[str, str], ...] = field(default=())

    def is_excluded(self, relpath: str) -> bool:
        for pattern in self.exclude:
            if pattern.endswith("/"):
                if relpath.startswith(pattern):
                    return True
            elif relpath == pattern:
                return True
        return False


#: Configuration for the shipped tree.
DEFAULT_CONFIG = LintConfig()
