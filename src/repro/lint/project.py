"""Parsed-source model the rules operate on.

:class:`SourceFile` wraps one module: its AST, raw lines, and the
per-line suppression map (``# lint: disable=CODE[,CODE]``; a bare
``# lint: disable`` suppresses every rule on that line).

:class:`Project` wraps the whole walked tree and adds the cross-module
helpers the project-level rules need: static import resolution (which
file does ``from ..em.noise import NoiseEnvironment`` land in?) and
dataclass field extraction, both purely syntactic - the linted tree is
never imported, so fixture trees with deliberate violations cannot
perturb the linting process.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?"
)


def parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> suppressed rule codes (empty = all)."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = set()
        else:
            suppressions[lineno] = {
                code.strip().upper()
                for code in codes.split(",")
                if code.strip()
            }
    return suppressions


@dataclass
class SourceFile:
    """One parsed module of the linted tree."""

    relpath: str  # root-relative, forward slashes
    source: str
    tree: ast.AST
    lines: List[str]
    suppressions: Dict[int, Set[str]]

    @classmethod
    def parse(cls, relpath: str, source: str) -> "SourceFile":
        tree = ast.parse(source, filename=relpath)
        lines = source.splitlines()
        return cls(
            relpath=relpath,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(lines),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        codes = self.suppressions.get(lineno)
        if codes is None:
            return False
        return not codes or rule.upper() in codes


def module_relpath(
    current: str, module: Optional[str], level: int
) -> Optional[str]:
    """Root-relative path of an imported project module, else None.

    ``current`` is the importing file's relpath; ``module``/``level``
    come straight from :class:`ast.ImportFrom`.  Only the textual
    resolution is performed - the caller decides whether the path
    exists in the walked tree.
    """
    if level == 0:
        if module is None:
            return None
        return module.replace(".", "/") + ".py"
    parts = current.split("/")[:-1]  # drop the file name
    hops = level - 1
    if hops > len(parts):
        return None
    base = parts[: len(parts) - hops] if hops else parts
    if module:
        base = base + module.split(".")
    return "/".join(base) + ".py"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _annotation_names(annotation: ast.AST) -> List[str]:
    """All bare identifiers mentioned in a field annotation."""
    names: List[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations: pull identifier-looking tokens.
            names.extend(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
    return names


@dataclass
class DataclassInfo:
    """Statically extracted shape of one dataclass definition."""

    relpath: str
    name: str
    lineno: int
    fields: List[str]
    field_annotations: Dict[str, List[str]]  # field -> identifiers


@dataclass
class Project:
    """The walked tree plus cross-module static-analysis helpers."""

    root: Path
    files: Dict[str, SourceFile] = field(default_factory=dict)

    def get(self, relpath: str) -> Optional[SourceFile]:
        return self.files.get(relpath)

    # -- imports -----------------------------------------------------------

    def imported_names(self, sf: SourceFile) -> Dict[str, Tuple[str, str]]:
        """Names bound by ``from X import Y`` -> (module relpath, source name).

        Only project-resolvable modules are returned; external imports
        (numpy, stdlib) are dropped.
        """
        resolved: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            target = module_relpath(sf.relpath, node.module, node.level)
            if target is None or target not in self.files:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                resolved[alias.asname or alias.name] = (target, alias.name)
        return resolved

    # -- dataclasses -------------------------------------------------------

    def dataclasses_in(self, relpath: str) -> Dict[str, DataclassInfo]:
        sf = self.get(relpath)
        if sf is None:
            return {}
        found: Dict[str, DataclassInfo] = {}
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            fields: List[str] = []
            annotations: Dict[str, List[str]] = {}
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                names = _annotation_names(stmt.annotation)
                if "ClassVar" in names:
                    continue  # not an instance field; never fingerprinted
                fields.append(stmt.target.id)
                annotations[stmt.target.id] = names
            found[node.name] = DataclassInfo(
                relpath=relpath,
                name=node.name,
                lineno=node.lineno,
                fields=fields,
                field_annotations=annotations,
            )
        return found

    def resolve_dataclass(
        self, relpath: str, name: str
    ) -> Optional[DataclassInfo]:
        """Find dataclass ``name`` visible from module ``relpath``.

        Looks in the module itself first, then follows a matching
        ``from ... import name`` to the defining project module.
        """
        local = self.dataclasses_in(relpath)
        if name in local:
            return local[name]
        sf = self.get(relpath)
        if sf is None:
            return None
        imported = self.imported_names(sf)
        if name in imported:
            target, source_name = imported[name]
            return self.dataclasses_in(target).get(source_name)
        return None

    def expand_dataclass_graph(
        self, seeds: List[Tuple[str, str]]
    ) -> Dict[str, DataclassInfo]:
        """Transitive closure of dataclasses reachable via typed fields.

        Starting from (module relpath, class name) seeds, follow every
        field annotation identifier that resolves to another project
        dataclass.  The result keys are ``"relpath:ClassName"``.
        """
        closure: Dict[str, DataclassInfo] = {}
        queue = list(seeds)
        while queue:
            relpath, name = queue.pop()
            info = self.resolve_dataclass(relpath, name)
            if info is None:
                continue
            key = f"{info.relpath}:{info.name}"
            if key in closure:
                continue
            closure[key] = info
            for names in info.field_annotations.values():
                for candidate in names:
                    nested = self.resolve_dataclass(info.relpath, candidate)
                    if nested is not None:
                        queue.append((nested.relpath, nested.name))
        return closure

    # -- module constants --------------------------------------------------

    def module_constant(self, relpath: str, name: str):
        """Value of a literal module-level assignment, else None."""
        sf = self.get(relpath)
        if sf is None or not isinstance(sf.tree, ast.Module):
            return None
        for stmt in sf.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    try:
                        return ast.literal_eval(value)
                    except (ValueError, TypeError):
                        return _collect_string_literals(value)
        return None


def _collect_string_literals(node: Optional[ast.expr]) -> Optional[Set[str]]:
    """String constants inside e.g. ``frozenset({...})`` expressions."""
    if node is None:
        return None
    literals = {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }
    return literals or None
