"""The lint driver: walk, parse, run rules, apply suppressions/baseline.

The engine never imports the tree it lints - everything is AST-level -
so it runs identically over the shipped package and over synthetic
fixture trees, and a deliberately broken fixture cannot corrupt the
linting process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline
from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding
from .project import Project, SourceFile
from .rules import Rule, all_rules


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors

    def summary(self) -> str:
        return (
            f"{self.files_checked} files checked: "
            f"{len(self.active)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined"
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"lint: parse error: {err}" for err in self.parse_errors)
        lines.append(self.summary())
        return "\n".join(lines)

    def render_jsonl(self) -> str:
        return "\n".join(f.as_jsonl() for f in self.findings)

    def write_report(self, path) -> Path:
        """Write every finding (active or not) as JSONL to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = self.render_jsonl()
        path.write_text(body + "\n" if body else "")
        return path


def load_project(
    root, config: LintConfig = DEFAULT_CONFIG
) -> "tuple[Project, List[str]]":
    """Parse every package module under ``root``; returns parse errors too."""
    root = Path(root)
    project = Project(root=root)
    errors: List[str] = []
    package_dir = root / config.package
    for path in sorted(package_dir.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        if config.is_excluded(relpath):
            continue
        try:
            source = path.read_text(encoding="utf-8")
            project.files[relpath] = SourceFile.parse(relpath, source)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{relpath}: {exc}")
    return project, errors


def run_lint(
    root,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    baseline_path=None,
) -> LintReport:
    """Lint the tree under ``root`` and return the report.

    ``select`` restricts to specific rule codes; ``paths`` restricts
    *per-file* rules to files whose relpath starts with one of the
    given prefixes (project-level rules always see the whole tree -
    schema drift is not a per-file property).  ``baseline_path``
    overrides the config default; pass ``False`` to disable baselining.
    """
    config = config or DEFAULT_CONFIG
    project, errors = load_project(root, config)
    active_rules = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {code.upper() for code in select}
        active_rules = [r for r in active_rules if r.code in wanted]
    findings: List[Finding] = []
    for sf in project.files.values():
        if paths and not any(sf.relpath.startswith(p) for p in paths):
            continue
        for rule in active_rules:
            findings.extend(rule.check_file(sf, project, config))
    for rule in active_rules:
        findings.extend(rule.check_project(project, config))

    _apply_suppressions(project, findings)
    _apply_baseline(project.root, config, findings, baseline_path)
    findings.sort(key=lambda f: f.sort_key())
    return LintReport(
        findings=findings,
        files_checked=len(project.files),
        parse_errors=errors,
    )


def _apply_suppressions(project: Project, findings: List[Finding]) -> None:
    for finding in findings:
        sf = project.get(finding.path)
        if sf is not None and sf.is_suppressed(finding.line, finding.rule):
            finding.suppressed = True


def _apply_baseline(
    root: Path, config: LintConfig, findings: List[Finding], baseline_path
) -> None:
    if baseline_path is False:
        return
    path = (
        Path(baseline_path)
        if baseline_path is not None
        else root / config.baseline_path
    )
    accepted = load_baseline(path)
    for finding in findings:
        if not finding.suppressed and finding.fingerprint in accepted:
            finding.baselined = True


def rule_catalog(rules: Optional[Sequence[Rule]] = None) -> str:
    """Human-readable ``--list-rules`` output."""
    lines = []
    for rule in rules if rules is not None else all_rules():
        lines.append(f"{rule.code}  {rule.name}: {rule.description}")
    return "\n".join(lines)


def write_schema_manifest(root, config: LintConfig = DEFAULT_CONFIG) -> Path:
    """Regenerate the committed chain-schema manifest (CACHE001)."""
    from .rules.cache_schema import compute_schema_manifest

    project, _ = load_project(root, config)
    manifest = compute_schema_manifest(project, config)
    path = Path(root) / config.schema_manifest
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
