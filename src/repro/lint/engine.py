"""The lint driver: walk, parse, run rules, apply suppressions/baseline.

The engine never imports the tree it lints - everything is AST-level -
so it runs identically over the shipped package and over synthetic
fixture trees, and a deliberately broken fixture cannot corrupt the
linting process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import load_baseline
from .cache import (
    LintCache,
    config_digest,
    file_key,
    finding_from_record,
    run_key,
    source_digest,
)
from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding
from .project import Project, SourceFile, parse_suppressions
from .rules import Rule, all_rules


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        return not self.active and not self.parse_errors

    def summary(self) -> str:
        return (
            f"{self.files_checked} files checked: "
            f"{len(self.active)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined"
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"lint: parse error: {err}" for err in self.parse_errors)
        lines.append(self.summary())
        return "\n".join(lines)

    def render_jsonl(self) -> str:
        return "\n".join(f.as_jsonl() for f in self.findings)

    def write_report(self, path) -> Path:
        """Write every finding (active or not) as JSONL to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = self.render_jsonl()
        path.write_text(body + "\n" if body else "")
        return path


def read_sources(
    root, config: LintConfig = DEFAULT_CONFIG
) -> "tuple[Dict[str, str], List[str]]":
    """Read (without parsing) every package module under ``root``."""
    root = Path(root)
    sources: Dict[str, str] = {}
    errors: List[str] = []
    package_dir = root / config.package
    for path in sorted(package_dir.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        if config.is_excluded(relpath):
            continue
        try:
            sources[relpath] = path.read_text(encoding="utf-8")
        except (OSError, ValueError) as exc:
            errors.append(f"{relpath}: {exc}")
    return sources, errors


def _parse_task(item: "tuple[str, str]") -> "tuple[str, object]":
    """Worker-safe parse of one module: ("ok", SourceFile) or ("err", msg)."""
    relpath, source = item
    try:
        return ("ok", SourceFile.parse(relpath, source))
    except (SyntaxError, ValueError) as exc:
        return ("err", f"{relpath}: {exc}")


def parse_sources(
    root,
    sources: Dict[str, str],
    *,
    cache: Optional[LintCache] = None,
    jobs: Optional[int] = None,
) -> "tuple[Project, List[str]]":
    """Build a :class:`Project` from read sources.

    With a cache, unchanged files reuse their pickled ASTs (only the
    cheap line/suppression scan reruns).  Cold files are parsed through
    :func:`repro.exec.choose_executor` - serial on a single CPU, a
    process pool when the host and file count justify the fork cost.
    """
    project = Project(root=Path(root))
    errors: List[str] = []
    pending: List["tuple[str, str]"] = []
    for relpath, source in sources.items():
        tree = cache.load_tree(source_digest(source)) if cache else None
        if tree is not None:
            lines = source.splitlines()
            project.files[relpath] = SourceFile(
                relpath=relpath,
                source=source,
                tree=tree,
                lines=lines,
                suppressions=parse_suppressions(lines),
            )
        else:
            pending.append((relpath, source))
    if pending:
        from ..exec.executor import choose_executor

        avg_bytes = sum(len(s) for _, s in pending) // len(pending)
        decision = choose_executor(
            len(pending), jobs=jobs, bytes_per_task=avg_bytes
        )
        if decision.mode == "processes" and decision.jobs > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=decision.jobs) as pool:
                outcomes = list(pool.map(_parse_task, pending))
        else:
            outcomes = [_parse_task(item) for item in pending]
        for status, value in outcomes:
            if status == "ok":
                project.files[value.relpath] = value
                if cache is not None:
                    cache.store_tree(source_digest(value.source), value.tree)
            else:
                errors.append(value)
    # rglob order, regardless of which lane each file took.
    project.files = dict(sorted(project.files.items()))
    return project, errors


def load_project(
    root,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    cache: Optional[LintCache] = None,
    jobs: Optional[int] = None,
) -> "tuple[Project, List[str]]":
    """Parse every package module under ``root``; returns parse errors too."""
    sources, read_errors = read_sources(root, config)
    project, parse_errors = parse_sources(root, sources, cache=cache, jobs=jobs)
    return project, read_errors + parse_errors


def run_lint(
    root,
    config: LintConfig = DEFAULT_CONFIG,
    *,
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    baseline_path=None,
    cache: Optional[LintCache] = None,
    jobs: Optional[int] = None,
) -> LintReport:
    """Lint the tree under ``root`` and return the report.

    ``select`` restricts to specific rule codes; ``paths`` restricts
    *per-file* rules to files whose relpath starts with one of the
    given prefixes (project-level rules always see the whole tree -
    schema drift is not a per-file property).  ``baseline_path``
    overrides the config default; pass ``False`` to disable baselining.

    ``cache`` enables the incremental layers (:mod:`repro.lint.cache`):
    a fully warm run skips parsing and rules entirely and only
    re-applies the baseline; a partial hit reuses per-file ASTs and
    per-file findings for unchanged files.  ``jobs`` steers the
    parallel-parse decision for cold files.
    """
    config = config or DEFAULT_CONFIG
    active_rules = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {code.upper() for code in select}
        active_rules = [r for r in active_rules if r.code in wanted]
    codes = tuple(rule.code for rule in active_rules)

    sources, read_errors = read_sources(root, config)
    cfg_digest = ""
    shas: Dict[str, str] = {}
    rkey = ""
    if cache is not None:
        cfg_digest = config_digest(config)
        shas = {rel: source_digest(src) for rel, src in sources.items()}
        rkey = run_key(shas.items(), cfg_digest, codes, paths)
        payload = cache.load_run(rkey)
        if payload is not None:
            findings = [finding_from_record(r) for r in payload["findings"]]
            _apply_baseline(Path(root), config, findings, baseline_path)
            return LintReport(
                findings=findings,
                files_checked=int(payload["files_checked"]),
                parse_errors=list(payload["parse_errors"]),
            )
    project, parse_errors = parse_sources(
        root, sources, cache=cache, jobs=jobs
    )
    errors = read_errors + parse_errors

    findings: List[Finding] = []
    for sf in project.files.values():
        if paths and not any(sf.relpath.startswith(p) for p in paths):
            continue
        if cache is not None:
            fkey = file_key(shas[sf.relpath], cfg_digest, codes)
            cached = cache.load_file_findings(fkey)
            if cached is not None:
                findings.extend(cached)
                continue
            fresh: List[Finding] = []
            for rule in active_rules:
                fresh.extend(rule.check_file(sf, project, config))
            cache.store_file_findings(fkey, fresh)
            findings.extend(fresh)
        else:
            for rule in active_rules:
                findings.extend(rule.check_file(sf, project, config))
    for rule in active_rules:
        findings.extend(rule.check_project(project, config))

    _apply_suppressions(project, findings)
    findings.sort(key=lambda f: f.sort_key())
    if cache is not None:
        # Stored post-suppression (suppressions derive from the hashed
        # file content) but pre-baseline (the baseline file can change
        # without touching the tree, so it is re-applied every run).
        cache.store_run(rkey, findings, len(project.files), errors)
    _apply_baseline(Path(root), config, findings, baseline_path)
    return LintReport(
        findings=findings,
        files_checked=len(project.files),
        parse_errors=errors,
    )


def _apply_suppressions(project: Project, findings: List[Finding]) -> None:
    for finding in findings:
        sf = project.get(finding.path)
        if sf is not None and sf.is_suppressed(finding.line, finding.rule):
            finding.suppressed = True


def _apply_baseline(
    root: Path, config: LintConfig, findings: List[Finding], baseline_path
) -> None:
    if baseline_path is False:
        return
    path = (
        Path(baseline_path)
        if baseline_path is not None
        else root / config.baseline_path
    )
    accepted = load_baseline(path)
    for finding in findings:
        if not finding.suppressed and finding.fingerprint in accepted:
            finding.baselined = True


def rule_catalog(rules: Optional[Sequence[Rule]] = None) -> str:
    """Human-readable ``--list-rules`` output."""
    lines = []
    for rule in rules if rules is not None else all_rules():
        lines.append(f"{rule.code}  {rule.name}: {rule.description}")
    return "\n".join(lines)


def write_schema_manifest(root, config: LintConfig = DEFAULT_CONFIG) -> Path:
    """Regenerate the committed chain-schema manifest (CACHE001)."""
    from .rules.cache_schema import compute_schema_manifest

    project, _ = load_project(root, config)
    manifest = compute_schema_manifest(project, config)
    path = Path(root) / config.schema_manifest
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
