"""Lightweight per-function control-flow graph for the flow-aware rules.

One node per *statement* plus three synthetic markers (entry, normal
exit, raise exit) and per-construct join markers.  Edges model the
explicit control flow: if/elif/else, while/for (with else and
break/continue), with, try/except/else/finally, return, raise.

Exception edges are deliberately minimal: a statement gets an
exceptional successor only when it sits directly in a ``try`` body
(edge to each handler entry and to the finally entry), and an explicit
``raise`` jumps to the innermost enclosing handlers/finally or to the
raise exit.  We do **not** pretend every expression can raise - that
would make "released on all paths" unprovable for any real function.
The polarity is the usual lint trade-off: the CFG under-approximates
exceptional paths, and the resource rule compensates by treating the
``try``-body edges (where acquire/release races actually live) exactly.

``finally`` bodies are built once; jumps that route through them
(return/break/continue/raise plus normal completion) are merged at the
finally exit, a path over-approximation that can only produce extra
paths, never hide one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

ENTRY = 0
EXIT = 1
RAISE_EXIT = 2


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    #: node id -> AST statement (None for synthetic markers).
    stmts: Dict[int, Optional[ast.stmt]] = field(default_factory=dict)
    #: node id -> marker label for synthetic nodes.
    labels: Dict[int, str] = field(default_factory=dict)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    #: exceptional successors: taken *before* the statement's effect.
    exc_succ: Dict[int, Set[int]] = field(default_factory=dict)

    def node_ids(self) -> List[int]:
        return sorted(self.stmts)

    def preds(self) -> Dict[int, Set[int]]:
        back: Dict[int, Set[int]] = {n: set() for n in self.stmts}
        for src, dsts in self.succ.items():
            for dst in dsts:
                back.setdefault(dst, set()).add(src)
        for src, dsts in self.exc_succ.items():
            for dst in dsts:
                back.setdefault(dst, set()).add(src)
        return back


@dataclass
class _TryCtx:
    handler_entries: List[int]
    finally_entry: Optional[int]
    #: targets that must be reached *after* the finally body runs.
    deferred: Set[int] = field(default_factory=set)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._next = 3
        for node_id, label in (
            (ENTRY, "entry"),
            (EXIT, "exit"),
            (RAISE_EXIT, "raise-exit"),
        ):
            self.cfg.stmts[node_id] = None
            self.cfg.labels[node_id] = label
            self.cfg.succ[node_id] = set()
            self.cfg.exc_succ[node_id] = set()
        self._loops: List[Dict[str, object]] = []
        self._tries: List[_TryCtx] = []

    # -- plumbing ----------------------------------------------------------

    def new_node(
        self, stmt: Optional[ast.stmt] = None, label: str = ""
    ) -> int:
        node_id = self._next
        self._next += 1
        self.cfg.stmts[node_id] = stmt
        if label:
            self.cfg.labels[node_id] = label
        self.cfg.succ[node_id] = set()
        self.cfg.exc_succ[node_id] = set()
        return node_id

    def connect(self, frontier: Set[int], node_id: int) -> None:
        for src in frontier:
            self.cfg.succ[src].add(node_id)

    def _exceptional_targets(self) -> List[int]:
        if not self._tries:
            return []
        ctx = self._tries[-1]
        targets = list(ctx.handler_entries)
        if ctx.finally_entry is not None:
            targets.append(ctx.finally_entry)
            ctx.deferred.add(RAISE_EXIT)
        return targets

    def _jump(self, node_id: int, ultimate: int) -> None:
        """Route a jump through enclosing finally bodies, if any."""
        for ctx in reversed(self._tries):
            if ctx.finally_entry is not None:
                self.cfg.succ[node_id].add(ctx.finally_entry)
                ctx.deferred.add(ultimate)
                return
        self.cfg.succ[node_id].add(ultimate)

    # -- statement dispatch ------------------------------------------------

    def block(
        self, stmts: Sequence[ast.stmt], frontier: Set[int]
    ) -> Set[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        handler = getattr(
            self, f"_stmt_{type(stmt).__name__.lower()}", None
        )
        if handler is not None:
            return handler(stmt, frontier)
        node = self.new_node(stmt)
        self.connect(frontier, node)
        return {node}

    def _stmt_if(self, stmt: ast.If, frontier: Set[int]) -> Set[int]:
        test = self.new_node(stmt)
        self.connect(frontier, test)
        then_f = self.block(stmt.body, {test})
        else_f = self.block(stmt.orelse, {test})
        return then_f | else_f

    def _loop(self, stmt, frontier: Set[int]) -> Set[int]:
        head = self.new_node(stmt)
        self.connect(frontier, head)
        loop = {"head": head, "breaks": set()}
        self._loops.append(loop)
        body_f = self.block(stmt.body, {head})
        self._loops.pop()
        self.connect(body_f, head)  # back edge
        else_f = self.block(stmt.orelse, {head})
        exits: Set[int] = set(loop["breaks"])  # type: ignore[arg-type]
        exits |= else_f if stmt.orelse else {head}
        if stmt.orelse:
            # `else` runs on normal exhaustion; breaks skip it.
            return exits
        return exits

    _stmt_while = _loop
    _stmt_for = _loop
    _stmt_asyncfor = _loop

    def _stmt_break(self, stmt: ast.Break, frontier: Set[int]) -> Set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if self._loops:
            self._loops[-1]["breaks"].add(node)  # type: ignore[union-attr]
        return set()

    def _stmt_continue(
        self, stmt: ast.Continue, frontier: Set[int]
    ) -> Set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if self._loops:
            self.cfg.succ[node].add(self._loops[-1]["head"])  # type: ignore[arg-type]
        return set()

    def _stmt_return(self, stmt: ast.Return, frontier: Set[int]) -> Set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        self._jump(node, EXIT)
        return set()

    def _stmt_raise(self, stmt: ast.Raise, frontier: Set[int]) -> Set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if self._tries:
            ctx = self._tries[-1]
            for target in ctx.handler_entries:
                self.cfg.succ[node].add(target)
            if ctx.finally_entry is not None:
                self.cfg.succ[node].add(ctx.finally_entry)
                ctx.deferred.add(RAISE_EXIT)
            if not ctx.handler_entries and ctx.finally_entry is None:
                self._jump(node, RAISE_EXIT)
        else:
            self._jump(node, RAISE_EXIT)
        return set()

    def _with(self, stmt, frontier: Set[int]) -> Set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        return self.block(stmt.body, {node})

    _stmt_with = _with
    _stmt_asyncwith = _with

    def _stmt_try(self, stmt: ast.Try, frontier: Set[int]) -> Set[int]:
        entry = self.new_node(None, label="try")
        self.connect(frontier, entry)
        handler_entries = [
            self.new_node(handler, label="except")
            for handler in stmt.handlers
        ]
        finally_entry = (
            self.new_node(None, label="finally") if stmt.finalbody else None
        )
        ctx = _TryCtx(handler_entries, finally_entry)
        self._tries.append(ctx)
        body_start = self._next  # ids are allocated in build order
        body_f = self.block(stmt.body, {entry})
        body_end = self._next
        # Every try-body statement may divert to a handler / finally
        # before its effect lands.
        exceptional = handler_entries + (
            [finally_entry] if finally_entry is not None else []
        )
        for node_id in range(body_start, body_end):
            if self.cfg.stmts.get(node_id) is not None:
                for target in exceptional:
                    self.cfg.exc_succ[node_id].add(target)
        self._tries.pop()
        else_f = self.block(stmt.orelse, body_f) if stmt.orelse else body_f
        handler_fs: Set[int] = set()
        for handler, h_entry in zip(stmt.handlers, handler_entries):
            handler_fs |= self.block(handler.body, {h_entry})
        if finally_entry is not None:
            self.connect(else_f | handler_fs, finally_entry)
            final_f = self.block(stmt.finalbody, {finally_entry})
            for target in ctx.deferred:
                self.connect(final_f, target)
            return set(final_f)
        return else_f | handler_fs


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of a ``FunctionDef``/``AsyncFunctionDef`` body.

    Nested function definitions are opaque single statements (their
    bodies get their own CFGs when analyzed).
    """
    builder = _Builder()
    builder.cfg.succ[ENTRY] = set()
    frontier = builder.block(list(fn.body), {ENTRY})
    builder.connect(frontier, EXIT)
    return builder.cfg


def dataflow_paths_reach(
    cfg: CFG,
    gen: Dict[int, Set[str]],
    kill: Dict[int, Set[str]],
) -> Dict[int, Set[str]]:
    """Forward may-analysis: obligations live *entering* each node.

    ``gen[n]`` introduces obligations after node ``n`` executes;
    ``kill[n]`` discharges them.  Normal edges propagate the post-state
    (IN - kill + gen); exceptional edges propagate the *pre*-state (the
    statement may not have completed).  An obligation in ``IN[EXIT]``
    or ``IN[RAISE_EXIT]`` is live on some path to that exit.
    """
    live_in: Dict[int, Set[str]] = {n: set() for n in cfg.stmts}
    # Every node is processed at least once: gen sets must flow even
    # when the incoming state is empty.
    worklist: List[int] = list(cfg.stmts)
    while worklist:
        node = worklist.pop()
        out_normal = (live_in[node] - kill.get(node, set())) | gen.get(
            node, set()
        )
        for dst in cfg.succ.get(node, ()):  # normal edges: post-state
            if not out_normal <= live_in[dst]:
                live_in[dst] |= out_normal
                worklist.append(dst)
        for dst in cfg.exc_succ.get(node, ()):  # exc edges: pre-state
            if not live_in[node] <= live_in[dst]:
                live_in[dst] |= live_in[node]
                worklist.append(dst)
    return live_in


def own_nodes(stmt: ast.AST) -> List[ast.AST]:
    """Subexpressions evaluated *at* this CFG node.

    Compound statements own only their header (test / iter / context
    items / exception type) - their bodies have CFG nodes of their own,
    so scanning the whole subtree would misattribute effects to the
    header.  Nested function/class definitions own nothing executable
    (their bodies run elsewhere).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def walk_own(stmt: ast.AST):
    """``ast.walk`` restricted to the node's own subexpressions."""
    for root in own_nodes(stmt):
        yield from ast.walk(root)


def statements_of(cfg: CFG) -> Dict[int, ast.stmt]:
    """Real (non-marker) statements by node id."""
    return {
        node_id: stmt
        for node_id, stmt in cfg.stmts.items()
        if stmt is not None
    }
