"""CONC001: raw writes to cache/scratch/result-store paths.

The disk cache and the sweep result store are shared between worker
processes; their write discipline (atomic ``os.replace`` publishes,
per-key ``fcntl`` stampede locks, append+flush JSONL) lives in
``repro/exec/cache.py`` and ``repro/sweep/store.py``.  A plain
``open(results_path, "w")`` anywhere else reintroduces exactly the
torn-read/stampede race class those helpers close - this rule detects
it statically instead of waiting for a flaky resume test.

Heuristic: a call that opens a path for writing (``open``/``.open``
with a w/a/x/+ mode, ``.write_text``/``.write_bytes``, ``os.fdopen``)
is a finding when the path expression (for ``os.fdopen``: the
enclosing function) mentions a cache/scratch/store/result identifier
and the module is not one of the blessed writers.  Direct ``fcntl``
use outside the cache module is flagged unconditionally: the lock
protocol must stay in one place.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from ..config import LintConfig
from ..findings import Finding
from ..project import Project, SourceFile
from .base import (
    Rule,
    dotted_name,
    enclosing_functions,
    expression_tokens,
)

_WRITE_MODE = re.compile(r"[wax+]")


def _mode_argument(call: ast.Call, position: int) -> Optional[str]:
    """The mode string of an open-style call, if statically known."""
    if len(call.args) > position:
        node = call.args[position]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            node = keyword.value
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                return node.value
            return None
    return "r"  # open() defaults to read


class RawStoreWriteRule(Rule):
    """CONC001: writes that bypass the locked/atomic store helpers."""

    code = "CONC001"
    name = "raw-store-write"
    description = (
        "file writes under cache/scratch/result-store paths must go "
        "through the fcntl-locked / atomic-rename helpers"
    )

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        blessed = sf.relpath in config.raw_write_allowlist
        pattern = re.compile(config.guarded_path_pattern, re.IGNORECASE)
        owner = enclosing_functions(sf.tree)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted == "fcntl.flock" or dotted == "fcntl.lockf":
                if sf.relpath != "repro/exec/cache.py":
                    findings.append(
                        self.finding(
                            sf,
                            node,
                            "per-key lock protocol belongs in "
                            "repro/exec/cache.py; call ChainCache.lock() "
                            "instead of raw fcntl",
                        )
                    )
                continue
            if blessed:
                continue
            guarded = self._guarded_write_target(node, dotted, owner, pattern)
            if guarded is not None:
                findings.append(
                    self.finding(
                        sf,
                        node,
                        f"raw {guarded} on a cache/store path bypasses "
                        "the locked/atomic helpers (ChainCache, "
                        "ResultStore, write_manifest); racing workers "
                        "can tear or stampede it",
                    )
                )
        return findings

    def _guarded_write_target(
        self,
        node: ast.Call,
        dotted: Optional[str],
        owner,
        pattern: re.Pattern,
    ) -> Optional[str]:
        """Describe the write if it targets a guarded path, else None."""
        path_expr: Optional[ast.AST] = None
        what = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _mode_argument(node, 1)
            if mode is None or _WRITE_MODE.search(mode):
                path_expr = node.args[0] if node.args else None
                what = "open() for writing"
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "open":
                mode = _mode_argument(node, 0)
                if mode is not None and not _WRITE_MODE.search(mode):
                    return None
                path_expr = node.func.value
                what = ".open() for writing"
            elif attr in ("write_text", "write_bytes"):
                path_expr = node.func.value
                what = f".{attr}()"
            elif dotted == "os.fdopen":
                mode = _mode_argument(node, 1)
                if mode is not None and not _WRITE_MODE.search(mode):
                    return None
                # The fd hides the path; judge the enclosing function.
                path_expr = owner.get(node)
                what = "os.fdopen()"
        if path_expr is None or what is None:
            return None
        tokens = expression_tokens(path_expr)
        if any(pattern.search(token) for token in tokens):
            return what
        return None
