"""CACHE001: cache-schema drift.

The chain cache is sound only while two contracts hold:

1. *Key coverage* - every input that can change a stage's physics
   reaches that stage's ``fingerprint()`` call.  Because
   ``fingerprint`` hashes dataclasses field-by-field, this reduces to:
   every parameter of a public chain entry point must flow (possibly
   through local helper calls) into some ``fingerprint()`` argument.

2. *Schema discipline* - the key-relevant dataclass *shapes* are part
   of the key only implicitly (a new field changes every digest), so
   any change to the fingerprinted dataclass graph must be accompanied
   by a ``CHAIN_SCHEMA`` bump; otherwise a disk cache written by the
   old code is silently consulted with keys computed by the new code
   (or vice versa after a revert, which is the dangerous direction:
   same key, different physics).

Contract 2 is enforced against a committed manifest
(``repro/lint/chain_schema.json``) recording the schema tag and the
transitive field lists; ``repro lint --update-schema`` regenerates it
after an intentional, schema-bumped change.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Set

from ..config import LintConfig
from ..findings import Finding
from ..graph import ProjectGraph, project_graph
from ..project import Project
from .base import Rule

MANIFEST_SCHEMA = "repro-lint-chain-schema-v1"

#: Parameter names that are plumbing, not physics inputs (the live set
#: comes from ``LintConfig.plumbing_params``; this mirrors the historic
#: default for callers that used the module constant directly).
_PLUMBING_PARAMS = {"self", "cache", "key", "on_hit", "compute"}


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def compute_schema_manifest(
    project: Project, config: LintConfig
) -> Dict[str, object]:
    """The manifest the shipped tree should match (see module docstring)."""
    schema = project.module_constant(
        config.schema_const_module, config.schema_const_name
    )
    closure = project.expand_dataclass_graph(list(config.tracked_dataclasses))
    return {
        "schema": MANIFEST_SCHEMA,
        "chain_schema": schema,
        "dataclasses": {
            key: closure[key].fields for key in sorted(closure)
        },
    }


class CacheSchemaRule(Rule):
    """CACHE001: key coverage + schema-bump discipline."""

    code = "CACHE001"
    name = "cache-schema-drift"
    description = (
        "chain inputs must reach fingerprint(); fingerprinted dataclass "
        "changes must bump CHAIN_SCHEMA and refresh the manifest"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_key_coverage(project, config))
        findings.extend(self._check_manifest(project, config))
        return findings

    # -- contract 1: key coverage across the chain scope -------------------

    def _check_key_coverage(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        runners = graph.stage_runner_keys()
        reach = graph.sink_reach(
            "fingerprint", key_carrier_attrs=config.key_carrier_attrs
        )
        plumbing = set(config.plumbing_params) | _PLUMBING_PARAMS
        findings: List[Finding] = []
        for key in sorted(runners):
            info = graph.functions[key]
            if not config.in_scope(info.relpath, config.chain_scope):
                continue
            if "." in info.qualname or info.name.startswith("_"):
                continue  # nested/private stages: covered by callers
            sf = project.get(info.relpath)
            if sf is None:
                continue
            chain = self._stage_chain(graph, key, runners)
            for param in info.params:
                if param in plumbing or param.startswith("k_"):
                    continue
                if param in reach[key]:
                    continue
                findings.append(
                    self.finding(
                        sf,
                        info.node,
                        f"parameter {param!r} of chain entry point "
                        f"{info.name}() never reaches fingerprint(); "
                        "stale cache entries would be served when it "
                        "changes",
                        chain=chain,
                    )
                )
        for relpath in sorted(project.files):
            if not config.in_scope(relpath, config.chain_scope):
                continue
            sf = project.files[relpath]
            for node in ast.walk(sf.tree):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "fingerprint"
                    and config.schema_const_name not in _names_in(node)
                ):
                    findings.append(
                        self.finding(
                            sf,
                            node,
                            "chain-key fingerprint() call without "
                            f"{config.schema_const_name}; stale disk "
                            "caches from older chain semantics could be "
                            "served",
                        )
                    )
        return findings

    @staticmethod
    def _stage_chain(
        graph: ProjectGraph, start: str, runners: Set[str]
    ) -> List[str]:
        """Call chain from a runner to the nearest direct stage() call."""

        def has_direct_stage(key: str) -> bool:
            for node in ast.walk(graph.functions[key].node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "stage"
                ):
                    return True
            return False

        chains = {start: [start]}
        queue = [start]
        while queue:
            current = queue.pop(0)
            if has_direct_stage(current):
                return graph.qualchain(chains[current])
            for site in graph.callees(current):
                if site.callee in runners and site.callee not in chains:
                    chains[site.callee] = chains[current] + [site.callee]
                    queue.append(site.callee)
        return graph.qualchain([start])

    # -- contract 2: manifest vs tree --------------------------------------

    def _check_manifest(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        current = compute_schema_manifest(project, config)
        manifest_path = project.root / config.schema_manifest
        if not manifest_path.exists():
            return [
                self.finding(
                    config.schema_manifest,
                    1,
                    "chain-schema manifest missing; run "
                    "`repro lint --update-schema` to record the "
                    "fingerprinted dataclass shapes",
                )
            ]
        try:
            recorded = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return [
                self.finding(
                    config.schema_manifest,
                    1,
                    "chain-schema manifest unreadable; regenerate with "
                    "`repro lint --update-schema`",
                )
            ]
        findings: List[Finding] = []
        schema_bumped = recorded.get("chain_schema") != current["chain_schema"]
        recorded_shapes = recorded.get("dataclasses", {})
        current_shapes = current["dataclasses"]
        drifted = sorted(
            key
            for key in set(recorded_shapes) | set(current_shapes)
            if recorded_shapes.get(key) != current_shapes.get(key)
        )
        for key in drifted:
            relpath, _, class_name = key.partition(":")
            lineno = 1
            info_map = project.dataclasses_in(relpath)
            if class_name in info_map:
                lineno = info_map[class_name].lineno
            anchor = project.get(relpath)
            before = recorded_shapes.get(key)
            after = current_shapes.get(key)
            if schema_bumped:
                message = (
                    f"fingerprinted dataclass {class_name} changed "
                    f"({before} -> {after}); CHAIN_SCHEMA was bumped - "
                    "refresh the manifest with `repro lint --update-schema`"
                )
            else:
                message = (
                    f"fingerprinted dataclass {class_name} changed "
                    f"({before} -> {after}) without a "
                    f"{config.schema_const_name} bump; old disk-cache "
                    "entries would collide with new-physics keys"
                )
            findings.append(
                self.finding(anchor or relpath, lineno, message)
            )
        if schema_bumped and not drifted:
            findings.append(
                self.finding(
                    config.schema_manifest,
                    1,
                    f"{config.schema_const_name} is now "
                    f"{current['chain_schema']!r} but the manifest "
                    f"records {recorded.get('chain_schema')!r}; refresh "
                    "with `repro lint --update-schema`",
                )
            )
        return findings
