"""CACHE001: cache-schema drift.

The chain cache is sound only while two contracts hold:

1. *Key coverage* - every input that can change a stage's physics
   reaches that stage's ``fingerprint()`` call.  Because
   ``fingerprint`` hashes dataclasses field-by-field, this reduces to:
   every parameter of a public chain entry point must flow (possibly
   through local helper calls) into some ``fingerprint()`` argument.

2. *Schema discipline* - the key-relevant dataclass *shapes* are part
   of the key only implicitly (a new field changes every digest), so
   any change to the fingerprinted dataclass graph must be accompanied
   by a ``CHAIN_SCHEMA`` bump; otherwise a disk cache written by the
   old code is silently consulted with keys computed by the new code
   (or vice versa after a revert, which is the dangerous direction:
   same key, different physics).

Contract 2 is enforced against a committed manifest
(``repro/lint/chain_schema.json``) recording the schema tag and the
transitive field lists; ``repro lint --update-schema`` regenerates it
after an intentional, schema-bumped change.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from ..project import Project
from .base import Rule

MANIFEST_SCHEMA = "repro-lint-chain-schema-v1"

#: Parameter names that are plumbing, not physics inputs.
_PLUMBING_PARAMS = {"self", "cache", "key", "on_hit", "compute"}


def _function_defs(tree: ast.AST) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    }


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _map_call_args(
    call: ast.Call, callee: ast.FunctionDef
) -> List[Tuple[ast.AST, str]]:
    """Pair each argument expression with the callee parameter it binds."""
    pairs: List[Tuple[ast.AST, str]] = []
    positional = callee.args.posonlyargs + callee.args.args
    for index, arg in enumerate(call.args):
        if index < len(positional):
            pairs.append((arg, positional[index].arg))
    valid = set(_param_names(callee))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in valid:
            pairs.append((keyword.value, keyword.arg))
    return pairs


def _fingerprint_reach(
    functions: Dict[str, ast.FunctionDef],
) -> Dict[str, Set[str]]:
    """Per function: parameters that (transitively) reach fingerprint().

    A parameter reaches directly when it appears inside an argument of a
    ``fingerprint(...)`` call, and transitively when it is passed into a
    local callee parameter that itself reaches.  Iterated to fixpoint.
    """
    reach: Dict[str, Set[str]] = {name: set() for name in functions}
    for name, fn in functions.items():
        params = set(_param_names(fn))
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and _call_name(node) == "fingerprint":
                used: Set[str] = set()
                for arg in node.args:
                    used |= _names_in(arg)
                for keyword in node.keywords:
                    used |= _names_in(keyword.value)
                reach[name] |= used & params
    changed = True
    while changed:
        changed = False
        for name, fn in functions.items():
            params = set(_param_names(fn))
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                callee_name = _call_name(node)
                if callee_name is None or callee_name not in functions:
                    continue
                callee = functions[callee_name]
                for arg_expr, callee_param in _map_call_args(node, callee):
                    if callee_param not in reach[callee_name]:
                        continue
                    hits = _names_in(arg_expr) & params
                    if hits - reach[name]:
                        reach[name] |= hits
                        changed = True
    return reach


def _stage_runners(functions: Dict[str, ast.FunctionDef]) -> Set[str]:
    """Functions that (transitively, module-locally) execute a stage."""
    runners: Set[str] = set()
    for name, fn in functions.items():
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and _call_name(node) == "stage":
                runners.add(name)
                break
    changed = True
    while changed:
        changed = False
        for name, fn in functions.items():
            if name in runners:
                continue
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) in runners
                ):
                    runners.add(name)
                    changed = True
                    break
    return runners


def compute_schema_manifest(
    project: Project, config: LintConfig
) -> Dict[str, object]:
    """The manifest the shipped tree should match (see module docstring)."""
    schema = project.module_constant(
        config.schema_const_module, config.schema_const_name
    )
    closure = project.expand_dataclass_graph(list(config.tracked_dataclasses))
    return {
        "schema": MANIFEST_SCHEMA,
        "chain_schema": schema,
        "dataclasses": {
            key: closure[key].fields for key in sorted(closure)
        },
    }


class CacheSchemaRule(Rule):
    """CACHE001: key coverage + schema-bump discipline."""

    code = "CACHE001"
    name = "cache-schema-drift"
    description = (
        "chain inputs must reach fingerprint(); fingerprinted dataclass "
        "changes must bump CHAIN_SCHEMA and refresh the manifest"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_key_coverage(project, config))
        findings.extend(self._check_manifest(project, config))
        return findings

    # -- contract 1: key coverage in the chain module ----------------------

    def _check_key_coverage(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        sf = project.get(config.chain_module)
        if sf is None:
            return []
        functions = _function_defs(sf.tree)
        reach = _fingerprint_reach(functions)
        runners = _stage_runners(functions)
        findings: List[Finding] = []
        for name in sorted(runners):
            if name.startswith("_"):
                continue  # internal stages are covered by their callers
            fn = functions[name]
            for param in _param_names(fn):
                if param in _PLUMBING_PARAMS or param.startswith("k_"):
                    continue
                if param in reach[name]:
                    continue
                findings.append(
                    self.finding(
                        sf,
                        fn,
                        f"parameter {param!r} of chain entry point "
                        f"{name}() never reaches fingerprint(); stale "
                        "cache entries would be served when it changes",
                    )
                )
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "fingerprint"
                and config.schema_const_name not in _names_in(node)
            ):
                findings.append(
                    self.finding(
                        sf,
                        node,
                        "chain-key fingerprint() call without "
                        f"{config.schema_const_name}; stale disk caches "
                        "from older chain semantics could be served",
                    )
                )
        return findings

    # -- contract 2: manifest vs tree --------------------------------------

    def _check_manifest(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        current = compute_schema_manifest(project, config)
        manifest_path = project.root / config.schema_manifest
        if not manifest_path.exists():
            return [
                self.finding(
                    config.schema_manifest,
                    1,
                    "chain-schema manifest missing; run "
                    "`repro lint --update-schema` to record the "
                    "fingerprinted dataclass shapes",
                )
            ]
        try:
            recorded = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return [
                self.finding(
                    config.schema_manifest,
                    1,
                    "chain-schema manifest unreadable; regenerate with "
                    "`repro lint --update-schema`",
                )
            ]
        findings: List[Finding] = []
        schema_bumped = recorded.get("chain_schema") != current["chain_schema"]
        recorded_shapes = recorded.get("dataclasses", {})
        current_shapes = current["dataclasses"]
        drifted = sorted(
            key
            for key in set(recorded_shapes) | set(current_shapes)
            if recorded_shapes.get(key) != current_shapes.get(key)
        )
        for key in drifted:
            relpath, _, class_name = key.partition(":")
            lineno = 1
            info_map = project.dataclasses_in(relpath)
            if class_name in info_map:
                lineno = info_map[class_name].lineno
            anchor = project.get(relpath)
            before = recorded_shapes.get(key)
            after = current_shapes.get(key)
            if schema_bumped:
                message = (
                    f"fingerprinted dataclass {class_name} changed "
                    f"({before} -> {after}); CHAIN_SCHEMA was bumped - "
                    "refresh the manifest with `repro lint --update-schema`"
                )
            else:
                message = (
                    f"fingerprinted dataclass {class_name} changed "
                    f"({before} -> {after}) without a "
                    f"{config.schema_const_name} bump; old disk-cache "
                    "entries would collide with new-physics keys"
                )
            findings.append(
                self.finding(anchor or relpath, lineno, message)
            )
        if schema_bumped and not drifted:
            findings.append(
                self.finding(
                    config.schema_manifest,
                    1,
                    f"{config.schema_const_name} is now "
                    f"{current['chain_schema']!r} but the manifest "
                    f"records {recorded.get('chain_schema')!r}; refresh "
                    "with `repro lint --update-schema`",
                )
            )
        return findings
