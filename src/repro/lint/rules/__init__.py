"""Rule registry: one instance of every shipped rule."""

from __future__ import annotations

from typing import Dict, List

from .base import Rule
from .cache_schema import CacheSchemaRule
from .concurrency import RawStoreWriteRule
from .determinism import UnseededRandomRule, WallClockRule
from .floats import FloatEqualityRule
from .tracing import SpanDisciplineRule

__all__ = [
    "Rule",
    "CacheSchemaRule",
    "RawStoreWriteRule",
    "UnseededRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "SpanDisciplineRule",
    "all_rules",
    "rules_by_code",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        CacheSchemaRule(),
        RawStoreWriteRule(),
        SpanDisciplineRule(),
        FloatEqualityRule(),
    ]


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in all_rules()}
