"""Rule registry: one instance of every shipped rule."""

from __future__ import annotations

from typing import Dict, List

from .async_safety import AsyncBlockingRule, AsyncDroppedAwaitableRule
from .base import Rule
from .cache_schema import CacheSchemaRule
from .concurrency import RawStoreWriteRule
from .determinism import UnseededRandomRule, WallClockRule
from .floats import FloatEqualityRule
from .resources import ResourceLeakRule, UseAfterReleaseRule
from .scenario_contracts import (
    ScenarioRandomnessRule,
    ScenarioResourceRule,
)
from .tracing import SpanDisciplineRule

__all__ = [
    "Rule",
    "AsyncBlockingRule",
    "AsyncDroppedAwaitableRule",
    "CacheSchemaRule",
    "RawStoreWriteRule",
    "ResourceLeakRule",
    "UseAfterReleaseRule",
    "ScenarioResourceRule",
    "ScenarioRandomnessRule",
    "UnseededRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "SpanDisciplineRule",
    "all_rules",
    "rules_by_code",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        CacheSchemaRule(),
        RawStoreWriteRule(),
        SpanDisciplineRule(),
        FloatEqualityRule(),
        AsyncBlockingRule(),
        AsyncDroppedAwaitableRule(),
        ResourceLeakRule(),
        UseAfterReleaseRule(),
        ScenarioResourceRule(),
        ScenarioRandomnessRule(),
    ]


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in all_rules()}
