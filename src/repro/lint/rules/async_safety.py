"""ASYNC001/ASYNC002: event-loop safety in the mux scheduler.

The fleet multiplexer's ``run_async`` shares one event loop with every
other coroutine the host embeds it in; a single ``time.sleep`` or
fcntl-locked cache write anywhere in its (cross-module) call closure
stalls every stream at once - exactly the tail-latency artifact the
conservation ledger cannot attribute afterwards.  ASYNC001 walks the
project call graph from each ``async def`` in the configured scopes
and flags blocking primitives anywhere in the reachable closure, with
the resolved call chain attached to the finding so the report shows
*how* the loop gets from ``run_async`` to the offending call.

ASYNC002 is the complementary local check: a call that produces an
awaitable (a project ``async def`` or an ``asyncio.*`` coroutine
factory) used as a bare expression statement never runs - the
classic silently-dropped coroutine.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..config import LintConfig
from ..findings import Finding
from ..graph import FunctionInfo, ProjectGraph, project_graph
from ..project import Project
from .base import Rule, dotted_name, import_aliases, resolved_call_name

#: ``asyncio`` helpers that build coroutines/futures needing await.
_ASYNCIO_AWAITABLES = {
    "asyncio.sleep",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.wait_for",
    "asyncio.to_thread",
    "asyncio.open_connection",
}


def _blocking_reason(
    call: ast.Call, aliases: Dict[str, str], config: LintConfig
) -> str:
    """Why this call blocks the loop, or "" when it does not."""
    resolved = resolved_call_name(call, aliases)
    if resolved in config.blocking_calls:
        return f"blocking call {resolved}()"
    dotted = dotted_name(call.func)
    if dotted is not None:
        for suffix in config.blocking_attr_calls:
            if dotted == suffix or dotted.endswith("." + suffix):
                return f"pool fan-out {dotted}() blocks until every task returns"
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in config.blocking_io_methods
    ):
        return f"file I/O .{call.func.attr}()"
    return ""


class AsyncBlockingRule(Rule):
    """ASYNC001: blocking primitives reachable from ``async def``."""

    code = "ASYNC001"
    name = "async-blocking-call"
    description = (
        "no time.sleep/fcntl/subprocess/file-I/O/pool.map anywhere in "
        "the call-graph closure of an async def in the mux scopes"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        roots = [
            info.key
            for info in graph.functions.values()
            if info.is_async
            and config.in_scope(info.relpath, config.async_scopes)
        ]
        if not roots:
            return []
        chains = graph.reachable(roots)
        findings: List[Finding] = []
        seen: Set[str] = set()
        alias_cache: Dict[str, Dict[str, str]] = {}
        for key in sorted(chains):
            info = graph.functions[key]
            sf = project.get(info.relpath)
            if sf is None:
                continue
            if info.relpath not in alias_cache:
                alias_cache[info.relpath] = import_aliases(sf.tree)
            aliases = alias_cache[info.relpath]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node, aliases, config)
                if not reason:
                    continue
                marker = f"{info.relpath}:{node.lineno}:{node.col_offset}"
                if marker in seen:
                    continue  # one finding per call site, not per root
                seen.add(marker)
                chain = graph.qualchain(chains[key])
                root_info = graph.functions[chains[key][0]]
                findings.append(
                    self.finding(
                        sf,
                        node,
                        f"{reason} reachable from async "
                        f"{root_info.qualname}() "
                        f"({' -> '.join(step.split(':')[-1] for step in chain)}); "
                        "it stalls the shared event loop for every stream",
                        chain=chain,
                    )
                )
        return findings


class AsyncDroppedAwaitableRule(Rule):
    """ASYNC002: awaitable built then dropped without ``await``."""

    code = "ASYNC002"
    name = "async-dropped-awaitable"
    description = (
        "a coroutine created inside an async def must be awaited (or "
        "scheduled); a bare call expression never runs"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        findings: List[Finding] = []
        for info in graph.functions.values():
            if not info.is_async:
                continue
            if not config.in_scope(info.relpath, config.async_scopes):
                continue
            sf = project.get(info.relpath)
            if sf is None:
                continue
            aliases = import_aliases(sf.tree)
            types = graph.local_types(info)
            for stmt in ast.walk(info.node):
                if not isinstance(stmt, ast.Expr):
                    continue
                call = stmt.value
                if not isinstance(call, ast.Call):
                    continue
                if self._is_awaitable_call(
                    call, info, graph, aliases, types
                ):
                    findings.append(
                        self.finding(
                            sf,
                            call,
                            "awaitable dropped without await inside "
                            f"async {info.qualname}(); the coroutine is "
                            "created but never runs",
                        )
                    )
        return findings

    @staticmethod
    def _is_awaitable_call(
        call: ast.Call,
        info: FunctionInfo,
        graph: ProjectGraph,
        aliases: Dict[str, str],
        types: Dict[str, str],
    ) -> bool:
        resolved = resolved_call_name(call, aliases)
        if resolved in _ASYNCIO_AWAITABLES:
            return True
        for callee in graph.resolve_call(info.relpath, call, info, types):
            if graph.functions[callee].is_async:
                return True
        return False
