"""RES001/RES002: pooled slab-buffer lifecycle in ``repro.mux``.

The chunk pool hands out views into one preallocated slab; the runtime
ledger (produced = delivered + shed + dropped + buffered) catches a
leaked slab only after the fact, as a conservation failure at the end
of a fleet run.  These rules prove the discipline statically:

* **RES001** - every ownership acquire (an argless ``.pop()`` on a
  queue/pool in the mux scopes) must reach a discharge on *all* CFG
  paths, including the ``try``-body exception edges.  A discharge is a
  ``release(var)`` call, a hand-off into the pool/queue implementation
  (whose internal accounting is the audited ledger), a transfer into a
  callee that discharges that parameter (ownership moves with the
  call), or an escape (returned / yielded / stored - the new holder
  owns it).

* **RES002** - no read of a slab-view attribute (``chunk.samples``)
  after the chunk was released on some path: the pool recycles slabs
  immediately, so the view aliases another stream's data.  Plain
  metadata (``size``, ``end_sample``) stays valid by design and is not
  flagged.

The pool implementation modules themselves are exempt from acquire
tracking: their internal freelist ``.pop()`` is bookkeeping, not an
ownership grant.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import (
    EXIT,
    RAISE_EXIT,
    build_cfg,
    dataflow_paths_reach,
    walk_own,
)
from ..config import LintConfig
from ..findings import Finding
from ..graph import (
    FunctionInfo,
    ProjectGraph,
    map_call_args,
    project_graph,
)
from ..project import Project
from .base import Rule


def _is_acquire(call: ast.Call) -> bool:
    """An argless ``<expr>.pop()`` - the ownership-granting shape.

    ``list.pop(0)`` and friends take an index; the pool/queue protocol
    pop is argless, which is what discriminates the two statically.
    """
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "pop"
        and not call.args
        and not call.keywords
    )


def _arg_names(call: ast.Call) -> Set[str]:
    names: Set[str] = set()
    for arg in call.args:
        if isinstance(arg, ast.Name):
            names.add(arg.id)
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name):
            names.add(kw.value.id)
    return names


class _Analysis:
    """Shared per-run state for both RES rules."""

    def __init__(
        self, project: Project, graph: ProjectGraph, config: LintConfig
    ):
        self.project = project
        self.graph = graph
        self.config = config
        self._types: Dict[str, Dict[str, str]] = {}
        self._discharge: Dict[str, Set[str]] = self._discharging_params()

    def types_of(self, info: FunctionInfo) -> Dict[str, str]:
        if info.key not in self._types:
            self._types[info.key] = self.graph.local_types(info)
        return self._types[info.key]

    def _impl_class_keys(self) -> Set[str]:
        return {
            key
            for key, cinfo in self.graph.classes.items()
            if self.config.in_scope(
                cinfo.relpath, self.config.res_impl_modules
            )
            or cinfo.relpath in self.config.res_impl_modules
        }

    def _discharging_params(self) -> Dict[str, Set[str]]:
        """Per function: parameters it discharges on *some* path.

        Passing a chunk to such a parameter moves ownership: the callee
        is responsible for (conditionally) releasing it, which is
        exactly the ``_dispatch(state, chunk, pooled=True)`` pattern.
        """
        impl_classes = self._impl_class_keys()
        graph, config = self.graph, self.config
        discharge: Dict[str, Set[str]] = {
            key: set() for key in graph.functions
        }

        def direct(info: FunctionInfo) -> Set[str]:
            params = set(info.params)
            out: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, (ast.Return, ast.Yield)):
                    value = node.value
                    if value is not None:
                        out |= {
                            n.id
                            for n in ast.walk(value)
                            if isinstance(n, ast.Name)
                        } & params
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in config.res_release_methods
                    ):
                        out |= _arg_names(node) & params
                elif isinstance(node, ast.Assign):
                    stored = any(
                        not isinstance(t, ast.Name) for t in node.targets
                    )
                    if stored and isinstance(node.value, ast.Name):
                        out |= {node.value.id} & params
            return out

        for key, info in graph.functions.items():
            if not config.in_scope(info.relpath, config.res_scopes):
                continue
            discharge[key] = direct(info)
        # Hand-off into the pool/queue implementation discharges too.
        for key, info in graph.functions.items():
            if not config.in_scope(info.relpath, config.res_scopes):
                continue
            params = set(info.params)
            for site in graph.callees(key):
                callee = graph.functions[site.callee]
                if callee.class_key in impl_classes:
                    for expr, _param in map_call_args(site.call, callee):
                        if isinstance(expr, ast.Name):
                            discharge[key] |= {expr.id} & params
        changed = True
        while changed:
            changed = False
            for key, info in graph.functions.items():
                if not config.in_scope(info.relpath, config.res_scopes):
                    continue
                params = set(info.params)
                for site in graph.callees(key):
                    callee_discharge = discharge.get(site.callee, set())
                    if not callee_discharge:
                        continue
                    callee = graph.functions[site.callee]
                    for expr, param in map_call_args(site.call, callee):
                        if param in callee_discharge and isinstance(
                            expr, ast.Name
                        ):
                            hits = {expr.id} & params
                            if hits - discharge[key]:
                                discharge[key] |= hits
                                changed = True
        return discharge

    # -- per-statement classification --------------------------------------

    def acquire_vars(
        self, stmt: ast.stmt
    ) -> Tuple[Set[str], Optional[ast.Call]]:
        """Variables bound by an acquire in this statement's own nodes."""
        out: Set[str] = set()
        dropped: Optional[ast.Call] = None
        for node in walk_own(stmt):
            if isinstance(node, ast.Call) and _is_acquire(node):
                if (
                    isinstance(stmt, ast.Assign)
                    and stmt.value is node
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    out.add(stmt.targets[0].id)
                elif isinstance(stmt, ast.Expr) and stmt.value is node:
                    dropped = node
        return out, dropped

    def discharge_vars(self, stmt: ast.stmt, info: FunctionInfo) -> Set[str]:
        """Variables whose obligation this statement discharges."""
        out: Set[str] = set()
        impl_classes = self._impl_class_keys()
        types = self.types_of(info)
        for node in walk_own(stmt):
            if isinstance(node, (ast.Return, ast.Yield)):
                if node.value is not None:
                    out |= {
                        n.id
                        for n in ast.walk(node.value)
                        if isinstance(n, ast.Name)
                    }
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.config.res_release_methods
                ):
                    out |= _arg_names(node)
                    continue
                for callee_key in self.graph.resolve_call(
                    info.relpath, node, info, types
                ):
                    callee = self.graph.functions[callee_key]
                    callee_discharge = self._discharge.get(
                        callee_key, set()
                    )
                    impl = callee.class_key in impl_classes
                    for expr, param in map_call_args(node, callee):
                        if isinstance(expr, ast.Name) and (
                            impl or param in callee_discharge
                        ):
                            out.add(expr.id)
        # Escapes: stored into an attribute/subscript/container.
        if isinstance(stmt, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in stmt.targets):
                if isinstance(stmt.value, ast.Name):
                    out.add(stmt.value.id)
        return out

    def release_vars(self, stmt: ast.stmt, info: FunctionInfo) -> Set[str]:
        """Variables released/handed off here (for use-after-release).

        Unlike :meth:`discharge_vars` this excludes returns/stores -
        after those the local name is still a valid view.
        """
        out: Set[str] = set()
        impl_classes = self._impl_class_keys()
        types = self.types_of(info)
        for node in walk_own(stmt):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.config.res_release_methods
            ):
                out |= _arg_names(node)
                continue
            for callee_key in self.graph.resolve_call(
                info.relpath, node, info, types
            ):
                callee = self.graph.functions[callee_key]
                callee_discharge = self._discharge.get(callee_key, set())
                impl = callee.class_key in impl_classes
                for expr, param in map_call_args(node, callee):
                    if isinstance(expr, ast.Name) and (
                        impl or param in callee_discharge
                    ):
                        out.add(expr.id)
        return out


class ResourceLeakRule(Rule):
    """RES001: every pool acquire discharges on all CFG paths."""

    code = "RES001"
    name = "pooled-chunk-leak"
    description = (
        "an acquired pool chunk must be released, handed off, or "
        "escape on every path (exception edges included)"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        analysis = _Analysis(project, graph, config)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if not config.in_scope(info.relpath, config.res_scopes):
                continue
            if config.in_scope(info.relpath, config.res_impl_modules):
                continue
            findings.extend(self._check_function(project, analysis, info))
        return findings

    def _check_function(
        self, project: Project, analysis: _Analysis, info: FunctionInfo
    ) -> List[Finding]:
        sf = project.get(info.relpath)
        if sf is None:
            return []
        cfg = build_cfg(info.node)
        gen: Dict[int, Set[str]] = {}
        kill: Dict[int, Set[str]] = {}
        acquire_sites: Dict[str, ast.stmt] = {}
        findings: List[Finding] = []
        nested = {
            sub
            for node in ast.walk(info.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not info.node
            for sub in ast.walk(node)
        }
        for node_id, stmt in cfg.stmts.items():
            if stmt is None or stmt in nested:
                continue
            acquired, dropped = analysis.acquire_vars(stmt)
            if dropped is not None:
                findings.append(
                    self.finding(
                        sf,
                        dropped,
                        "acquired chunk discarded immediately; the slab "
                        "leaks the moment this statement completes",
                    )
                )
            if acquired:
                gen[node_id] = acquired
                for var in acquired:
                    acquire_sites.setdefault(var, stmt)
            discharged = analysis.discharge_vars(stmt, info)
            if discharged:
                kill[node_id] = discharged
            # Rebinding a tracked name ends the old obligation window
            # only via a fresh acquire (handled by gen); a plain rebind
            # of the same name keeps the obligation - the old chunk is
            # simply lost, which the exit-liveness check reports.
        if not gen:
            return findings
        live = dataflow_paths_reach(cfg, gen, kill)
        leaked = live[EXIT] | live[RAISE_EXIT]
        for var in sorted(leaked):
            stmt = acquire_sites.get(var)
            if stmt is None:
                continue
            where = (
                "an exception path"
                if var in live[RAISE_EXIT] and var not in live[EXIT]
                else "some path"
            )
            findings.append(
                self.finding(
                    sf,
                    stmt,
                    f"chunk {var!r} acquired in {info.qualname}() is "
                    f"never released on {where}; the ledger would only "
                    "catch this as a conservation failure at run time",
                )
            )
        return findings


class UseAfterReleaseRule(Rule):
    """RES002: no slab-view reads after the chunk was released."""

    code = "RES002"
    name = "use-after-release"
    description = (
        "chunk.samples aliases pooled slab memory; reading it after "
        "release observes another stream's data"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        analysis = _Analysis(project, graph, config)
        findings: List[Finding] = []
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if not config.in_scope(info.relpath, config.res_scopes):
                continue
            if config.in_scope(info.relpath, config.res_impl_modules):
                continue
            findings.extend(self._check_function(project, analysis, info))
        return findings

    def _check_function(
        self, project: Project, analysis: _Analysis, info: FunctionInfo
    ) -> List[Finding]:
        sf = project.get(info.relpath)
        if sf is None:
            return []
        cfg = build_cfg(info.node)
        gen: Dict[int, Set[str]] = {}
        kill: Dict[int, Set[str]] = {}
        for node_id, stmt in cfg.stmts.items():
            if stmt is None:
                continue
            released = analysis.release_vars(stmt, info)
            if released:
                gen[node_id] = released
            acquired, _ = analysis.acquire_vars(stmt)
            rebound: Set[str] = set(acquired)
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
            if rebound:
                kill[node_id] = rebound
        if not gen:
            return []
        live = dataflow_paths_reach(cfg, gen, kill)
        findings: List[Finding] = []
        view_attrs = set(analysis.config.res_view_attrs)
        for node_id, stmt in cfg.stmts.items():
            if stmt is None or not live.get(node_id):
                continue
            for node in walk_own(stmt):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in view_attrs
                    and isinstance(node.value, ast.Name)
                    and node.value.id in live[node_id]
                ):
                    findings.append(
                        self.finding(
                            sf,
                            node,
                            f"read of {node.value.id}.{node.attr} after "
                            f"{node.value.id} was released on some path; "
                            "the slab may already be recycled into "
                            "another stream's chunk",
                        )
                    )
        return findings
