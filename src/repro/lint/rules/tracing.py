"""TRACE001: span discipline.

Spans must be opened through the ``span()`` context manager (or a
module-local helper that forwards a parameter to it) with a name from
``repro.obs.trace.REGISTERED_SPANS``.  Two failure modes this catches:

* an ad-hoc or typo'd span name, which silently fragments the trace
  stream (dashboards and the regression tooling filter by name);
* hand-built span events (direct ``Tracer`` use outside ``repro/obs``),
  which skip the duration/lazy-attribute bookkeeping ``span()`` does.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..config import LintConfig
from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, enclosing_functions


def _first_span_arg(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _forwarding_helpers(tree: ast.AST, span_callable: str) -> Set[str]:
    """Local functions that forward one of their params as the span name."""
    helpers: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        params = {a.arg for a in node.args.posonlyargs + node.args.args}
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            if not (
                isinstance(call.func, ast.Name)
                and call.func.id == span_callable
            ):
                continue
            first = _first_span_arg(call)
            if isinstance(first, ast.Name) and first.id in params:
                helpers.add(node.name)
    return helpers


class SpanDisciplineRule(Rule):
    """TRACE001: spans via helpers only, with registered names."""

    code = "TRACE001"
    name = "span-discipline"
    description = (
        "span() calls must use registered names; Tracer internals stay "
        "inside repro/obs"
    )

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        if sf.relpath == config.trace_module:
            return []
        registry = project.module_constant(
            config.trace_module, config.span_registry_name
        )
        registered: Set[str] = set(registry) if registry else set()
        findings: List[Finding] = []
        helpers = _forwarding_helpers(sf.tree, "span")
        span_callables = {"span"} | helpers
        owner = enclosing_functions(sf.tree)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in span_callables:
                findings.extend(
                    self._check_span_call(
                        sf, node, registered, helpers, owner
                    )
                )
            elif (
                isinstance(func, ast.Name)
                and func.id == "Tracer"
                and not sf.relpath.startswith(config.trace_internal_prefix)
            ):
                findings.append(
                    self.finding(
                        sf,
                        node,
                        "direct Tracer construction outside repro/obs; "
                        "use tracing_scope()/collect_events() and the "
                        "span()/trace_event() helpers",
                    )
                )
        return findings

    def _check_span_call(
        self,
        sf: SourceFile,
        node: ast.Call,
        registered: Set[str],
        helpers: Set[str],
        owner,
    ) -> List[Finding]:
        first = _first_span_arg(node)
        if first is None:
            return []
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if registered and first.value not in registered:
                return [
                    self.finding(
                        sf,
                        node,
                        f"span name {first.value!r} is not in "
                        "REGISTERED_SPANS (repro/obs/trace.py); register "
                        "it or fix the typo",
                    )
                ]
            return []
        # Non-literal name: fine only inside a forwarding helper (its
        # call sites are checked instead).
        enclosing = owner.get(node)
        if (
            isinstance(enclosing, ast.FunctionDef)
            and enclosing.name in helpers
            and isinstance(first, ast.Name)
        ):
            return []
        return [
            self.finding(
                sf,
                node,
                "span name must be a string literal (or a parameter "
                "forwarded by a local helper) so TRACE001 can check it "
                "against the registry",
            )
        ]
