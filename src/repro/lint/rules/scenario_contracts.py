"""SCEN001/SCEN002: scenario component contracts, statically.

The scenario runtime enforces the write-once resource DAG and the
per-component RNG streams at run time (``ScenarioContext.publish``
raises on undeclared names; ``ctx.rng(self)`` derives a SHA-named
stream).  These rules mirror the same contracts over the AST so a
plugin that would fail at ``repro scenario`` time fails at lint time:

* **SCEN001** - a component publishing a resource name missing from
  its ``provides`` declaration, reading a name missing from its
  ``requires``/``provides``, or reading a name no registered component
  in the tree provides (an unsatisfiable dependency: the resolver can
  never schedule it).

* **SCEN002** - randomness outside the component's own derived stream:
  module-level ``np.random`` draws, argless ``default_rng()``, stdlib
  ``random`` draws, or ``ctx.rng(other)`` - drawing from *another*
  component's stream couples their sequences and breaks the
  order-invariance the conformance suite pins.

Only literal resource names are checked; computed names are skipped
(the runtime still guards them).  Seeded generators
(``default_rng(seed_expr)``) are the blessed pattern for sub-harness
hand-off and pass.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from ..graph import ClassInfo, ProjectGraph, project_graph
from ..project import Project
from .base import Rule, import_aliases, resolved_call_name

#: numpy.random callables that are seeded-stream plumbing, not draws.
_RNG_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64"}


def _component_classes(
    graph: ProjectGraph, config: LintConfig
) -> List[ClassInfo]:
    base_module, base_name = config.scenario_component_base
    out: List[ClassInfo] = []

    def derives(cinfo: ClassInfo, seen: Set[str]) -> bool:
        if cinfo.key in seen:
            return False
        seen.add(cinfo.key)
        for name in cinfo.base_names:
            tail = name.rsplit(".", 1)[-1]
            resolved = graph.resolve_class(cinfo.relpath, tail)
            if resolved is None:
                continue
            if (
                resolved.relpath == base_module
                and resolved.name == base_name
            ):
                return True
            if derives(resolved, seen):
                return True
        return False

    for cinfo in graph.classes.values():
        if derives(cinfo, set()):
            out.append(cinfo)
    return out


def _declared_tuple(
    graph: ProjectGraph, cinfo: ClassInfo, attr: str
) -> Optional[Tuple[str, ...]]:
    """Statically evaluated ``provides``/``requires`` declaration.

    Looks at the class body first, then ``self.<attr> = (...)`` in
    ``__init__``, then the base chain.  Returns None when the value is
    computed (the rule then skips that side of the check - the runtime
    guard still applies).
    """

    def from_body(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    try:
                        evaluated = ast.literal_eval(value)
                    except (ValueError, TypeError):
                        return None
                    if isinstance(evaluated, (tuple, list)):
                        return tuple(str(item) for item in evaluated)
                    return None
        return None

    def from_init(cinfo: ClassInfo) -> Optional[Tuple[str, ...]]:
        init_key = cinfo.methods.get("__init__")
        if init_key is None:
            return None
        for node in ast.walk(graph.functions[init_key].node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == attr
                ):
                    try:
                        evaluated = ast.literal_eval(node.value)
                    except (ValueError, TypeError):
                        return None
                    if isinstance(evaluated, (tuple, list)):
                        return tuple(str(item) for item in evaluated)
                    return None
        return None

    found = from_body(cinfo.node)
    if found is not None:
        return found
    found = from_init(cinfo)
    if found is not None:
        return found
    for base_name in cinfo.base_names:
        tail = base_name.rsplit(".", 1)[-1]
        base = graph.resolve_class(cinfo.relpath, tail)
        if base is not None:
            inherited = _declared_tuple(graph, base, attr)
            if inherited is not None:
                return inherited
    return None


def _ctx_params(fn_node: ast.AST, config: LintConfig) -> Set[str]:
    """Parameter names that carry the scenario context handle."""
    names: Set[str] = set()
    args = fn_node.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        if a.arg in config.scenario_context_params:
            names.add(a.arg)
            continue
        annotation = a.annotation
        if annotation is not None:
            text = ast.dump(annotation)
            if "ScenarioContext" in text:
                names.add(a.arg)
    return names


def _literal_resource(call: ast.Call, method: str) -> Optional[ast.Constant]:
    """The literal resource-name argument of a publish/get call."""
    index = 1 if method == "publish" else 0
    if len(call.args) > index:
        node = call.args[index]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node
        return None
    for kw in call.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value
    return None


class ScenarioResourceRule(Rule):
    """SCEN001: the resource DAG mirrored statically."""

    code = "SCEN001"
    name = "scenario-resource-contract"
    description = (
        "components publish only declared provides, read only declared "
        "requires, and every read is satisfiable by some component"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        components = _component_classes(graph, config)
        if not components:
            return []
        all_provided: Set[str] = set()
        declared: Dict[str, Tuple[Optional[Tuple[str, ...]], ...]] = {}
        for cinfo in components:
            provides = _declared_tuple(graph, cinfo, "provides")
            requires = _declared_tuple(graph, cinfo, "requires")
            declared[cinfo.key] = (provides, requires)
            if provides:
                all_provided |= set(provides)
        findings: List[Finding] = []
        for cinfo in components:
            provides, requires = declared[cinfo.key]
            sf = project.get(cinfo.relpath)
            if sf is None:
                continue
            for method_key in sorted(cinfo.methods.values()):
                info = graph.functions[method_key]
                ctx_names = _ctx_params(info.node, config)
                if not ctx_names:
                    continue
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in ctx_names
                    ):
                        continue
                    if func.attr == "publish":
                        literal = _literal_resource(node, "publish")
                        if literal is None or provides is None:
                            continue
                        if literal.value not in provides:
                            findings.append(
                                self.finding(
                                    sf,
                                    literal,
                                    f"component {cinfo.name} publishes "
                                    f"{literal.value!r} but declares "
                                    f"provides={tuple(provides)!r}; the "
                                    "resolver schedules from the "
                                    "declaration, so this publish would "
                                    "raise at run time",
                                )
                            )
                    elif func.attr == "get":
                        # `ctx.has()` probes optional resources and is
                        # deliberately exempt.
                        literal = _literal_resource(node, "get")
                        if literal is None:
                            continue
                        name = literal.value
                        own = set(provides or ()) | set(requires or ())
                        if requires is not None and name not in own:
                            findings.append(
                                self.finding(
                                    sf,
                                    literal,
                                    f"component {cinfo.name} reads "
                                    f"{name!r} without declaring it in "
                                    "requires; the resolver cannot "
                                    "order this dependency",
                                )
                            )
                        elif name not in all_provided:
                            findings.append(
                                self.finding(
                                    sf,
                                    literal,
                                    f"no registered component provides "
                                    f"{name!r}; this read can never be "
                                    "satisfied in any scenario wiring",
                                )
                            )
        return findings


class ScenarioRandomnessRule(Rule):
    """SCEN002: components draw only from their own derived stream."""

    code = "SCEN002"
    name = "scenario-rng-stream"
    description = (
        "inside a component, randomness comes from ctx.rng(self) or a "
        "seeded generator - never np.random, stdlib random, or another "
        "component's stream"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        graph = project_graph(project)
        components = _component_classes(graph, config)
        findings: List[Finding] = []
        for cinfo in components:
            sf = project.get(cinfo.relpath)
            if sf is None:
                continue
            aliases = import_aliases(sf.tree)
            for method_key in sorted(cinfo.methods.values()):
                info = graph.functions[method_key]
                ctx_names = _ctx_params(info.node, config)
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    finding = self._check_call(
                        sf, cinfo, node, aliases, ctx_names
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _check_call(
        self,
        sf,
        cinfo: ClassInfo,
        node: ast.Call,
        aliases: Dict[str, str],
        ctx_names: Set[str],
    ) -> Optional[Finding]:
        func = node.func
        # ctx.rng(X) with X other than self: foreign stream.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "rng"
            and isinstance(func.value, ast.Name)
            and func.value.id in ctx_names
        ):
            arg = node.args[0] if node.args else None
            if not (isinstance(arg, ast.Name) and arg.id == "self"):
                return self.finding(
                    sf,
                    node,
                    f"component {cinfo.name} draws from a stream it "
                    "does not own (ctx.rng(self) is the component's "
                    "stream); foreign draws couple the two components' "
                    "sequences",
                )
            return None
        resolved = resolved_call_name(node, aliases)
        if resolved is None:
            return None
        if resolved.startswith("np.random."):
            # The conventional alias, even when numpy is not imported
            # in this module (fixtures, TYPE_CHECKING-gated imports).
            resolved = "numpy" + resolved[len("np") :]
        if resolved.startswith("numpy.random."):
            tail = resolved.rsplit(".", 1)[-1]
            if tail == "default_rng" and not (node.args or node.keywords):
                return self.finding(
                    sf,
                    node,
                    f"component {cinfo.name} creates an unseeded "
                    "default_rng(); derive one from "
                    "ctx.rng(self)/ctx.derive_seed() instead",
                )
            if tail not in _RNG_FACTORIES:
                return self.finding(
                    sf,
                    node,
                    f"component {cinfo.name} draws from the global "
                    f"numpy.random.{tail}; use its own ctx.rng(self) "
                    "stream so no component can perturb another",
                )
        elif resolved.startswith("random."):
            return self.finding(
                sf,
                node,
                f"component {cinfo.name} draws from stdlib "
                f"{resolved}; use its own ctx.rng(self) stream",
            )
        return None
