"""FLOAT001: exact equality on float expressions in DSP/VRM code.

The DSP and VRM layers are where resampling, filtering and switching
arithmetic accumulate rounding error; ``==``/``!=`` against a float
expression there is either a latent flake (tolerances belong in
``np.isclose``/``math.isclose``) or an exact sentinel check that
deserves an explicit ``# lint: disable=FLOAT001`` stating so.
"""

from __future__ import annotations

import ast
from typing import List

from ..config import LintConfig
from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, dotted_name

_FLOAT_CONSTANTS = {
    "math.pi",
    "math.e",
    "math.inf",
    "math.nan",
    "math.tau",
    "np.pi",
    "np.e",
    "np.inf",
    "np.nan",
    "numpy.pi",
    "numpy.e",
    "numpy.inf",
    "numpy.nan",
}

_FLOAT_CALLS = {"float", "np.float64", "np.float32", "numpy.float64"}


def _is_floatish(node: ast.AST) -> bool:
    """Conservatively: does this expression obviously produce a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted in _FLOAT_CALLS
    dotted = dotted_name(node)
    return dotted in _FLOAT_CONSTANTS


class FloatEqualityRule(Rule):
    """FLOAT001: ``==``/``!=`` where one side is float-valued."""

    code = "FLOAT001"
    name = "float-equality"
    description = (
        "exact ==/!= on float expressions in dsp/ and vrm/ code is a "
        "rounding-error flake waiting to happen"
    )

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        if not any(
            sf.relpath.startswith(scope) for scope in config.float_eq_scopes
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left) or _is_floatish(right):
                    findings.append(
                        self.finding(
                            sf,
                            node,
                            "exact float equality; use np.isclose / "
                            "math.isclose with an explicit tolerance, or "
                            "suppress with a comment naming the exact-"
                            "sentinel intent",
                        )
                    )
        return findings
