"""DET001/DET002: seed provenance and wall-clock containment.

Every stochastic draw in the chain must flow from a trial-seeded
``numpy.random.Generator`` - that is what makes the content-addressed
cache sound (the RNG state is part of every stage key) and every trial
re-runnable bit-for-bit.  A single draw from numpy's module-level
global generator, an argless ``default_rng()`` (OS-entropy seeded), or
a stdlib ``random`` call silently breaks both.

Wall-clock reads are the same hazard one level up: a timestamp that
reaches a fingerprinted payload makes the "same" run hash differently
every time, which the regression gate then reads as physics drift.
Monotonic clocks (``perf_counter``/``monotonic``) are fine - they time
stages, they never name content.
"""

from __future__ import annotations

import ast
from typing import List

from ..config import LintConfig
from ..findings import Finding
from ..project import Project, SourceFile
from .base import Rule, import_aliases, resolved_call_name

#: numpy.random attributes that are legitimate, explicitly-seeded
#: constructors rather than draws from the hidden global generator.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock call targets (resolved, alias-expanded dotted names).
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Method suffixes that indicate a wall-clock read on an imported class
#: (``from datetime import datetime; datetime.now()``).
_WALLCLOCK_SUFFIXES = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}


class UnseededRandomRule(Rule):
    """DET001: draws that bypass trial-seeded Generators."""

    code = "DET001"
    name = "unseeded-rng"
    description = (
        "numpy.random module-level draws, argless default_rng(), and "
        "stdlib random calls break per-trial seed provenance"
    )

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        aliases = import_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolved_call_name(node, aliases)
            if resolved is None:
                continue
            findings.extend(self._check_call(sf, node, resolved))
        return findings

    def _check_call(
        self, sf: SourceFile, node: ast.Call, resolved: str
    ) -> List[Finding]:
        parts = resolved.split(".")
        if resolved.endswith("default_rng") and not node.args:
            return [
                self.finding(
                    sf,
                    node,
                    "argless default_rng() seeds from OS entropy; pass "
                    "a trial-derived seed or Generator",
                )
            ]
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_OK
        ):
            return [
                self.finding(
                    sf,
                    node,
                    f"numpy.random.{parts[2]}() draws from the global "
                    "generator; use a trial-seeded Generator",
                )
            ]
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and node.args:
                return []  # seeded stdlib Random is deterministic
            return [
                self.finding(
                    sf,
                    node,
                    f"stdlib random.{parts[1]}() has no seed provenance; "
                    "use a trial-seeded numpy Generator",
                )
            ]
        return []


class WallClockRule(Rule):
    """DET002: wall-clock reads outside the explicit allowlist."""

    code = "DET002"
    name = "wall-clock"
    description = (
        "time.time()/datetime.now() outside the allowlist can leak "
        "timestamps into fingerprinted payloads"
    )

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        if sf.relpath in config.wallclock_allowlist:
            return []
        findings: List[Finding] = []
        aliases = import_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolved_call_name(node, aliases)
            if resolved is None:
                continue
            hit = resolved in _WALLCLOCK or any(
                resolved.endswith(suffix) for suffix in _WALLCLOCK_SUFFIXES
            )
            if hit:
                findings.append(
                    self.finding(
                        sf,
                        node,
                        f"wall-clock read {resolved}() outside the "
                        "allowlist; use perf_counter() for timing or "
                        "move the stamp into an allowlisted module",
                    )
                )
        return findings
