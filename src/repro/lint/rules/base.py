"""Rule protocol and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..config import LintConfig
from ..findings import Finding
from ..project import Project, SourceFile


class Rule:
    """One named contract check.

    ``check_file`` runs once per module; ``check_project`` runs once per
    lint invocation with the whole tree available (used by the
    cross-module rules).  Either may be a no-op.
    """

    code: str = "LINT000"
    name: str = "unnamed"
    description: str = ""

    def check_file(
        self, sf: SourceFile, project: Project, config: LintConfig
    ) -> List[Finding]:
        return []

    def check_project(
        self, project: Project, config: LintConfig
    ) -> List[Finding]:
        return []

    # -- helpers for subclasses -------------------------------------------

    def finding(
        self,
        sf_or_path,
        node_or_line,
        message: str,
        col: Optional[int] = None,
        **meta,
    ) -> Finding:
        """Build a Finding from a SourceFile + AST node (or explicit line)."""
        end_line = end_col = 0
        if isinstance(sf_or_path, SourceFile):
            path = sf_or_path.relpath
            if isinstance(node_or_line, int):
                line, column = node_or_line, col or 0
            else:
                line = getattr(node_or_line, "lineno", 1)
                column = getattr(node_or_line, "col_offset", 0)
                end_line = getattr(node_or_line, "end_lineno", 0) or 0
                end_col = getattr(node_or_line, "end_col_offset", 0) or 0
            text = sf_or_path.line_text(line)
        else:
            path = str(sf_or_path)
            line, column, text = int(node_or_line), col or 0, ""
        return Finding(
            rule=self.code,
            path=path,
            line=line,
            col=column,
            message=message,
            line_text=text,
            end_line=end_line,
            end_col=end_col,
            meta=meta,
        )


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted module they bind.

    ``import numpy as np`` -> {"np": "numpy"};
    ``from numpy import random`` -> {"random": "numpy.random"};
    ``from numpy.random import default_rng`` ->
    {"default_rng": "numpy.random.default_rng"}.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            for alias in node.names:
                if alias.name == "*" or node.module is None:
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolved_call_name(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """Fully-resolved dotted name of a call target, alias-expanded."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expansion = aliases.get(head, head)
    return f"{expansion}.{rest}" if rest else expansion


def expression_tokens(node: ast.AST) -> List[str]:
    """Identifier-ish tokens of an expression (names, attrs, str parts)."""
    tokens: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            tokens.append(sub.value)
    return tokens


def enclosing_functions(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function def (or None)."""
    owner: Dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
        owner[node] = current
        nested = current
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = node
        for child in ast.iter_child_nodes(node):
            visit(child, nested)

    visit(tree, None)
    return owner
