"""Finding model shared by every lint rule.

A :class:`Finding` pins one contract violation to a source location and
carries a *content fingerprint*: a short digest of (rule, file, stripped
line text).  Baselines store fingerprints rather than line numbers, so
unrelated edits above a baselined finding do not churn the baseline
file, while any edit to the offending line itself re-surfaces it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict


def finding_fingerprint(rule: str, path: str, line_text: str) -> str:
    """Content-addressed identity of one finding (see module docstring)."""
    payload = f"{rule}|{path}|{line_text.strip()}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-root-relative, forward slashes
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    line_text: str = ""
    severity: str = "error"
    #: End of the offending span (end_line 1-based inclusive, end_col
    #: 0-based exclusive, as reported by ast); 0 = unknown.
    end_line: int = 0
    end_col: int = 0
    suppressed: bool = False  # a `# lint: disable=` comment covers it
    baselined: bool = False  # the committed baseline covers it
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return finding_fingerprint(self.rule, self.path, self.line_text)

    @property
    def active(self) -> bool:
        """True when this finding should fail the gate."""
        return not (self.suppressed or self.baselined)

    def as_dict(self) -> Dict[str, Any]:
        """JSONL record for ``--format jsonl`` / ``--report``.

        Record schema (documented in DESIGN §17): ``rule``, ``path``,
        ``line``/``col`` (span start), ``end_line``/``end_col`` (span
        end, present when known), ``severity``, ``message``,
        ``fingerprint`` (content-addressed baseline identity),
        ``suppressed``, ``baselined``, and optional ``meta`` - for
        cross-module findings ``meta.chain`` lists the resolved call
        chain as ``module:qualname`` steps.
        """
        record: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.end_line:
            record["end_line"] = self.end_line
            record["end_col"] = self.end_col
        if self.meta:
            record["meta"] = self.meta
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from its JSONL record (incremental cache).

        ``line_text`` is carried in the record only via the cache (it
        is what the fingerprint hashes), so the cache stores it
        explicitly alongside; see ``repro.lint.cache``.
        """
        return cls(
            rule=record["rule"],
            path=record["path"],
            line=record["line"],
            col=record["col"],
            message=record["message"],
            line_text=record.get("line_text", ""),
            severity=record.get("severity", "error"),
            end_line=record.get("end_line", 0),
            end_col=record.get("end_col", 0),
            meta=dict(record.get("meta", {})),
        )

    def as_jsonl(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def render(self) -> str:
        """One-line human rendering (``path:line:col: RULE message``)."""
        tags = []
        if self.suppressed:
            tags.append("suppressed")
        if self.baselined:
            tags.append("baselined")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}{suffix}"
        )

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)
