"""``repro lint`` subcommand implementation.

Exit codes: 0 clean (all findings suppressed/baselined), 1 active
findings or parse errors, 0 after ``--write-baseline`` /
``--update-schema`` (they are maintenance actions, not gates).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional

from dataclasses import replace

from .baseline import write_baseline
from .cache import LintCache
from .config import LintConfig, load_config
from .engine import rule_catalog, run_lint, write_schema_manifest


def default_root() -> Path:
    """Directory containing the ``repro`` package (``src/`` here)."""
    return Path(__file__).resolve().parent.parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="restrict per-file rules to these root-relative prefixes "
        "(e.g. repro/dsp); project rules always see the whole tree",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory containing the repro package "
        "(default: auto-detected from the installed package)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODE",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "jsonl"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write every finding as JSONL to FILE",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file (default: repro/lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report everything as active)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current active findings into the baseline",
    )
    parser.add_argument(
        "--update-schema",
        action="store_true",
        help="regenerate the CACHE001 chain-schema manifest after an "
        "intentional, CHAIN_SCHEMA-bumped dataclass change",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--package",
        default=None,
        metavar="NAME",
        help="package directory under the root to walk "
        "(default: from config; 'repro' in this repository)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the incremental cache: warm runs with an "
        "unchanged tree skip parsing and rules entirely",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force-disable the incremental cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: <root>/.lint-cache; implies --cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel-parse worker budget for cold files "
        "(the executor may still choose serial)",
    )


def _emit(text: str) -> None:
    """Print, tolerating a consumer that closed the pipe (`| head`)."""
    try:
        print(text)
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def cmd_lint(args, config: Optional[LintConfig] = None) -> int:
    if args.list_rules:
        _emit(rule_catalog())
        return 0
    root = Path(args.root) if args.root else default_root()
    if config is None:
        # Defaults overlaid with [tool.repro.lint] from pyproject.toml
        # (at the root or one directory above it).
        config = load_config(root)
    if args.package:
        config = replace(config, package=args.package)
    if args.update_schema:
        path = write_schema_manifest(root, config)
        print(f"chain-schema manifest written to {path}")
        return 0
    baseline_path = args.baseline
    if args.no_baseline:
        baseline_path = False
    cache = None
    if (args.cache or args.cache_dir) and not args.no_cache:
        cache_dir = (
            Path(args.cache_dir) if args.cache_dir else root / ".lint-cache"
        )
        cache = LintCache(cache_dir)
    report = run_lint(
        root,
        config,
        select=args.select,
        paths=args.paths or None,
        baseline_path=baseline_path,
        cache=cache,
        jobs=args.jobs,
    )
    if args.write_baseline:
        path = (
            Path(args.baseline)
            if args.baseline
            else root / config.baseline_path
        )
        write_baseline(path, report.active)
        print(f"baseline written to {path} ({len(report.active)} entries)")
        return 0
    if args.report:
        report.write_report(args.report)
    output = (
        report.render_jsonl() if args.format == "jsonl" else report.render_text()
    )
    if output:
        _emit(output)
    return 0 if report.ok else 1
