"""Project symbol table and call graph (AST-only, never imports).

This is the cross-module core the flow-aware rules share.  It indexes
every function and class in the walked tree, resolves call targets
through four progressively weaker mechanisms, and offers the two
whole-program fixpoints the rules need (sink reach for CACHE001,
reachability with recorded call chains for ASYNC001).

Resolution levels, strongest first:

1. *Bare names* - ``helper()`` via module-level defs, nested defs in
   enclosing scopes, and ``from X import helper``.
2. *Methods on self* - ``self.m()`` through the enclosing class and its
   statically resolvable base classes.
3. *Module attributes* - ``pool.make()`` where ``pool`` is a project
   module bound by ``import``/``from .. import pool``.
4. *Annotation-assisted attributes* - ``self.pool.release()`` where
   ``__init__`` stored an annotated parameter (``pool: ChunkPool``),
   assigned a constructor result, or the class/dataclass body annotates
   the attribute.

Anything unresolved is silently dropped: the call graph is a
*may-call under-approximation*, which is the right polarity for the
reachability rules (no false ASYNC findings from phantom edges) and is
compensated in CACHE001 by the key-carrier convention (see
:meth:`ProjectGraph.sink_reach`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .project import Project, SourceFile, module_relpath


def fn_key(relpath: str, qualname: str) -> str:
    return f"{relpath}::{qualname}"


@dataclass
class FunctionInfo:
    """One function or method definition in the walked tree."""

    key: str
    relpath: str
    qualname: str  # e.g. "ChunkPool._acquire" or "render"
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_key: Optional[str] = None  # "relpath::ClassName" for methods
    parent_key: Optional[str] = None  # enclosing function, for nested defs
    is_async: bool = False

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class CallSite:
    """One resolved call edge."""

    caller: str  # FunctionInfo key ("" for module-level code)
    callee: str  # FunctionInfo key
    call: ast.Call
    relpath: str  # module containing the call expression


@dataclass
class ClassInfo:
    """One class definition: methods, bases, attribute types."""

    key: str
    relpath: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn key
    base_names: List[str] = field(default_factory=list)
    #: attr name -> class key, from annotations / ctor assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """The single class identifier an annotation names, if any.

    ``ChunkPool`` and ``"ChunkPool"`` resolve; ``Optional[ChunkPool]``
    resolves through the subscript; unions/containers of several
    classes do not (ambiguous).
    """
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.isidentifier():
            return text
        try:
            node = ast.parse(text, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name in {"Optional", "Final", "Annotated", "ClassVar"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_class_name(inner)
    return None


class ProjectGraph:
    """Symbol table + call graph over one parsed :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module relpath -> {name -> fn key} (module-level defs)
        self._module_functions: Dict[str, Dict[str, str]] = {}
        #: module relpath -> {name -> class key} (module-level classes)
        self._module_classes: Dict[str, Dict[str, str]] = {}
        #: module relpath -> {bound name -> (target relpath, source name)}
        self._imported: Dict[str, Dict[str, Tuple[str, str]]] = {}
        #: module relpath -> {bound name -> module relpath} (module aliases)
        self._module_aliases: Dict[str, Dict[str, str]] = {}
        #: fn key -> {name -> fn key} for immediately nested defs
        self._nested: Dict[str, Dict[str, str]] = {}
        self._edges: List[CallSite] = []
        self._out: Dict[str, List[CallSite]] = {}
        self._in: Dict[str, List[CallSite]] = {}

        for relpath, sf in sorted(project.files.items()):
            self._index_module(relpath, sf)
        self._resolve_bases()
        for relpath in sorted(project.files):
            self._infer_attr_types(relpath)
        for relpath in sorted(project.files):
            self._build_edges(relpath)

    # -- indexing ----------------------------------------------------------

    def _index_module(self, relpath: str, sf: SourceFile) -> None:
        self._module_functions[relpath] = {}
        self._module_classes[relpath] = {}
        self._imported[relpath] = dict(self.project.imported_names(sf))
        self._module_aliases[relpath] = self._collect_module_aliases(
            relpath, sf
        )
        self._index_body(relpath, sf.tree.body, qual="", class_info=None,
                         parent_fn=None)

    def _collect_module_aliases(
        self, relpath: str, sf: SourceFile
    ) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        files = self.project.files
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name.replace(".", "/") + ".py"
                    if target in files:
                        aliases[alias.asname or alias.name] = target
            elif isinstance(node, ast.ImportFrom):
                # ``from pkg import mod`` / ``from . import mod`` where
                # mod is a project module (not a symbol).
                pkg = module_relpath(relpath, node.module, node.level)
                if pkg is None:
                    continue
                pkg_dir = pkg[: -len(".py")]
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    for candidate in (
                        f"{pkg_dir}/{alias.name}.py",
                        f"{pkg_dir}/{alias.name}/__init__.py",
                    ):
                        if candidate in files:
                            aliases[alias.asname or alias.name] = candidate
                            break
        return aliases

    def _index_body(
        self,
        relpath: str,
        body: Sequence[ast.stmt],
        qual: str,
        class_info: Optional[ClassInfo],
        parent_fn: Optional[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{qual}{stmt.name}"
                key = fn_key(relpath, qualname)
                info = FunctionInfo(
                    key=key,
                    relpath=relpath,
                    qualname=qualname,
                    name=stmt.name,
                    node=stmt,
                    class_key=class_info.key if class_info else None,
                    parent_key=parent_fn,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self.functions[key] = info
                if class_info is not None:
                    class_info.methods[stmt.name] = key
                elif parent_fn is not None:
                    self._nested.setdefault(parent_fn, {})[stmt.name] = key
                else:
                    self._module_functions[relpath][stmt.name] = key
                self._index_body(
                    relpath, stmt.body, qual=f"{qualname}.",
                    class_info=None, parent_fn=key,
                )
            elif isinstance(stmt, ast.ClassDef):
                ckey = fn_key(relpath, f"{qual}{stmt.name}")
                cinfo = ClassInfo(
                    key=ckey, relpath=relpath, name=stmt.name, node=stmt
                )
                for base in stmt.bases:
                    name = _dotted(base)
                    if name is not None:
                        cinfo.base_names.append(name)
                self.classes[ckey] = cinfo
                if not qual and parent_fn is None:
                    self._module_classes[relpath][stmt.name] = ckey
                self._index_body(
                    relpath, stmt.body, qual=f"{qual}{stmt.name}.",
                    class_info=cinfo, parent_fn=parent_fn,
                )
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Defs under conditional imports / try blocks still count.
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        self._index_body(
                            relpath, [sub], qual, class_info, parent_fn
                        )

    # -- symbol resolution -------------------------------------------------

    def resolve_class(
        self, relpath: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[ClassInfo]:
        """Class ``name`` as visible from ``relpath`` (follows imports)."""
        local = self._module_classes.get(relpath, {})
        if name in local:
            return self.classes[local[name]]
        seen = _seen or set()
        marker = f"{relpath}:{name}"
        if marker in seen:
            return None
        seen.add(marker)
        imported = self._imported.get(relpath, {})
        if name in imported:
            target, source = imported[name]
            return self.resolve_class(target, source, seen)
        return None

    def resolve_function(
        self, relpath: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Module-level function ``name`` visible from ``relpath``."""
        local = self._module_functions.get(relpath, {})
        if name in local:
            return local[name]
        seen = _seen or set()
        marker = f"{relpath}:{name}"
        if marker in seen:
            return None
        seen.add(marker)
        imported = self._imported.get(relpath, {})
        if name in imported:
            target, source = imported[name]
            return self.resolve_function(target, source, seen)
        return None

    def resolve_method(
        self, cinfo: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Method lookup through the statically resolvable base chain."""
        if name in cinfo.methods:
            return cinfo.methods[name]
        seen = _seen or set()
        if cinfo.key in seen:
            return None
        seen.add(cinfo.key)
        for base_name in cinfo.base_names:
            tail = base_name.rsplit(".", 1)[-1]
            base = self.resolve_class(cinfo.relpath, tail)
            if base is not None:
                found = self.resolve_method(base, name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_bases(self) -> None:
        # Nothing to precompute: resolve_method follows base_names lazily.
        # Kept as an explicit phase marker for attr-type inference below,
        # which must run after every class is indexed.
        return None

    # -- attribute types ---------------------------------------------------

    def _infer_attr_types(self, relpath: str) -> None:
        for cinfo in self.classes.values():
            if cinfo.relpath != relpath:
                continue
            # Class-body annotations (dataclass fields and plain).
            for stmt in cinfo.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    cname = _annotation_class_name(stmt.annotation)
                    if cname:
                        target = self.resolve_class(relpath, cname)
                        if target is not None:
                            cinfo.attr_types[stmt.target.id] = target.key
            # ``self.X = ...`` inside methods.
            for method_key in cinfo.methods.values():
                fn = self.functions[method_key]
                ann: Dict[str, Optional[str]] = {}
                args = fn.node.args
                for a in args.posonlyargs + args.args + args.kwonlyargs:
                    ann[a.arg] = _annotation_class_name(a.annotation)
                for node in ast.walk(fn.node):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    annotation: Optional[ast.AST] = None
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign):
                        targets = [node.target]
                        value, annotation = node.value, node.annotation
                    else:
                        continue
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        cname: Optional[str] = None
                        if annotation is not None:
                            cname = _annotation_class_name(annotation)
                        if cname is None and isinstance(value, ast.Name):
                            cname = ann.get(value.id)
                        if cname is None and isinstance(value, ast.Call):
                            callee = _dotted(value.func)
                            if callee is not None:
                                cname = callee.rsplit(".", 1)[-1]
                        if cname is None:
                            continue
                        resolved = self.resolve_class(relpath, cname)
                        if resolved is not None:
                            cinfo.attr_types.setdefault(
                                target.attr, resolved.key
                            )

    # -- call-edge construction --------------------------------------------

    def _local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """name -> class key, from annotations and constructor assigns."""
        types: Dict[str, str] = {}
        relpath = fn.relpath
        if fn.class_key is not None:
            types["self"] = fn.class_key
        args = fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            cname = _annotation_class_name(a.annotation)
            if cname:
                cinfo = self.resolve_class(relpath, cname)
                if cinfo is not None:
                    types[a.arg] = cinfo.key
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cname = _annotation_class_name(node.annotation)
                if cname:
                    cinfo = self.resolve_class(relpath, cname)
                    if cinfo is not None:
                        types[node.target.id] = cinfo.key
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                callee = _dotted(node.value.func)
                if callee is None:
                    continue
                cinfo = self.resolve_class(relpath, callee.rsplit(".", 1)[-1])
                if cinfo is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = cinfo.key
        return types

    def _expr_type(
        self, expr: ast.AST, types: Dict[str, str]
    ) -> Optional[str]:
        """Class key of an expression, via vars and one attribute hop."""
        if isinstance(expr, ast.Name):
            return types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value, types)
            if base is not None and base in self.classes:
                return self.classes[base].attr_types.get(expr.attr)
        return None

    def resolve_call(
        self,
        relpath: str,
        call: ast.Call,
        scope: Optional[FunctionInfo] = None,
        types: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        """FunctionInfo keys a call expression may target (0 or 1 today)."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            # Nested defs in enclosing function scopes win first.
            walk = scope
            while walk is not None:
                nested = self._nested.get(walk.key, {})
                if name in nested:
                    return [nested[name]]
                walk = (
                    self.functions.get(walk.parent_key)
                    if walk.parent_key
                    else None
                )
            found = self.resolve_function(relpath, name)
            if found is not None:
                return [found]
            cinfo = self.resolve_class(relpath, name)
            if cinfo is not None:
                init = self.resolve_method(cinfo, "__init__")
                return [init] if init is not None else []
            return []
        if isinstance(func, ast.Attribute):
            # Level 3: module-attribute call via import alias.
            base_dotted = _dotted(func.value)
            if base_dotted is not None:
                aliases = self._module_aliases.get(relpath, {})
                target_mod = aliases.get(base_dotted)
                if target_mod is not None:
                    found = self._module_functions.get(target_mod, {}).get(
                        func.attr
                    )
                    if found is not None:
                        return [found]
                    ckey = self._module_classes.get(target_mod, {}).get(
                        func.attr
                    )
                    if ckey is not None:
                        init = self.resolve_method(
                            self.classes[ckey], "__init__"
                        )
                        return [init] if init is not None else []
            # Levels 2/4: typed receiver.
            if types is not None:
                receiver = self._expr_type(func.value, types)
                if receiver is not None and receiver in self.classes:
                    found = self.resolve_method(
                        self.classes[receiver], func.attr
                    )
                    if found is not None:
                        return [found]
        return []

    def _build_edges(self, relpath: str) -> None:
        sf = self.project.files[relpath]
        # Calls at module level (caller "") plus per-function bodies.
        owner: Dict[int, Optional[FunctionInfo]] = {}

        def assign_owner(
            node: ast.AST, current: Optional[FunctionInfo]
        ) -> None:
            owner[id(node)] = current
            nxt = current
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for info in self.functions.values():
                    if info.node is node:
                        nxt = info
                        break
            for child in ast.iter_child_nodes(node):
                assign_owner(child, nxt)

        assign_owner(sf.tree, None)
        type_cache: Dict[str, Dict[str, str]] = {}
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            scope = owner.get(id(node))
            if scope is not None:
                if scope.key not in type_cache:
                    type_cache[scope.key] = self._local_types(scope)
                types = type_cache[scope.key]
            else:
                types = {}
            for callee in self.resolve_call(relpath, node, scope, types):
                site = CallSite(
                    caller=scope.key if scope else "",
                    callee=callee,
                    call=node,
                    relpath=relpath,
                )
                self._edges.append(site)
                self._out.setdefault(site.caller, []).append(site)
                self._in.setdefault(site.callee, []).append(site)

    # -- queries -----------------------------------------------------------

    def callees(self, key: str) -> List[CallSite]:
        return self._out.get(key, [])

    def callers(self, key: str) -> List[CallSite]:
        return self._in.get(key, [])

    def functions_in(self, relpath: str) -> List[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if info.relpath == relpath
        ]

    def local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Public wrapper for per-function type environments."""
        return self._local_types(fn)

    def reachable(
        self, start_keys: Iterable[str]
    ) -> Dict[str, List[str]]:
        """BFS closure of call edges: fn key -> chain from a start key.

        The chain is the list of function keys walked (start first,
        target last); start keys map to a single-element chain.
        """
        chains: Dict[str, List[str]] = {}
        queue: List[str] = []
        for key in start_keys:
            if key in self.functions and key not in chains:
                chains[key] = [key]
                queue.append(key)
        while queue:
            current = queue.pop(0)
            for site in self.callees(current):
                if site.callee in chains:
                    continue
                chains[site.callee] = chains[current] + [site.callee]
                queue.append(site.callee)
        return chains

    def qualchain(self, chain: Sequence[str]) -> List[str]:
        """Render a key chain as ``module:qualname`` steps for reports."""
        out: List[str] = []
        for key in chain:
            info = self.functions.get(key)
            if info is None:
                out.append(key)
            else:
                out.append(f"{info.relpath}:{info.qualname}")
        return out

    # -- whole-program fixpoints -------------------------------------------

    def stage_runner_keys(self, stage_name: str = "stage") -> Set[str]:
        """Functions that (transitively, cross-module) execute a stage.

        A function is a runner when its body contains a bare
        ``stage(...)`` call (including inside nested defs - the nested
        closure runs on the caller's behalf) or calls another runner
        through any resolved edge.
        """
        runners: Set[str] = set()
        for key, info in self.functions.items():
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == stage_name
                ):
                    runners.add(key)
                    break
        changed = True
        while changed:
            changed = False
            for key in list(self.functions):
                if key in runners:
                    continue
                for site in self.callees(key):
                    if site.callee in runners:
                        runners.add(key)
                        changed = True
                        break
        return runners

    def sink_reach(
        self,
        sink_name: str = "fingerprint",
        key_carrier_attrs: Sequence[str] = (),
    ) -> Dict[str, Set[str]]:
        """Per function: local names that (transitively) reach the sink.

        A name reaches when it

        * appears inside an argument of a ``sink_name(...)`` call,
        * is the base of an attribute access naming a *key carrier*
          (``req.keys`` - an attribute that holds an already-computed
          cache key, so reaching it is reaching the key), or
        * flows into a resolved callee parameter that itself reaches,

        with backward closure through local assignments, ``for``
        targets, ``with`` bindings, and comprehension targets.  Filter
        against :attr:`FunctionInfo.params` for parameter coverage.
        """
        carriers = set(key_carrier_attrs)
        reach: Dict[str, Set[str]] = {key: set() for key in self.functions}

        def direct_seed(info: FunctionInfo) -> Set[str]:
            seeds: Set[str] = set()
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == sink_name
                ):
                    for arg in node.args:
                        seeds |= _names_in(arg)
                    for kw in node.keywords:
                        seeds |= _names_in(kw.value)
                elif (
                    isinstance(node, ast.Attribute)
                    and node.attr in carriers
                ):
                    seeds |= _names_in(node.value)
            return seeds

        def close_locally(info: FunctionInfo, live: Set[str]) -> Set[str]:
            """Backward closure through local data flow, to fixpoint."""
            changed = True
            while changed:
                changed = False
                for node in ast.walk(info.node):
                    sources: Optional[ast.AST] = None
                    bound: Set[str] = set()
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            bound |= _names_in(target)
                        sources = node.value
                    elif (
                        isinstance(node, ast.AnnAssign)
                        and node.value is not None
                    ):
                        bound = _names_in(node.target)
                        sources = node.value
                    elif isinstance(node, ast.AugAssign):
                        bound = _names_in(node.target)
                        sources = node.value
                    elif isinstance(node, (ast.For, ast.AsyncFor)):
                        bound = _names_in(node.target)
                        sources = node.iter
                    elif isinstance(node, ast.comprehension):
                        bound = _names_in(node.target)
                        sources = node.iter
                    elif isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            if item.optional_vars is not None:
                                if _names_in(item.optional_vars) & live:
                                    extra = _names_in(item.context_expr)
                                    if extra - live:
                                        live |= extra
                                        changed = True
                        continue
                    else:
                        continue
                    if sources is not None and bound & live:
                        extra = _names_in(sources)
                        if extra - live:
                            live |= extra
                            changed = True
            return live

        # Seed + close each function once, then iterate the cross-call
        # propagation to a global fixpoint.
        for key, info in self.functions.items():
            reach[key] = close_locally(info, direct_seed(info))
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                before = len(reach[key])
                live = reach[key]
                for site in self.callees(key):
                    callee = self.functions[site.callee]
                    callee_reach = reach[site.callee] & set(callee.params)
                    if not callee_reach:
                        continue
                    for expr, param in map_call_args(site.call, callee):
                        if param in callee_reach:
                            live |= _names_in(expr)
                if len(live) != before:
                    reach[key] = close_locally(info, live)
                    changed = True
        return reach


def map_call_args(
    call: ast.Call, callee: FunctionInfo
) -> List[Tuple[ast.AST, str]]:
    """Pair argument expressions with the callee parameters they bind.

    Skips the implicit ``self``/``cls`` slot for method and constructor
    calls (any call whose callee is a method and whose syntax is not a
    direct ``Class.method(instance, ...)`` - the common cases the lint
    rules meet are ``obj.m(...)`` and ``Class(...)``).
    """
    args = callee.node.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    if callee.class_key is not None and positional[:1] in (["self"], ["cls"]):
        positional = positional[1:]
    pairs: List[Tuple[ast.AST, str]] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        if index < len(positional):
            pairs.append((arg, positional[index]))
    valid = set(callee.params)
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in valid:
            pairs.append((keyword.value, keyword.arg))
    return pairs


def project_graph(project: Project) -> ProjectGraph:
    """Build (and memoize on the project) the call graph.

    ``Project`` instances are created fresh per lint run, so caching on
    the instance is safe and lets every project-level rule share one
    graph without changing the :class:`~.rules.base.Rule` protocol.
    """
    graph = getattr(project, "_graph", None)
    if graph is None or graph.project is not project:
        graph = ProjectGraph(project)
        project._graph = graph  # type: ignore[attr-defined]
    return graph
