"""Committed lint baseline: accepted findings by content fingerprint.

The baseline lets the gate start green on a tree with known, reviewed
findings and then *ratchet*: new findings fail, accepted ones are
reported as ``baselined``.  Entries are content fingerprints (rule +
path + stripped line text - see :mod:`repro.lint.findings`), so they
survive unrelated line-number churn but expire the moment the
offending line is edited.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set

from .findings import Finding

BASELINE_SCHEMA = "repro-lint-baseline-v1"


def load_baseline(path) -> Set[str]:
    """Accepted fingerprints; empty set when no baseline exists."""
    path = Path(path)
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return set()
    if payload.get("schema") != BASELINE_SCHEMA:
        return set()
    return {
        entry["fingerprint"]
        for entry in payload.get("entries", [])
        if isinstance(entry, dict) and "fingerprint" in entry
    }


def write_baseline(path, findings: Iterable[Finding]) -> Path:
    """Record ``findings`` (normally the active ones) as accepted."""
    entries: List[dict] = []
    seen: Set[str] = set()
    for finding in sorted(findings, key=lambda f: f.sort_key()):
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
