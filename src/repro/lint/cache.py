"""Incremental lint cache: content-addressed ASTs, findings, and runs.

Three layers, all keyed by content digests so staleness is impossible
by construction - a changed file, config, rule set, or cache schema
changes the key, and old entries are simply never read again:

* **AST layer** (``asts/<sha>.pkl``) - pickled module trees keyed by
  source digest.  Editing one file re-parses only that file.
* **File layer** (``files/<key>.json``) - per-file rule findings keyed
  by (source digest, config digest, rule codes).  Per-file rules skip
  unchanged files entirely.
* **Run layer** (``runs/<key>.json``) - the whole report keyed by the
  digest over every (relpath, source digest) pair plus config, rule
  codes, and path restriction.  A fully warm run parses nothing and
  runs no rules; only the baseline (which changes independently of the
  tree content) is re-applied by the engine.

Cached records are :meth:`repro.lint.findings.Finding.as_dict` output
plus ``line_text`` (the fingerprint input, needed to re-baseline) and
the ``suppressed`` flag (derived from file content, hence stable under
the same digest).  Writes are atomic (temp file + ``os.replace``) so
an interrupted run can never leave a truncated entry; any unreadable
entry reads as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding

#: Bump when the cache layout or the finding record shape changes:
#: the tag is hashed into every key, so old entries become unreachable.
CACHE_SCHEMA = "repro-lint-cache-v1"


def source_digest(source: str) -> str:
    """Content hash of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_digest(config) -> str:
    """Identity of a :class:`LintConfig` (frozen-dataclass repr)."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def _digest(*parts: str) -> str:
    payload = "\x1f".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


def file_key(sha: str, cfg_digest: str, codes: Sequence[str]) -> str:
    """Key of one file's per-file-rule findings."""
    return _digest(CACHE_SCHEMA, sha, cfg_digest, ",".join(codes))


def run_key(
    entries: Iterable[Tuple[str, str]],
    cfg_digest: str,
    codes: Sequence[str],
    paths: Optional[Sequence[str]],
) -> str:
    """Key of a whole lint run over the given (relpath, sha) snapshot."""
    snapshot = ";".join(f"{rel}={sha}" for rel, sha in sorted(entries))
    return _digest(
        CACHE_SCHEMA,
        snapshot,
        cfg_digest,
        ",".join(codes),
        ",".join(paths or ()),
    )


def finding_record(finding: Finding) -> Dict[str, Any]:
    """Cache record for one finding (JSONL record + fingerprint input)."""
    record = finding.as_dict()
    record["line_text"] = finding.line_text
    return record


def finding_from_record(record: Dict[str, Any]) -> Finding:
    """Inverse of :func:`finding_record` (``baselined`` is recomputed)."""
    finding = Finding.from_dict(record)
    finding.suppressed = bool(record.get("suppressed", False))
    return finding


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced by the bench and the cache tests."""

    ast_hits: int = 0
    ast_misses: int = 0
    file_hits: int = 0
    file_misses: int = 0
    run_hits: int = 0
    run_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class LintCache:
    """On-disk content-addressed cache (see module docstring)."""

    def __init__(self, cache_dir) -> None:
        self.dir = Path(cache_dir)
        self.stats = CacheStats()

    # -- storage primitives ------------------------------------------------

    def _path(self, layer: str, key: str, suffix: str) -> Path:
        return self.dir / layer / (key + suffix)

    def _write_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    @staticmethod
    def _read_json(path: Path) -> Optional[Any]:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    # -- AST layer ---------------------------------------------------------

    def load_tree(self, sha: str):
        path = self._path("asts", sha, ".pkl")
        try:
            tree = pickle.loads(path.read_bytes())
            self.stats.ast_hits += 1
            return tree
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.stats.ast_misses += 1
            return None

    def store_tree(self, sha: str, tree) -> None:
        self._write_atomic(
            self._path("asts", sha, ".pkl"),
            pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- file layer --------------------------------------------------------

    def load_file_findings(self, key: str) -> Optional[List[Finding]]:
        records = self._read_json(self._path("files", key, ".json"))
        if not isinstance(records, list):
            self.stats.file_misses += 1
            return None
        self.stats.file_hits += 1
        return [finding_from_record(r) for r in records]

    def store_file_findings(
        self, key: str, findings: Sequence[Finding]
    ) -> None:
        body = json.dumps([finding_record(f) for f in findings])
        self._write_atomic(
            self._path("files", key, ".json"), body.encode("utf-8")
        )

    # -- run layer ---------------------------------------------------------

    def load_run(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._read_json(self._path("runs", key, ".json"))
        if not isinstance(payload, dict) or "findings" not in payload:
            self.stats.run_misses += 1
            return None
        self.stats.run_hits += 1
        return payload

    def store_run(
        self,
        key: str,
        findings: Sequence[Finding],
        files_checked: int,
        parse_errors: Sequence[str],
    ) -> None:
        payload = {
            "schema": CACHE_SCHEMA,
            "findings": [finding_record(f) for f in findings],
            "files_checked": files_checked,
            "parse_errors": list(parse_errors),
        }
        self._write_atomic(
            self._path("runs", key, ".json"),
            json.dumps(payload).encode("utf-8"),
        )
