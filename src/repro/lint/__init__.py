"""repro.lint - determinism & cache-coherence static analysis.

AST-level checks for the contracts the rest of the repository relies on
but (until now) enforced only by convention:

=========  ============================================================
DET001     all randomness flows from trial-seeded Generators
DET002     wall-clock reads stay inside the explicit allowlist
CACHE001   chain inputs reach fingerprint() (cross-module call-graph
           proof); fingerprinted dataclass changes bump CHAIN_SCHEMA
           and refresh the manifest
CONC001    cache/scratch/result-store writes use the locked helpers
TRACE001   spans use span() with registered names
FLOAT001   no exact float equality in dsp/ and vrm/
ASYNC001   no blocking calls reachable from async code in repro/mux
ASYNC002   awaitables are awaited, not dropped
RES001     pooled buffers reach release/hand-off on every CFG path
RES002     no pooled-view reads after release
SCEN001    scenario components publish/read only declared resources
SCEN002    scenario randomness stays on the component's own stream
=========  ============================================================

The cross-module rules run on a project-wide symbol table + call graph
(:mod:`repro.lint.graph`) and a per-function CFG
(:mod:`repro.lint.cfg`); everything stays AST-level - the linted tree
is never imported.

Run with ``python -m repro lint`` (or ``make lint``; ``make lint-fast``
uses the incremental cache, :mod:`repro.lint.cache`).  Per-line
suppression: ``# lint: disable=CODE[,CODE]``.  Accepted findings live
in ``repro/lint/baseline.json``; the CACHE001 shape manifest in
``repro/lint/chain_schema.json`` (refresh with ``--update-schema``).
``[tool.repro.lint]`` in ``pyproject.toml`` overrides the built-in
defaults (:func:`repro.lint.config.load_config`).
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .cache import LintCache
from .config import DEFAULT_CONFIG, LintConfig, load_config
from .engine import (
    LintReport,
    load_project,
    rule_catalog,
    run_lint,
    write_schema_manifest,
)
from .findings import Finding, finding_fingerprint
from .rules import all_rules, rules_by_code

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintCache",
    "LintConfig",
    "LintReport",
    "all_rules",
    "finding_fingerprint",
    "load_baseline",
    "load_config",
    "load_project",
    "rule_catalog",
    "rules_by_code",
    "run_lint",
    "write_baseline",
    "write_schema_manifest",
]
