"""repro.lint - determinism & cache-coherence static analysis.

AST-level checks for the contracts the rest of the repository relies on
but (until now) enforced only by convention:

=========  ============================================================
DET001     all randomness flows from trial-seeded Generators
DET002     wall-clock reads stay inside the explicit allowlist
CACHE001   chain inputs reach fingerprint(); fingerprinted dataclass
           changes bump CHAIN_SCHEMA and refresh the manifest
CONC001    cache/scratch/result-store writes use the locked helpers
TRACE001   spans use span() with registered names
FLOAT001   no exact float equality in dsp/ and vrm/
=========  ============================================================

Run with ``python -m repro lint`` (or ``make lint``).  Per-line
suppression: ``# lint: disable=CODE[,CODE]``.  Accepted findings live
in ``repro/lint/baseline.json``; the CACHE001 shape manifest in
``repro/lint/chain_schema.json`` (refresh with ``--update-schema``).
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .config import DEFAULT_CONFIG, LintConfig
from .engine import (
    LintReport,
    load_project,
    rule_catalog,
    run_lint,
    write_schema_manifest,
)
from .findings import Finding, finding_fingerprint
from .rules import all_rules, rules_by_code

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "all_rules",
    "finding_fingerprint",
    "load_baseline",
    "load_project",
    "rule_catalog",
    "rules_by_code",
    "run_lint",
    "write_baseline",
    "write_schema_manifest",
]
