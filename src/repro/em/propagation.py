"""Near-field magnetic propagation and wall attenuation.

At the VRM's ~1 MHz switching frequency the wavelength is ~300 m, so
every distance in the paper (10 cm to 2.5 m) is deep inside the magnetic
near field, where the field of a small current loop falls off as
``1/r^3``.  Beyond the radian distance ``lambda / 2pi`` the falloff
relaxes toward ``1/r`` (never reached in these experiments, but modelled
for completeness).

Structural walls attenuate low-frequency magnetic fields only mildly -
which is exactly why the paper's through-wall experiment works - so the
wall model is a modest frequency-dependent loss plus extra distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import SPEED_OF_LIGHT_M_S


@dataclass(frozen=True)
class Wall:
    """A structural wall between transmitter and receiver.

    Attributes
    ----------
    thickness_m:
        Physical thickness (the paper's office wall is 0.35 m).
    loss_db_at_1mhz:
        Magnetic-field insertion loss at 1 MHz; scales ~sqrt(f) like a
        conductive-loss mechanism.
    """

    thickness_m: float = 0.35
    loss_db_at_1mhz: float = 12.5

    def loss_db(self, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.loss_db_at_1mhz * np.sqrt(frequency_hz / 1e6)


@dataclass(frozen=True)
class PathModel:
    """Field gain between the VRM and the receive antenna.

    ``reference_distance_m`` is where the emission model's amplitude is
    calibrated (i.e. ``gain == 1``); commodity probes held against the
    chassis sit a few centimetres from the regulator itself.
    """

    reference_distance_m: float = 0.03

    def gain(self, distance_m: float, frequency_hz: float, wall: Wall = None) -> float:
        """Linear field gain (<= 1 for distances past the reference)."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        radian_distance = SPEED_OF_LIGHT_M_S / (2 * np.pi * frequency_hz)
        g = _near_far_gain(distance_m, radian_distance) / _near_far_gain(
            self.reference_distance_m, radian_distance
        )
        if wall is not None:
            g *= 10.0 ** (-wall.loss_db(frequency_hz) / 20.0)
        return float(g)

    def gain_db(self, distance_m: float, frequency_hz: float, wall: Wall = None) -> float:
        """Path gain in dB (negative values are loss)."""
        return 20.0 * float(np.log10(self.gain(distance_m, frequency_hz, wall)))


def _near_far_gain(r: float, radian_distance: float) -> float:
    """Unnormalised magnetic-dipole field magnitude vs distance.

    Combines the small-loop field terms: ``1/r^3`` (quasi-static),
    ``1/r^2`` (induction) and ``1/r`` (radiating), so the model is exact
    in the near field and relaxes to 1/r far beyond the radian distance.
    """
    kr = r / radian_distance
    return np.sqrt(1.0 + kr**2 + kr**4) / r**3
