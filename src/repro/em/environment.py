"""Measurement scenario composition.

A :class:`Scenario` bundles everything between the VRM and the SDR input:
distance, an optional wall, the receive antenna, and the noise
environment.  ``apply`` turns an emitted waveform into the voltage at the
SDR's antenna port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .antenna import LoopAntenna, aor_la390, coil_probe
from .noise import NoiseEnvironment, office_with_appliances, quiet_lab
from .propagation import PathModel, Wall


@dataclass
class Scenario:
    """One physical measurement setup.

    Attributes
    ----------
    name:
        Label used in reports ("near-field", "1m", "1.5m-wall", ...).
    distance_m:
        Antenna distance from the VRM.
    antenna:
        Receive antenna model.
    wall:
        Optional wall in the path.
    noise:
        Additive noise environment at the antenna output.
    band_center_hz:
        Carrier frequency of the capture band (profile-scaled; used to
        place interferers relative to the signal).
    physics_frequency_hz:
        Frequency at which path loss, wall loss and antenna gain are
        evaluated.  Defaults to ``band_center_hz``; scaled simulation
        profiles pass the *paper-scale* carrier here so the link budget
        is profile-invariant.
    path:
        Near-field propagation model.
    """

    name: str
    distance_m: float
    antenna: LoopAntenna
    band_center_hz: float
    wall: Optional[Wall] = None
    noise: NoiseEnvironment = field(default_factory=quiet_lab)
    path: PathModel = field(default_factory=PathModel)
    physics_frequency_hz: Optional[float] = None

    @property
    def effective_physics_frequency_hz(self) -> float:
        if self.physics_frequency_hz is not None:
            return self.physics_frequency_hz
        return self.band_center_hz

    def link_gain(self) -> float:
        """Total linear gain from emitted field units to antenna volts."""
        f = self.effective_physics_frequency_hz
        return self.path.gain(self.distance_m, f, self.wall) * self.antenna.gain(f)

    def apply(
        self,
        emission: np.ndarray,
        sample_rate: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Propagate an emission waveform and add environment noise."""
        received = emission * self.link_gain()
        received = received + self.noise.render(received.size, sample_rate, rng)
        return received

    def snr_estimate_db(self, signal_amplitude: float) -> float:
        """Rough link budget: carrier amplitude over broadband noise floor."""
        carrier = signal_amplitude * self.link_gain()
        floor = max(self.noise.awgn_amplitude, 1e-30)
        return 20.0 * float(np.log10(max(carrier, 1e-30) / floor))


def near_field_scenario(
    band_center_hz: float,
    awgn_amplitude: float = 2e-2,
    physics_frequency_hz: Optional[float] = None,
) -> Scenario:
    """The paper's 10 cm coil-probe setup."""
    return Scenario(
        name="near-field-10cm",
        distance_m=0.10,
        antenna=coil_probe(),
        band_center_hz=band_center_hz,
        noise=quiet_lab(awgn_amplitude),
        physics_frequency_hz=physics_frequency_hz,
    )


def distance_scenario(
    distance_m: float,
    band_center_hz: float,
    awgn_amplitude: float = 3e-2,
    physics_frequency_hz: Optional[float] = None,
) -> Scenario:
    """Line-of-sight loop-antenna setup at the given distance (Table III)."""
    return Scenario(
        name=f"los-{distance_m:g}m",
        distance_m=distance_m,
        antenna=aor_la390(),
        band_center_hz=band_center_hz,
        noise=quiet_lab(awgn_amplitude),
        physics_frequency_hz=physics_frequency_hz,
    )


def through_wall_scenario(
    band_center_hz: float,
    distance_m: float = 1.5,
    awgn_amplitude: float = 3e-2,
    interferer_amplitude: float = 0.06,
    physics_frequency_hz: Optional[float] = None,
) -> Scenario:
    """The paper's Figure 10 NLoS setup: 1.5 m with a 35 cm wall,
    plus printer/refrigerator interference in both rooms."""
    return Scenario(
        name=f"nlos-{distance_m:g}m-wall",
        distance_m=distance_m,
        antenna=aor_la390(),
        band_center_hz=band_center_hz,
        wall=Wall(),
        noise=office_with_appliances(
            awgn_amplitude, interferer_amplitude, band_center_hz
        ),
        physics_frequency_hz=physics_frequency_hz,
    )
