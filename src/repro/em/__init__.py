"""EM propagation substrate: path loss, antennas, noise, scenarios."""

from .antenna import LoopAntenna, aor_la390, coil_probe
from .environment import (
    Scenario,
    distance_scenario,
    near_field_scenario,
    through_wall_scenario,
)
from .noise import (
    ImpulsiveNoise,
    NoiseEnvironment,
    ToneInterferer,
    office_with_appliances,
    quiet_lab,
)
from .propagation import PathModel, Wall

__all__ = [
    "ImpulsiveNoise",
    "LoopAntenna",
    "NoiseEnvironment",
    "PathModel",
    "Scenario",
    "ToneInterferer",
    "Wall",
    "aor_la390",
    "coil_probe",
    "distance_scenario",
    "near_field_scenario",
    "office_with_appliances",
    "quiet_lab",
    "through_wall_scenario",
]
