"""Receive antenna models.

The paper uses two antennas:

* a coin-sized handmade 33-turn coil probe (radius 5 mm, < $5) for
  near-field capture, and
* an AOR LA390 magnetic loop (radius 30 cm, built-in 20 dB amplifier)
  for the distance and through-wall experiments.

For a small loop in a magnetic field, the induced EMF is
``N * A * dB/dt``; at a fixed carrier band this is a scalar gain
proportional to ``N * A * 2*pi*f``, which is all the link budget needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoopAntenna:
    """A multi-turn receive loop with optional built-in amplification.

    Attributes
    ----------
    name:
        Label used in experiment reports.
    turns:
        Number of turns.
    radius_m:
        Loop radius.
    amplifier_db:
        Built-in LNA gain in dB (0 for a passive probe).
    orientation_efficiency:
        Cosine-type factor in (0, 1] for imperfect alignment with the
        field; the paper manually orients antennas to maximise SNR, so
        defaults near 1.
    """

    name: str
    turns: int
    radius_m: float
    amplifier_db: float = 0.0
    orientation_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.turns < 1:
            raise ValueError("antenna needs at least one turn")
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if not 0.0 < self.orientation_efficiency <= 1.0:
            raise ValueError("orientation efficiency must be in (0, 1]")

    @property
    def area_m2(self) -> float:
        return float(np.pi * self.radius_m**2)

    @property
    def effective_area_m2(self) -> float:
        """Turns-area product, the antenna's intrinsic sensitivity."""
        return self.turns * self.area_m2

    def gain(self, frequency_hz: float) -> float:
        """Linear voltage gain from field amplitude to output voltage.

        Normalised so the paper's coil probe has unity gain at 1 MHz;
        absolute volts are irrelevant because the receiver is
        threshold-adaptive, only *ratios* between setups matter.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        probe_na = 33 * np.pi * 0.005**2
        relative_na = self.effective_area_m2 / probe_na
        amp = 10.0 ** (self.amplifier_db / 20.0)
        return float(
            relative_na * (frequency_hz / 1e6) * amp * self.orientation_efficiency
        )


def coil_probe() -> LoopAntenna:
    """The paper's $5 handmade 33-turn, 5 mm-radius coil probe."""
    return LoopAntenna(name="coil-probe", turns=33, radius_m=0.005)


def aor_la390() -> LoopAntenna:
    """The paper's AOR LA390 30 cm loop with built-in 20 dB amplifier."""
    return LoopAntenna(
        name="AOR-LA390", turns=1, radius_m=0.30, amplifier_db=20.0
    )
