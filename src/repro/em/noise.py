"""Noise and interference sources.

Three populations model the paper's office environment:

* broadband thermal/ambient noise (AWGN),
* narrowband interferers - other switching supplies (the printer and
  refrigerator visible in the paper's Figure 10 setup) emit their own
  harmonic combs that can land near the target's band, and
* impulsive noise - sporadic broadband clicks (relay switching, motors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass(frozen=True)
class ToneInterferer:
    """A narrowband interferer: another switcher's spectral line.

    ``drift_rel`` applies a slow random walk to the tone frequency,
    matching the frequency wobble of uncontrolled thermal oscillators.
    """

    frequency_hz: float
    amplitude: float
    drift_rel: float = 1e-4

    def render(
        self, n_samples: int, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        t = np.arange(n_samples) / sample_rate
        if self.drift_rel > 0:
            # Integrated random-walk frequency drift.
            steps = rng.normal(0.0, self.drift_rel, size=n_samples)
            freq = self.frequency_hz * (1.0 + np.cumsum(steps) / np.sqrt(n_samples))
        else:
            freq = np.full(n_samples, self.frequency_hz)
        phase = 2 * np.pi * np.cumsum(freq) / sample_rate
        phase0 = rng.uniform(0, 2 * np.pi)
        return self.amplitude * np.sin(phase + phase0)


@dataclass(frozen=True)
class ImpulsiveNoise:
    """Sporadic broadband clicks with Poisson arrivals."""

    rate_hz: float
    amplitude: float
    duration_s: float = 50e-6

    def render(
        self, n_samples: int, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.zeros(n_samples)
        duration = n_samples / sample_rate
        n_events = int(rng.poisson(self.rate_hz * duration))
        width = max(int(self.duration_s * sample_rate), 1)
        for _ in range(n_events):
            start = int(rng.uniform(0, max(n_samples - width, 1)))
            burst = self.amplitude * rng.standard_normal(width)
            burst *= np.hanning(width) if width > 2 else 1.0
            out[start : start + width] += burst[: n_samples - start]
        return out


@dataclass
class NoiseEnvironment:
    """Everything added to the received waveform besides the target signal.

    Attributes
    ----------
    awgn_amplitude:
        Standard deviation of the broadband noise floor at the antenna
        output (same arbitrary units as the signal chain).
    tones / impulses:
        Optional structured interferers.
    """

    awgn_amplitude: float = 1e-3
    tones: List[ToneInterferer] = field(default_factory=list)
    impulses: List[ImpulsiveNoise] = field(default_factory=list)

    def render(
        self, n_samples: int, sample_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Render the total additive noise waveform."""
        if n_samples <= 0:
            return np.zeros(0)
        out = self.awgn_amplitude * rng.standard_normal(n_samples)
        for tone in self.tones:
            out += tone.render(n_samples, sample_rate, rng)
        for imp in self.impulses:
            out += imp.render(n_samples, sample_rate, rng)
        return out


def quiet_lab(awgn_amplitude: float = 1e-3) -> NoiseEnvironment:
    """A quiet near-field measurement environment."""
    return NoiseEnvironment(awgn_amplitude=awgn_amplitude)


def office_with_appliances(
    awgn_amplitude: float,
    interferer_amplitude: float,
    band_center_hz: float,
) -> NoiseEnvironment:
    """The paper's NLoS office: printer + refrigerator interferers.

    Interfering combs are placed off the target's exact line frequency
    (other switchers run at their own frequencies) but inside the SDR's
    capture bandwidth, making the spectrum busier without sitting
    directly on the Eq. 1 bins - matching the paper's observation that
    communication stays reliable amid other emitters.
    """
    return NoiseEnvironment(
        awgn_amplitude=awgn_amplitude,
        tones=[
            ToneInterferer(band_center_hz * 0.87, interferer_amplitude),
            ToneInterferer(band_center_hz * 1.13, interferer_amplitude * 0.7),
            ToneInterferer(band_center_hz * 0.55, interferer_amplitude * 0.5),
        ],
        impulses=[
            ImpulsiveNoise(rate_hz=2.0, amplitude=interferer_amplitude * 2.0)
        ],
    )
