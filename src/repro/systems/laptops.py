"""The paper's Table I target systems.

Each :class:`Machine` bundles the per-laptop models: power-state table,
VRM design, OS sleep timer, busy-loop compute model and interrupt
profile.  Values are representative of each platform class rather than
measured: what matters for reproduction is the *structure* - which OS
family (sleep granularity), which DVFS control style (architecture
generation), and a per-machine VRM switching frequency in the paper's
250 kHz - 1 MHz range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..osmodel.interrupts import NOISY, QUIET, InterruptProfile
from ..osmodel.timers import ComputeModel, SleepTimer, UnixUsleep, WindowsSleep
from ..params import SimProfile
from ..power.governor import DvfsGovernor, OndemandGovernor, SpeedShiftGovernor
from ..power.states import PowerStateTable, default_table
from ..vrm.buck import BuckDesign

#: Architectures with hardware P-state control (Intel Speed Shift).
#: Matched case-insensitively (the paper's Table I spells "SkyLake").
_SPEED_SHIFT_ARCHS = {"skylake", "kaby lake", "coffee lake"}


@dataclass(frozen=True)
class Machine:
    """One target laptop.

    Attributes
    ----------
    name / vendor / os_name / architecture:
        Table I identity columns.
    vrm_frequency_hz:
        This laptop's VRM switching frequency (paper scale).
    sleep_period_s:
        The transmitter's SLEEP_PERIOD on this machine (paper scale).
        Roughly 100-150 us on the Unix laptops; on Windows the quantum
        of the raised multimedia timer (0.5 ms).  Chosen together with
        active_period_s so one-bits and zero-bits have equal duration,
        as the paper prescribes (active ~ realised idle).
    active_period_s:
        Target busy-loop duration per '1' bit; tuned so active and idle
        periods have roughly equal length as in the paper.
    emission_strength:
        Relative emission amplitude (board layout/shielding differences
        between vendors).
    interrupt_profile:
        This machine's asynchronous-activity population.
    """

    name: str
    vendor: str
    os_name: str
    architecture: str
    vrm_frequency_hz: float
    sleep_period_s: float
    active_period_s: float
    emission_strength: float = 1.0
    max_current_a: float = 16.0
    interrupt_profile: InterruptProfile = QUIET

    @property
    def is_windows(self) -> bool:
        return self.os_name.startswith("Windows")

    @property
    def uses_speed_shift(self) -> bool:
        return self.architecture.lower() in _SPEED_SHIFT_ARCHS

    def power_table(
        self, *, allow_c: bool = True, allow_p: bool = True
    ) -> PowerStateTable:
        """This machine's P/C-state table, with optional BIOS restriction."""
        table = default_table(max_current_a=self.max_current_a)
        return table.restrict(allow_c=allow_c, allow_p=allow_p)

    def governor(self, table: PowerStateTable, profile: SimProfile) -> DvfsGovernor:
        """DVFS policy matching the architecture generation."""
        if self.uses_speed_shift:
            return SpeedShiftGovernor(
                table,
                step_interval_s=profile.dilate(5e-6),
                hold_s=profile.dilate(1e-3),
            )
        return OndemandGovernor(table, sampling_s=profile.dilate(10e-3))

    def sleep_timer(
        self, rng: np.random.Generator, profile: SimProfile
    ) -> SleepTimer:
        """The OS sleep primitive: usleep() or Sleep()."""
        if self.is_windows:
            return WindowsSleep(rng, time_scale=profile.time_scale)
        return UnixUsleep(rng, time_scale=profile.time_scale)

    def compute_model(self, profile: SimProfile) -> ComputeModel:
        """Busy-loop timing for this machine."""
        base = ComputeModel(
            seconds_per_iteration=2e-9, call_overhead_s=12e-6, noise_rel_std=0.05
        )
        return base.scaled(profile.time_scale)

    def buck_design(self, profile: SimProfile) -> BuckDesign:
        """This laptop's VRM electrical design at the given profile."""
        return BuckDesign(
            switching_frequency_hz=self.vrm_frequency_hz / profile.total_freq_divisor,
            max_load_a=self.max_current_a,
        )

    def scaled_sleep_period(self, profile: SimProfile) -> float:
        return profile.dilate(self.sleep_period_s)

    def scaled_active_period(self, profile: SimProfile) -> float:
        return profile.dilate(self.active_period_s)


def _machine(**kwargs) -> Machine:
    return Machine(**kwargs)


#: Table I, row by row.  ``active_period_s`` reflects how tightly each
#: machine's transmitter could pack a bit (library overheads differ by
#: OS/hardware); together with SLEEP_PERIOD it sets the Table II TR.
DELL_PRECISION = _machine(
    name="Dell Precision 7290",
    vendor="Dell",
    os_name="Windows 10",
    architecture="Kaby Lake",
    vrm_frequency_hz=985e3,
    sleep_period_s=0.5e-3,
    active_period_s=0.75e-3,
    emission_strength=1.1,
)

MACBOOK_2015 = _machine(
    name="MacBookPro-2015",
    vendor="Apple",
    os_name="macOS (Mojave)",
    architecture="Broadwell",
    vrm_frequency_hz=970e3,
    sleep_period_s=119e-6,
    active_period_s=141e-6,
    emission_strength=0.8,
    interrupt_profile=NOISY,
)

DELL_INSPIRON = _machine(
    name="Dell Inspiron 15-3537",
    vendor="Dell",
    os_name="Linux (Debian)",
    architecture="Haswell",
    vrm_frequency_hz=970e3,
    sleep_period_s=142e-6,
    active_period_s=164e-6,
    emission_strength=1.0,
)

MACBOOK_2018 = _machine(
    name="MacBookPro-2018",
    vendor="Apple",
    os_name="macOS (Mojave)",
    architecture="Coffee Lake",
    vrm_frequency_hz=955e3,
    sleep_period_s=121e-6,
    active_period_s=143e-6,
    emission_strength=0.8,
    interrupt_profile=NOISY,
)

LENOVO_THINKPAD = _machine(
    name="Lenovo Thinkpad",
    vendor="Lenovo",
    os_name="Linux (Ubuntu)",
    architecture="SkyLake",
    vrm_frequency_hz=990e3,
    sleep_period_s=150e-6,
    active_period_s=171e-6,
    emission_strength=1.0,
)

SONY_ULTRABOOK = _machine(
    name="Sony Ultrabook",
    vendor="Sony",
    os_name="Windows 8",
    architecture="Ivy Bridge",
    vrm_frequency_hz=940e3,
    sleep_period_s=0.5e-3,
    active_period_s=0.75e-3,
    emission_strength=1.0,
)

#: All Table I machines, in the paper's row order.
TABLE_I = (
    DELL_PRECISION,
    MACBOOK_2015,
    DELL_INSPIRON,
    MACBOOK_2018,
    LENOVO_THINKPAD,
    SONY_ULTRABOOK,
)


def by_name(name: str) -> Machine:
    """Look up a Table I machine by (case-insensitive) name substring."""
    matches = [m for m in TABLE_I if name.lower() in m.name.lower()]
    if not matches:
        known = ", ".join(m.name for m in TABLE_I)
        raise KeyError(f"no machine matching {name!r}; known: {known}")
    if len(matches) > 1:
        raise KeyError(f"ambiguous machine name {name!r}")
    return matches[0]
