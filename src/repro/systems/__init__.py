"""Target system configurations (the paper's Table I laptops)."""

from .laptops import (
    DELL_INSPIRON,
    DELL_PRECISION,
    LENOVO_THINKPAD,
    MACBOOK_2015,
    MACBOOK_2018,
    SONY_ULTRABOOK,
    TABLE_I,
    Machine,
    by_name,
)

__all__ = [
    "DELL_INSPIRON",
    "DELL_PRECISION",
    "LENOVO_THINKPAD",
    "MACBOOK_2015",
    "MACBOOK_2018",
    "Machine",
    "SONY_ULTRABOOK",
    "TABLE_I",
    "by_name",
]
