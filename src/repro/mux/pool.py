"""Shared ring-buffer pool: one slab arena for the whole fleet.

The single-stream runner gives every receiver its own
:class:`~repro.stream.ring.RingBuffer` of owned chunk arrays.  At fleet
scale (1k-10k streams) that allocation pattern is hostile: thousands of
small ndarrays churn the allocator, and no global statement can be made
about how much IQ the process is actually buffering.  The pool replaces
it with **one** preallocated arena of fixed-size slabs; each stream
holds a bounded FIFO *view* (:class:`StreamQueue`) of slab ids, so

* total buffered IQ is capped by construction (``n_slabs * slab_size``),
* enqueue/dequeue never allocates (a push copies into a recycled slab),
* drop accounting stays exact per stream - every chunk a producer
  offers is classified as buffered, delivered, or dropped, never lost.

Overflow semantics mirror the single-stream ring: ``drop-oldest``
evicts the stream's own oldest queued chunk (the live-SDR behaviour),
``block`` raises :class:`~repro.stream.ring.BufferFull` (reaching it
means the scheduler failed to drain first).  Two fleet-only cases are
defined on top:

* **zero-capacity streams** are legal - every offered chunk is
  immediately dropped and accounted, which models a receiver that is
  registered but not granted any buffer budget;
* **pool exhaustion** (free slabs run out while a stream still has
  queue headroom) falls back to the same policy: under ``drop-oldest``
  the stream evicts its own oldest chunk to recycle a slab, and a
  stream with nothing to evict drops the incoming chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..stream.ring import POLICIES, BufferFull
from ..stream.source import Chunk


@dataclass
class PooledChunk:
    """One queued chunk: source metadata plus its slab-backed samples.

    ``samples`` is a view into the arena; it is valid until the chunk's
    slab is released back to the pool (:meth:`ChunkPool.release`), after
    which the slab may be recycled for another stream's push.
    """

    stream_id: str
    index: int
    start_sample: int
    arrival_s: float
    size: int
    slab: int
    samples: np.ndarray

    @property
    def end_sample(self) -> int:
        return self.start_sample + self.size


class StreamQueue:
    """One stream's bounded FIFO view over the shared arena.

    Created by :meth:`ChunkPool.register`; never constructed directly.
    Counters follow the single-stream ring's contract (``pushed`` /
    ``popped`` / ``dropped_chunks`` / ``dropped_samples`` /
    ``high_watermark``) so per-stream conservation can be checked:
    every pushed chunk is either still queued, popped, or dropped.
    """

    def __init__(self, pool: "ChunkPool", stream_id: str, capacity: int,
                 policy: str):
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r}; choose from {POLICIES}"
            )
        self._pool = pool
        self.stream_id = stream_id
        self.capacity = int(capacity)
        self.policy = policy
        self._items: List[PooledChunk] = []
        self.pushed = 0
        self.popped = 0
        self.dropped_chunks = 0
        self.dropped_samples = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def occupancy(self) -> float:
        """Fill fraction in ``[0, 1]`` (a zero-capacity queue is full)."""
        if self.capacity == 0:
            return 1.0
        return len(self._items) / self.capacity

    @property
    def buffered_samples(self) -> int:
        return sum(item.size for item in self._items)

    def push(self, chunk: Chunk) -> List[PooledChunk]:
        """Offer one chunk; returns the chunks dropped to admit it.

        The incoming chunk itself appears in the returned list when it
        could not be admitted (zero capacity, or pool exhaustion with
        nothing of our own to evict) - so the caller's accounting never
        needs to distinguish "evicted" from "rejected".  Dropped chunks'
        slabs are already released.
        """
        self.pushed += 1
        dropped: List[PooledChunk] = []
        if self.capacity == 0:
            if self.policy == "block":
                raise BufferFull(
                    f"stream {self.stream_id!r} has zero capacity under "
                    "block policy; it can never accept a chunk"
                )
            self._account_drop(dropped, self._reject(chunk))
            return dropped
        while self.full:
            if self.policy == "block":
                raise BufferFull(
                    f"stream {self.stream_id!r} queue full "
                    f"({self.capacity} chunks) under block policy; "
                    "drain before pushing"
                )
            self._account_drop(dropped, self._evict_oldest())
        slab = self._pool._acquire()
        if slab is None:
            if self.policy == "block":
                raise BufferFull(
                    "chunk pool exhausted under block policy; drain "
                    "before pushing"
                )
            if self._items:
                # Recycle our own oldest slab (drop-oldest semantics
                # under pool pressure), then retry the acquire - it
                # must succeed now.
                self._account_drop(dropped, self._evict_oldest())
                slab = self._pool._acquire()
            if slab is None:
                self._account_drop(dropped, self._reject(chunk))
                return dropped
        samples = self._pool._write(slab, chunk.samples)
        self._items.append(
            PooledChunk(
                stream_id=self.stream_id,
                index=chunk.index,
                start_sample=chunk.start_sample,
                arrival_s=chunk.arrival_s,
                size=chunk.size,
                slab=slab,
                samples=samples,
            )
        )
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        return dropped

    def pop(self) -> Optional[PooledChunk]:
        """Dequeue the oldest chunk, or None when empty.

        The caller owns the chunk's slab until it calls
        :meth:`ChunkPool.release` (after copying or consuming the
        samples view).
        """
        if not self._items:
            return None
        self.popped += 1
        return self._items.pop(0)

    def peek(self) -> Optional[PooledChunk]:
        return self._items[0] if self._items else None

    # -- internal -----------------------------------------------------------

    def _evict_oldest(self) -> PooledChunk:
        victim = self._items.pop(0)
        self._pool.release(victim)
        return victim

    def _reject(self, chunk: Chunk) -> PooledChunk:
        """Wrap an unadmitted source chunk as an already-dropped entry."""
        return PooledChunk(
            stream_id=self.stream_id,
            index=chunk.index,
            start_sample=chunk.start_sample,
            arrival_s=chunk.arrival_s,
            size=chunk.size,
            slab=-1,
            samples=chunk.samples,
        )

    def _account_drop(self, out: List[PooledChunk], victim: PooledChunk) -> None:
        self.dropped_chunks += 1
        self.dropped_samples += victim.size
        out.append(victim)


class ChunkPool:
    """The arena: ``n_slabs`` preallocated chunk slots shared fleet-wide.

    Parameters
    ----------
    n_slabs:
        Total chunk slots across every stream.  The natural sizing is
        the sum of per-stream capacities (no stream can then starve
        another); undersizing is legal and engages the pool-exhaustion
        policy documented on :class:`StreamQueue`.
    slab_size:
        Samples per slot; every pushed chunk must fit
        (``chunk.size <= slab_size``).
    dtype:
        Arena element type (complex64, matching SDR IQ).
    """

    def __init__(self, n_slabs: int, slab_size: int, dtype=np.complex64):
        if n_slabs < 1:
            raise ValueError("n_slabs must be >= 1")
        if slab_size < 1:
            raise ValueError("slab_size must be >= 1")
        self.n_slabs = int(n_slabs)
        self.slab_size = int(slab_size)
        self._arena = np.empty((self.n_slabs, self.slab_size), dtype=dtype)
        self._free = list(range(self.n_slabs - 1, -1, -1))  # LIFO recycle
        self._queues: Dict[str, StreamQueue] = {}
        self.high_watermark = 0

    @property
    def in_use(self) -> int:
        return self.n_slabs - len(self._free)

    @property
    def nbytes(self) -> int:
        return int(self._arena.nbytes)

    def register(
        self, stream_id: str, capacity: int, policy: str = "drop-oldest"
    ) -> StreamQueue:
        """Create the stream's queue view (ids are unique per pool)."""
        if stream_id in self._queues:
            raise ValueError(f"stream {stream_id!r} already registered")
        queue = StreamQueue(self, stream_id, capacity, policy)
        self._queues[stream_id] = queue
        return queue

    def queue(self, stream_id: str) -> StreamQueue:
        return self._queues[stream_id]

    def release(self, chunk: PooledChunk) -> None:
        """Return a popped/evicted chunk's slab to the free list."""
        if chunk.slab < 0:
            return  # rejected chunk: never held a slab
        self._free.append(chunk.slab)
        chunk.slab = -1

    # -- slab plumbing (StreamQueue only) ------------------------------------

    def _acquire(self) -> Optional[int]:
        if not self._free:
            return None
        slab = self._free.pop()
        if self.in_use > self.high_watermark:
            self.high_watermark = self.in_use
        return slab

    def _write(self, slab: int, samples: np.ndarray) -> np.ndarray:
        n = samples.size
        if n > self.slab_size:
            self._free.append(slab)
            raise ValueError(
                f"chunk of {n} samples exceeds the pool slab size "
                f"{self.slab_size}"
            )
        view = self._arena[slab, :n]
        view[:] = samples
        return view
