"""Cross-stream batched DSP: one kernel call per config group per tick.

A fleet of 1k receivers running :meth:`StreamingSTFT.push` individually
pays the per-call numpy dispatch price (window multiply, FFT plan
lookup, fftshift, abs, bin gather - each a separate small-array call)
a thousand times per tick.  The multiplexer instead exploits the same
row-independence that :mod:`repro.batch` already leans on: numpy's
pocketfft transforms each row of a 2D FFT with the same 1D plan,
independently, so stacking staged frames from *many* streams into one
``fft(stack * win, axis=1)`` produces, row for row, bit-for-bit the
outputs the per-stream pushes would.

The contract, per group per tick:

1. every stream **stages** its pending samples
   (:meth:`StreamingSTFT.stage` - raw frame views, no window/FFT);
2. the staged rows are stacked and pushed through one windowed FFT,
   row-chunked at :data:`CHUNK_BYTES` so a 10k-stream tick never
   materialises a multi-GB spectra array (row chunking cannot change
   any output row - rows are independent);
3. each stream gets its slice of the Eq. 1 envelope
   (``mags[:, bins].sum(axis=1)`` - the exact per-stream reduction),
   **completes** its staged frames, and feeds the envelope to its
   receiver via ``push_envelope``.

Streams may only share a kernel call when every parameter that shapes
a frame matches; :attr:`MuxStream.group_key` captures exactly that set
(fft size, hop, window, complex/real input, sample rate).  Receivers
with different *bins* still batch together - bin selection happens in
the per-stream reduction, after the shared FFT.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import tap_mux_group
from ..obs.trace import span

#: Upper bound on one FFT block's complex spectra.  Sized so the
#: scratch block, its spectra, and the window all stay resident in
#: last-level cache across the multiply -> FFT -> |.|-gather pipeline:
#: measured on the 1 kHz-stream capacity benchmark, 64 MiB blocks
#: (DRAM round-trips between stages) run the whole kernel 2.2x slower
#: than 4 MiB blocks, while blocks below ~1 MiB start paying per-block
#: dispatch instead.  Still >=1 row at fft sizes up to 256k.
CHUNK_BYTES = 4 * 1024 * 1024


class MuxStream:
    """Adapter binding one receiver into the batched-DSP tick.

    Wraps any receiver exposing the mux hooks grown in
    :mod:`repro.stream.receiver`: a ``band`` property (the
    :class:`~repro.stream.demod.StreamingBandEnergy` it consumes) and
    ``push_envelope``; receivers that keep per-sample statistics
    outside the STFT (the keystroke detector's RMS accumulator) also
    expose ``account_samples``, which the tick routes every sample
    through - including gap zeros - before staging.
    """

    def __init__(self, stream_id: str, receiver):
        self.stream_id = stream_id
        self.receiver = receiver
        band = receiver.band
        self.sstft = band.sstft
        self.bins = np.asarray(band.bins, dtype=int)
        self.account: Optional[Callable[[np.ndarray], None]] = getattr(
            receiver, "account_samples", None
        )
        self._pending: List[np.ndarray] = []
        self.pending_samples = 0

    @property
    def group_key(self) -> Tuple[int, int, str, bool, float]:
        """Everything that must match for two streams to share an FFT."""
        s = self.sstft
        return (s.fft_size, s.hop, s.window, s.complex_input, s.sample_rate)

    def buffer(self, samples: np.ndarray) -> None:
        """Queue delivered samples for this stream's next tick."""
        if samples.size:
            self._pending.append(samples)
            self.pending_samples += samples.size

    def take_pending(self) -> Optional[np.ndarray]:
        """Drain the tick's deliveries as one contiguous chunk."""
        if not self._pending:
            return None
        if len(self._pending) == 1:
            out = self._pending[0]
        else:
            out = np.concatenate(self._pending)
        self._pending = []
        self.pending_samples = 0
        return out


def group_streams(streams: Sequence[MuxStream]) -> Dict[tuple, List[MuxStream]]:
    """Partition streams into batched-kernel groups (insertion-ordered)."""
    groups: Dict[tuple, List[MuxStream]] = {}
    for ms in streams:
        groups.setdefault(ms.group_key, []).append(ms)
    return groups


def _block_rows(fft_size: int) -> int:
    """Rows per FFT block so spectra stay under :data:`CHUNK_BYTES`."""
    return max(1, CHUNK_BYTES // (fft_size * np.dtype(np.complex128).itemsize))


def tick_group(
    streams: Sequence[MuxStream], now_s: float
) -> List[Tuple[MuxStream, list]]:
    """Run one batched DSP tick over a compatible group.

    Drains every stream's pending deliveries, stages them, runs the
    stacked windowed FFT in row blocks, and hands each stream its
    envelope slice through ``push_envelope``.  Returns
    ``(stream, events)`` pairs for streams that produced envelope
    frames or events this tick.

    Bit-identity: every row in a block is windowed, transformed,
    shifted, and |.|-reduced by the same elementwise / per-row
    arithmetic a lone :meth:`StreamingSTFT.push` applies, and the
    per-stream ``mags[:, bins].sum(axis=1)`` gather-reduce runs on
    identical rows - so the envelope each receiver sees is the one the
    per-stream path would have produced, bit for bit, in any chunking.
    """
    staged: List[Tuple[MuxStream, np.ndarray, int]] = []
    for ms in streams:
        samples = ms.take_pending()
        if samples is None:
            continue
        if ms.account is not None:
            ms.account(samples)
        frames, first = ms.sstft.stage(samples)
        staged.append((ms, frames, first))
    if not staged:
        return []
    fft_size, hop, _, complex_input, sample_rate = streams[0].group_key
    total_rows = sum(frames.shape[0] for _, frames, _ in staged)
    out: List[Tuple[MuxStream, list]] = []
    with span(
        "mux.group",
        attrs={
            "streams": len(staged),
            "frames": total_rows,
            "fft_size": fft_size,
            "hop": hop,
        },
    ):
        envelopes = _batched_envelopes(staged, fft_size, complex_input)
        for (ms, frames, first), y in zip(staged, envelopes):
            n_new = frames.shape[0]
            times = ms.sstft.times(first, n_new)
            ms.sstft.complete(n_new)
            events = ms.receiver.push_envelope(y, times, now_s)
            if n_new or events:
                out.append((ms, events))
    tap_mux_group(len(staged), total_rows, total_rows * hop / sample_rate)
    return out


def _batched_envelopes(
    staged: Sequence[Tuple[MuxStream, np.ndarray, int]],
    fft_size: int,
    complex_input: bool,
) -> List[np.ndarray]:
    """Stacked windowed FFT -> per-stream Eq. 1 envelopes, row-blocked.

    Blocks are built greedily across stream boundaries: a block may end
    mid-stream and a stream may span several blocks.  Each output row
    depends only on its own input row, so the block layout is
    unobservable in the results.

    Two per-stream steps are algebraically relocated without touching a
    single output bit:

    * the per-stream path computes ``abs(fftshift(spectra))[:, bins]``;
      fftshift is a pure column permutation and abs is elementwise, so
      we gather ``spectra[:, (bins - n//2) % n]`` directly and take
      ``abs`` of just those columns - same complex values, same
      magnitudes, no full-spectrum shift or magnitude array;
    * the window multiply writes into one reused scratch block
      (``np.multiply(rows, win, out=...)``) - same elementwise product,
      no per-tick re-allocation.
    """
    win = staged[0][0].sstft.window_values
    limit = _block_rows(fft_size)
    total_rows = sum(frames.shape[0] for _, frames, _ in staged)
    limit = min(limit, max(total_rows, 1))
    scratch = np.empty(
        (limit, fft_size),
        dtype=np.complex128 if complex_input else np.float64,
    )
    remapped: List[np.ndarray] = []
    for ms, _frames, _first in staged:
        if complex_input:
            remapped.append((ms.bins - fft_size // 2) % fft_size)
        else:
            remapped.append(ms.bins)
    envelopes: List[List[np.ndarray]] = [[] for _ in staged]
    block_parts: List[Tuple[int, int]] = []  # (staged idx, n rows)
    block_rows = 0

    def flush() -> None:
        nonlocal block_rows
        if not block_parts:
            return
        rows = scratch[:block_rows]
        if complex_input:
            spectra = np.fft.fft(rows, axis=1)
        else:
            spectra = np.fft.rfft(rows, axis=1)
        off = 0
        for idx, n in block_parts:
            seg = spectra[off : off + n][:, remapped[idx]]
            envelopes[idx].append(np.abs(seg).sum(axis=1))
            off += n
        block_parts.clear()
        block_rows = 0

    for idx, (ms, frames, _first) in enumerate(staged):
        lo = 0
        n = frames.shape[0]
        while lo < n:
            take = min(n - lo, limit - block_rows)
            np.multiply(
                frames[lo : lo + take],
                win,
                out=scratch[block_rows : block_rows + take],
            )
            block_parts.append((idx, take))
            block_rows += take
            lo += take
            if block_rows >= limit:
                flush()
    flush()
    return [
        np.concatenate(parts) if parts else np.empty(0) for parts in envelopes
    ]
