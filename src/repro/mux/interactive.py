"""Interactive fleet control: pause, step, inspect, poke one stream.

Debugging a 1k-stream run by print statements is hopeless; this module
gives the multiplexer a REPL-sized surface instead.  The tick engine is
already synchronous (:meth:`StreamMultiplexer.tick` runs to completion
or not at all), so interaction is race-free by construction:

* :meth:`InteractiveMux.pause` / :meth:`resume` gate the asyncio run
  loop at tick boundaries;
* :meth:`step` executes exactly N ticks while paused;
* :meth:`inspect` returns one stream's full observable state - queue
  depth, ledger counters, receiver progress - as a plain dict;
* :meth:`poke` pushes ad-hoc samples through one stream's receiver via
  the *per-stream* path (its own staged frames, not a fleet kernel),
  which is exactly what you want when bisecting a suspected batching
  bug: the poked stream's envelope is the reference the group path
  must match bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from .scheduler import StreamMultiplexer


class InteractiveMux:
    """Thin control shell over a :class:`StreamMultiplexer`."""

    def __init__(self, mux: StreamMultiplexer):
        self.mux = mux

    # -- fleet control ------------------------------------------------------

    def pause(self) -> None:
        self.mux.pause()

    def resume(self) -> None:
        self.mux.resume()

    @property
    def paused(self) -> bool:
        return self.mux.paused

    def step(self, n_ticks: int = 1) -> Dict[str, Any]:
        """Run exactly ``n_ticks`` ticks (pausing first if needed).

        Returns a progress summary for the stepped span.
        """
        if not self.mux.paused:
            self.mux.pause()
        chunks = 0
        executed = 0
        for _ in range(int(n_ticks)):
            if self.mux.done:
                break
            chunks += self.mux.tick()
            executed += 1
        return {
            "ticks": executed,
            "chunks": chunks,
            "now_s": self.mux.now_s,
            "done": self.mux.done,
        }

    # -- inspection ---------------------------------------------------------

    def fleet(self) -> Dict[str, Any]:
        """Fleet-level snapshot: clock, ledgers, pool pressure."""
        totals = self.mux.totals()
        return {
            "now_s": self.mux.now_s,
            "ticks": self.mux.ticks,
            "streams": self.mux.n_streams,
            "paused": self.mux.paused,
            "done": self.mux.done,
            "shed_fraction": self.mux.shed_fraction(),
            "pool": {
                "n_slabs": self.mux.pool.n_slabs,
                "in_use": self.mux.pool.in_use,
                "high_watermark": self.mux.pool.high_watermark,
            },
            "totals": totals,
        }

    def inspect(self, stream_id: str) -> Dict[str, Any]:
        """Everything observable about one stream, as a plain dict."""
        state = self.mux.state(stream_id)
        receiver = state.mux.receiver
        out: Dict[str, Any] = {
            "stream_id": stream_id,
            "priority": state.priority,
            "policy": state.queue.policy,
            "capacity": state.queue.capacity,
            "queued_chunks": len(state.queue),
            "queued_samples": state.queue.buffered_samples,
            "pending_samples": state.mux.pending_samples,
            "occupancy": state.queue.occupancy,
            "service_rate_sps": state.service_rate_sps,
            "budget_carry": state.carry,
            "exhausted": state.exhausted,
            "done": state.done,
            "counters": state.counters.as_dict(),
            "events": len(state.events),
            "group_key": list(state.mux.group_key),
        }
        sstft = state.mux.sstft
        out["receiver"] = {
            "kind": type(receiver).__name__,
            "n_samples": sstft.n_samples,
            "n_frames": sstft.n_frames,
        }
        synchronized = getattr(receiver, "synchronized", None)
        if synchronized is not None:
            out["receiver"]["synchronized"] = bool(synchronized)
        return out

    # -- poking -------------------------------------------------------------

    def poke(
        self,
        stream_id: str,
        samples: np.ndarray,
        now_s: Optional[float] = None,
    ) -> List:
        """Push samples through one stream's receiver, per-stream path.

        Bypasses the source, queue, budget, and the batched group
        kernel; the receiver sees the samples exactly as a lone
        :class:`~repro.stream.receiver.StreamingReceiver` would.  The
        stream's ledger is untouched (poked samples are outside the
        conservation invariant by design - they never entered the
        pool), but the receiver's envelope does advance, so poke on a
        live stream only when that is the point.

        Returns the receiver events the poke emitted.
        """
        state = self.mux.state(stream_id)
        if state.mux.pending_samples:
            raise RuntimeError(
                f"stream {stream_id!r} has staged tick deliveries; step "
                "the fleet (or drain it) before poking, or the poked "
                "samples would interleave mid-tick"
            )
        when = self.mux.now_s if now_s is None else float(now_s)
        state.expected_next += int(np.asarray(samples).size)
        return state.mux.receiver.push_samples(
            np.asarray(samples), when
        )

    def drain(self, stream_id: str) -> int:
        """Service one stream's whole queue now, ignoring its budget.

        Uses the normal delivery path (shed hook, gap fill, ledger)
        followed by a single-group demod tick, so conservation still
        holds afterwards.  Returns the number of chunks serviced.
        """
        from .dsp import tick_group

        state = self.mux.state(stream_id)
        n = 0
        while len(state.queue):
            chunk = state.queue.pop()
            self.mux._dispatch(state, chunk, pooled=True)
            n += 1
        if state.mux.pending_samples:
            for ms, events in tick_group([state.mux], self.mux.now_s):
                if events:
                    state.events.extend(events)
        return n
