"""Fleet construction: registered scenarios as multiplexer stream sources.

A fleet is "N receivers listening to M distinct targets": every
registered scenario that renders an IQ capture can serve as a stream
source, and many streams can replay the same capture with independent
arrival jitter - the realistic shape of a monitoring deployment, and
the cheap way to stand up 1k-10k streams without rendering 1k
captures.

:func:`stream_spec_from_scenario` runs a scenario's components just far
enough to obtain the capture and the receiver parameters, handling the
three resource layouts in the registry today:

* attack scenarios (``clockmod-fsk``, ``ichannels-throttle``):
  ``attack.capture`` + ``attack.band`` + ``attack.timing``;
* the streaming covert port (``stream-covert``): ``stream.batch`` +
  ``stream.link``;
* the keylogging port (``keylog``): ``keylog.capture`` + the
  experiment hanging off the components themselves.

:func:`build_multiplexer` then expands a mixed-fleet description into
one :class:`~repro.mux.scheduler.StreamMultiplexer`: one shared pool
sized to the sum of per-stream capacities, one receiver per stream
(covert decode or keystroke detection, per the source scenario), and
per-stream seeded jitter so no two streams' arrivals are phase-locked.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..scenario.dependency import resolve_order
from ..scenario.component import ScenarioContext
from ..scenario.registry import build_components, get_scenario
from ..stream.receiver import StreamingKeystrokeDetector, StreamingReceiver
from ..stream.source import CaptureChunkSource
from ..types import IQCapture
from .pool import ChunkPool
from .scheduler import ShedHook, StreamMultiplexer

#: Capture resource names, in the order the layouts are probed.
_CAPTURE_KEYS = ("attack.capture", "stream.batch", "keylog.capture")


@dataclass(frozen=True)
class StreamSpec:
    """Everything needed to stamp out receivers for one rendered target.

    ``kind`` selects the receiver: ``"covert"`` builds a
    :class:`StreamingReceiver` (bit decode), ``"keylog"`` a
    :class:`StreamingKeystrokeDetector`.
    """

    scenario: str
    seed: int
    kind: str
    capture: IQCapture
    vrm_frequency_hz: float
    expected_bit_period_s: Optional[float] = None
    decoder_config: Optional[object] = None
    frame_format: Optional[object] = None
    detector_config: Optional[object] = None
    tx_bits: Optional[np.ndarray] = None

    def make_receiver(self, online: bool = True):
        """A fresh receiver bound to this target's parameters.

        ``online=False`` builds the receiver in deferred mode (envelope
        accumulation only, detection at finalize - see
        :attr:`StreamingReceiver.online`), the fleet-scale default.
        """
        meta = CaptureChunkSource(self.capture, 1024).meta
        if self.kind == "keylog":
            kwargs = {}
            if self.detector_config is not None:
                kwargs["config"] = self.detector_config
            return StreamingKeystrokeDetector(
                meta, self.vrm_frequency_hz, online=online, **kwargs
            )
        kwargs = {}
        if self.decoder_config is not None:
            kwargs["config"] = self.decoder_config
        if self.frame_format is not None:
            kwargs["frame_format"] = self.frame_format
        return StreamingReceiver(
            meta,
            self.vrm_frequency_hz,
            expected_bit_period_s=self.expected_bit_period_s,
            online=online,
            **kwargs,
        )

    def make_source(
        self, chunk_size: int, jitter_rel: float, jitter_seed: int
    ) -> CaptureChunkSource:
        """A chunked replay of the capture with its own jitter stream."""
        return CaptureChunkSource(
            self.capture,
            chunk_size,
            jitter_rel=jitter_rel,
            rng=np.random.default_rng(jitter_seed),
        )


def stream_spec_from_scenario(
    name: str, seed: Optional[int] = None, quick: bool = True
) -> StreamSpec:
    """Render a registered scenario far enough to stream it.

    Components run in dependency order only until a capture resource
    appears (the downstream receiver/scorer components - the expensive
    part of most scenarios - never run); teardown still covers every
    component whose setup ran.
    """
    info = get_scenario(name)
    if seed is None:
        seed = info.spec.default_seed
    components = build_components(name, seed=seed, quick=quick)
    order = resolve_order(components)
    ctx = ScenarioContext(name, seed=seed, quick=quick)
    entered = []
    try:
        for component in order:
            component.setup(ctx)
            entered.append(component)
        for component in order:
            component.run(ctx)
            if any(ctx.has(key) for key in _CAPTURE_KEYS):
                break
    finally:
        for component in reversed(entered):
            component.teardown(ctx)
    return _spec_from_resources(name, int(seed), ctx, components)


def _spec_from_resources(
    name: str, seed: int, ctx: ScenarioContext, components
) -> StreamSpec:
    if ctx.has("attack.capture"):
        band = ctx.get("attack.band")
        timing = ctx.get("attack.timing") if ctx.has("attack.timing") else {}
        tx_bits = ctx.get("attack.bits") if ctx.has("attack.bits") else None
        return StreamSpec(
            scenario=name,
            seed=seed,
            kind="covert",
            capture=ctx.get("attack.capture"),
            vrm_frequency_hz=float(band["vrm_frequency_hz"]),
            expected_bit_period_s=timing.get("bit_period_s"),
            tx_bits=tx_bits,
        )
    if ctx.has("stream.batch"):
        link = ctx.get("stream.link")
        batch = ctx.get("stream.batch")
        bit_period = link.transmitter(
            np.random.default_rng(link.seed)
        ).nominal_bit_duration_s()
        return StreamSpec(
            scenario=name,
            seed=seed,
            kind="covert",
            capture=batch.capture,
            vrm_frequency_hz=float(link.vrm_frequency_hz),
            expected_bit_period_s=bit_period,
            decoder_config=link.decoder_config,
            frame_format=link.frame_format,
            tx_bits=np.asarray(batch.tx_bits),
        )
    if ctx.has("keylog.capture"):
        experiment = next(
            component.experiment
            for component in components
            if hasattr(component, "experiment")
        )
        return StreamSpec(
            scenario=name,
            seed=seed,
            kind="keylog",
            capture=ctx.get("keylog.capture"),
            vrm_frequency_hz=(
                experiment.machine.vrm_frequency_hz
                / experiment.profile.total_freq_divisor
            ),
            detector_config=experiment.detector_config,
        )
    raise ValueError(
        f"scenario {name!r} produced none of {_CAPTURE_KEYS}; it cannot "
        "be streamed"
    )


@dataclass(frozen=True)
class FleetStreamSpec:
    """One homogeneous slice of a mixed fleet."""

    scenario: str
    count: int = 1
    seed: Optional[int] = None  # scenario default when None
    priority: int = 0
    #: None sizes the queue to hold two tick batches (drop-free when
    #: service keeps up); an explicit value is taken verbatim.
    capacity: Optional[int] = None
    policy: str = "drop-oldest"
    service_rate_factor: Optional[float] = None  # x capture sample rate
    jitter_rel: float = 0.05
    #: Replay only the first ``duration_s`` seconds of the capture
    #: (None = all of it).  Capacity benchmarks use this to hold
    #: per-stream work constant while scaling the stream count.
    duration_s: Optional[float] = None
    #: Per-chunk online detection (provisional events).  Off by
    #: default: at fleet scale the per-chunk peak scan is the
    #: bottleneck and finalised decodes are identical either way; turn
    #: it on for the streams you actually watch live.
    online: bool = False


def build_multiplexer(
    fleet: Sequence[FleetStreamSpec],
    *,
    chunk_size: int = 512,
    tick_chunks: int = 16,
    tick_s: Optional[float] = None,
    quick: bool = True,
    shed_hook: Optional[ShedHook] = None,
    jitter_seed: int = 1000,
) -> Tuple[StreamMultiplexer, Dict[str, StreamSpec]]:
    """Expand a mixed-fleet description into a ready multiplexer.

    Each distinct ``(scenario, seed)`` pair is rendered once and its
    capture shared (read-only) by every stream of that slice.  Returns
    the multiplexer and a mapping from stream id to the target spec it
    replays (for golden-reference checks and digesting).
    """
    if not fleet:
        raise ValueError("fleet cannot be empty")
    specs: Dict[Tuple[str, Optional[int]], StreamSpec] = {}
    for slice_ in fleet:
        key = (slice_.scenario, slice_.seed)
        if key not in specs:
            specs[key] = stream_spec_from_scenario(
                slice_.scenario, seed=slice_.seed, quick=quick
            )
    if tick_s is None:
        min_fs = min(spec.capture.sample_rate for spec in specs.values())
        tick_s = tick_chunks * chunk_size / min_fs

    def _capacity(slice_: FleetStreamSpec) -> int:
        if slice_.capacity is not None:
            return slice_.capacity
        return 2 * tick_chunks

    n_slabs = max(sum(_capacity(s) * s.count for s in fleet), 1)
    pool = ChunkPool(n_slabs, chunk_size)
    mux = StreamMultiplexer(pool, tick_s=tick_s, shed_hook=shed_hook)
    by_stream: Dict[str, StreamSpec] = {}
    index = 0
    for slice_ in fleet:
        spec = specs[(slice_.scenario, slice_.seed)]
        if slice_.duration_s is not None:
            spec = truncate_spec(spec, slice_.duration_s)
        for _ in range(slice_.count):
            stream_id = f"{slice_.scenario}/{index:05d}"
            source = spec.make_source(
                chunk_size, slice_.jitter_rel, jitter_seed + index
            )
            rate = None
            if slice_.service_rate_factor is not None:
                rate = spec.capture.sample_rate * slice_.service_rate_factor
            mux.add_stream(
                stream_id,
                source,
                spec.make_receiver(online=slice_.online),
                capacity=_capacity(slice_),
                policy=slice_.policy,
                priority=slice_.priority,
                service_rate_sps=rate,
            )
            by_stream[stream_id] = spec
            index += 1
    return mux, by_stream


def truncate_spec(spec: StreamSpec, duration_s: float) -> StreamSpec:
    """The same target, replaying only the capture's first seconds."""
    capture = spec.capture
    n = min(int(duration_s * capture.sample_rate), capture.samples.size)
    if n >= capture.samples.size:
        return spec
    from dataclasses import replace

    return replace(
        spec,
        capture=IQCapture(
            samples=capture.samples[:n],
            sample_rate=capture.sample_rate,
            center_frequency=capture.center_frequency,
        ),
    )


def bits_digest(bits) -> str:
    """Short sha256 of a bit vector (the repo's record-digest idiom)."""
    data = np.asarray(bits, dtype=np.uint8).tobytes()
    return hashlib.sha256(data).hexdigest()[:16]


def _receiver_digest(spec: StreamSpec, receiver) -> str:
    """Digest one finalised receiver: bits (covert) or events (keylog)."""
    if spec.kind == "keylog":
        detection = receiver.finalize()
        payload = np.array(
            [(e.start, e.end) for e in detection.events], dtype=float
        )
        return hashlib.sha256(payload.tobytes()).hexdigest()[:16]
    return bits_digest(receiver.finalize().bits)


def finalized_digests(
    mux: StreamMultiplexer, by_stream: Dict[str, StreamSpec]
) -> Dict[str, str]:
    """Finalize every stream and digest its decode.

    Covert streams digest the finalised bit vector; keylog streams
    digest the detected event boundaries.  On a drop-free fleet these
    digests are the acceptance surface: they must match a per-stream
    :class:`StreamingReceiver` replay of the same sources exactly.
    """
    return {
        stream_id: _receiver_digest(
            spec, mux.state(stream_id).mux.receiver
        )
        for stream_id, spec in by_stream.items()
    }


def golden_digest(spec: StreamSpec, chunk_size: int = 512) -> str:
    """The per-stream reference digest for one target.

    Replays the capture through a lone online receiver - the shipped
    pre-mux path, no pool, no batching.  Finalised decodes depend only
    on the accumulated envelope, never on arrival times, so one golden
    digest covers every jittered replay of the same capture.
    """
    receiver = spec.make_receiver(online=True)
    for chunk in spec.make_source(chunk_size, 0.0, 0):
        receiver.push_samples(chunk.samples, chunk.arrival_s)
    return _receiver_digest(spec, receiver)
