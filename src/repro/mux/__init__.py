"""Fleet-scale streaming multiplexer: 1k-10k receivers, one process.

Layers (each its own module, composable without the others):

* :mod:`.pool` - one preallocated slab arena shared by every stream's
  bounded queue, with exact per-stream drop accounting;
* :mod:`.dsp` - cross-stream batched demodulation: one windowed-FFT
  kernel call per STFT-config group per tick, bit-identical to the
  per-stream :class:`~repro.stream.receiver.StreamingReceiver` path;
* :mod:`.scheduler` - the deterministic tick engine: arrival-clocked
  ingest, priority round-robin service under per-stream sample
  budgets, chunk conservation as a checked invariant, and an asyncio
  wrapper for cooperative runs;
* :mod:`.interactive` - pause / step / inspect / poke for live fleets;
* :mod:`.fleet` - registered scenarios as stream sources and mixed
  fleets as one call.
"""

from .dsp import MuxStream, group_streams, tick_group
from .fleet import (
    FleetStreamSpec,
    StreamSpec,
    bits_digest,
    build_multiplexer,
    finalized_digests,
    stream_spec_from_scenario,
)
from .interactive import InteractiveMux
from .pool import ChunkPool, PooledChunk, StreamQueue
from .scheduler import MuxStreamState, StreamCounters, StreamMultiplexer

__all__ = [
    "ChunkPool",
    "FleetStreamSpec",
    "InteractiveMux",
    "MuxStream",
    "MuxStreamState",
    "PooledChunk",
    "StreamCounters",
    "StreamMultiplexer",
    "StreamQueue",
    "StreamSpec",
    "bits_digest",
    "build_multiplexer",
    "finalized_digests",
    "group_streams",
    "stream_spec_from_scenario",
    "tick_group",
]
