"""Fleet scheduler: deterministic ticks over 1k-10k pooled streams.

One :class:`StreamMultiplexer` drives the whole fleet from a single
thread.  Each **tick** advances a simulated wall clock by ``tick_s``
and runs three phases:

1. **ingest** - every source's chunks that have "arrived" by the tick
   clock are pushed into the stream's pooled queue
   (:class:`~repro.mux.pool.StreamQueue`); overflow follows the
   stream's policy and every eviction is accounted as a drop.
2. **service** - streams are visited in ``(priority, stream_id)``
   order, round-robin one chunk per stream per pass, each stream
   limited by its sample-rate budget (``service_rate_sps * tick_s``
   with debt-only carry: overdraft up to one chunk is allowed so a
   slow budget cannot deadlock a stream, and the overdraft is repaid
   before the next chunk).  An optional ``shed_hook`` may veto any
   popped chunk - it is then *shed* (accounted, never demodulated).
   Popped samples are copied out of the arena before the slab is
   released, so slab recycling can never alias a later push.  Missing
   stream intervals (dropped or shed chunks) are zero-filled so the
   receiver's time base never shifts; gap zeros are budget-free.
3. **demod** - serviced samples are grouped by STFT configuration and
   run through one batched kernel call per group
   (:func:`repro.mux.dsp.tick_group`), bit-identical to per-stream
   demodulation.

Everything is synchronous and seeded, so a tick sequence is exactly
reproducible; :meth:`StreamMultiplexer.run_async` wraps the same
``tick`` in an asyncio loop with a pause gate for interactive use
(:mod:`repro.mux.interactive`), yielding to the event loop between
ticks.

Conservation is a hard invariant, checked by
:meth:`StreamMultiplexer.check_conservation`: for every stream,

``produced == delivered + shed + dropped + buffered``   (in chunks
and in samples), where *produced* counts chunks offered by the
source, *dropped* counts pool/queue evictions, *shed* counts
scheduler-level rejections, and *buffered* is what still sits in the
queue.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from ..obs.metrics import (
    tap_mux_drop,
    tap_mux_shed,
    tap_mux_summary,
    tap_mux_tick,
)
from ..obs.trace import span, trace_event
from ..stream.source import Chunk, ChunkSource
from .dsp import MuxStream, group_streams, tick_group
from .pool import ChunkPool, PooledChunk, StreamQueue

#: ``shed_hook(stream_id, chunk) -> True`` to shed the chunk instead of
#: demodulating it.
ShedHook = Callable[[str, PooledChunk], bool]


@dataclass
class StreamCounters:
    """Per-stream chunk/sample ledger (the conservation operands)."""

    produced_chunks: int = 0
    produced_samples: int = 0
    delivered_chunks: int = 0
    delivered_samples: int = 0
    shed_chunks: int = 0
    shed_samples: int = 0
    dropped_chunks: int = 0
    dropped_samples: int = 0
    gap_samples: int = 0  # synthetic zeros, outside conservation

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class MuxStreamState:
    """Everything the scheduler tracks for one registered stream."""

    stream_id: str
    priority: int
    queue: StreamQueue
    mux: MuxStream
    chunks: Iterator[Chunk]
    service_rate_sps: Optional[float]
    next_chunk: Optional[Chunk] = None
    exhausted: bool = False
    carry: float = 0.0  # debt-only budget carry (<= 0)
    expected_next: int = 0  # next start_sample the receiver should see
    counters: StreamCounters = field(default_factory=StreamCounters)
    events: List = field(default_factory=list)

    @property
    def done(self) -> bool:
        """Source drained, queue empty, nothing pending in the adapter."""
        return (
            self.exhausted
            and self.next_chunk is None
            and len(self.queue) == 0
            and self.mux.pending_samples == 0
        )


class StreamMultiplexer:
    """Single-process multiplexer for a fleet of streaming receivers.

    Parameters
    ----------
    pool:
        The shared slab arena every stream queue draws from.
    tick_s:
        Simulated seconds per tick.  Ingest admits chunks whose
        ``arrival_s`` falls at or before the tick clock, so one tick
        typically services several chunks per stream - the batching
        lever that amortises per-stream Python overhead.
    shed_hook:
        Optional veto called on every popped chunk (see module doc).
    """

    def __init__(
        self,
        pool: ChunkPool,
        tick_s: float,
        shed_hook: Optional[ShedHook] = None,
    ):
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self.pool = pool
        self.tick_s = float(tick_s)
        self.shed_hook = shed_hook
        self.now_s = 0.0
        self.ticks = 0
        self._streams: Dict[str, MuxStreamState] = {}
        self._order: List[MuxStreamState] = []  # (priority, id) sorted
        self._paused = False
        self._gate: Optional[asyncio.Event] = None
        self._tick_chunks = 0
        self._tick_samples = 0
        self._tick_touched: set = set()

    # -- registration -------------------------------------------------------

    def add_stream(
        self,
        stream_id: str,
        source: ChunkSource,
        receiver,
        *,
        capacity: int = 8,
        policy: str = "drop-oldest",
        priority: int = 0,
        service_rate_sps: Optional[float] = None,
    ) -> MuxStreamState:
        """Register one stream: source, pooled queue, receiver adapter.

        ``priority`` orders service (lower value is served first);
        ``service_rate_sps`` caps how many samples per simulated second
        the scheduler demodulates for this stream (None = unlimited).
        """
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} already registered")
        queue = self.pool.register(stream_id, capacity, policy)
        state = MuxStreamState(
            stream_id=stream_id,
            priority=int(priority),
            queue=queue,
            mux=MuxStream(stream_id, receiver),
            chunks=iter(source),
            service_rate_sps=service_rate_sps,
        )
        self._streams[stream_id] = state
        self._order.append(state)
        self._order.sort(key=lambda s: (s.priority, s.stream_id))
        return state

    @property
    def stream_ids(self) -> List[str]:
        return [s.stream_id for s in self._order]

    def state(self, stream_id: str) -> MuxStreamState:
        return self._streams[stream_id]

    @property
    def n_streams(self) -> int:
        return len(self._streams)

    @property
    def done(self) -> bool:
        return all(s.done for s in self._order)

    # -- tick engine --------------------------------------------------------

    def tick(self) -> int:
        """Advance the clock one tick; returns chunks demodulated."""
        self.now_s += self.tick_s
        self.ticks += 1
        self._tick_chunks = 0
        self._tick_samples = 0
        self._tick_touched = set()
        with span("mux.tick", attrs={"tick": self.ticks}):
            self._ingest()
            self._service()
            self._demod()
        tap_mux_tick(
            len(self._tick_touched), self._tick_chunks, self._tick_samples
        )
        return self._tick_chunks

    def run(self, max_ticks: Optional[int] = None) -> int:
        """Tick until every stream is done; returns ticks executed."""
        executed = 0
        with span("mux.run", attrs={"streams": self.n_streams}):
            while not self.done:
                if max_ticks is not None and executed >= max_ticks:
                    break
                self.tick()
                executed += 1
        self._summarise()
        return executed

    async def run_async(self, max_ticks: Optional[int] = None) -> int:
        """Asyncio variant of :meth:`run` honouring the pause gate.

        Yields to the event loop between ticks so interactive control
        (pause/step/inspect) interleaves with fleet progress; the tick
        itself stays synchronous, so pausing can never observe a
        half-serviced tick.
        """
        self._gate = asyncio.Event()
        if not self._paused:
            self._gate.set()
        executed = 0
        with span("mux.run", attrs={"streams": self.n_streams}):
            while not self.done:
                if max_ticks is not None and executed >= max_ticks:
                    break
                await self._gate.wait()
                self.tick()
                executed += 1
                await asyncio.sleep(0)
        self._summarise()
        return executed

    def pause(self) -> None:
        """Stop :meth:`run_async` at the next tick boundary."""
        self._paused = True
        if self._gate is not None:
            self._gate.clear()
        trace_event("mux.pause", tick=self.ticks)

    def resume(self) -> None:
        self._paused = False
        if self._gate is not None:
            self._gate.set()
        trace_event("mux.resume", tick=self.ticks)

    @property
    def paused(self) -> bool:
        return self._paused

    # -- phases -------------------------------------------------------------

    def _ingest(self) -> None:
        """Admit every chunk that has arrived by the tick clock."""
        for state in self._order:
            while True:
                if state.next_chunk is None:
                    state.next_chunk = next(state.chunks, None)
                    if state.next_chunk is None:
                        state.exhausted = True
                        break
                chunk = state.next_chunk
                if chunk.arrival_s > self.now_s:
                    break
                if state.queue.policy == "block" and (
                    state.queue.full
                    or self.pool.in_use >= self.pool.n_slabs
                ):
                    # Backpressure: a block-policy stream holds the
                    # arrived chunk at the source until the scheduler
                    # drains its queue, rather than raising mid-run.
                    break
                state.next_chunk = None
                state.counters.produced_chunks += 1
                state.counters.produced_samples += chunk.size
                if (
                    state.service_rate_sps is None
                    and state.queue.capacity > 0
                    and len(state.queue) == 0
                ):
                    # Zero-queue fast path: the stream has no service
                    # cap and nothing buffered, so this chunk would be
                    # popped unmodified later this same tick - dispatch
                    # it straight to the demod stage and skip the
                    # slab round-trip.  Accounting is identical
                    # (produced and delivered both count; buffered is
                    # zero either way), and the samples view aliases
                    # the immutable source capture, not the arena.
                    self._dispatch(state, chunk, pooled=False)
                    continue
                dropped = state.queue.push(chunk)
                if dropped:
                    n = len(dropped)
                    samples = sum(d.size for d in dropped)
                    state.counters.dropped_chunks += n
                    state.counters.dropped_samples += samples
                    tap_mux_drop(n, samples)

    def _service(self) -> None:
        """Drain queues under per-stream budgets, round-robin by priority."""
        queued = [s for s in self._order if len(s.queue)]
        if not queued:
            return
        budgets: Dict[str, float] = {}
        for state in queued:
            if state.service_rate_sps is None:
                budgets[state.stream_id] = float("inf")
            else:
                budgets[state.stream_id] = (
                    state.service_rate_sps * self.tick_s + state.carry
                )
        progress = True
        while progress:
            progress = False
            for state in queued:
                budget = budgets[state.stream_id]
                if budget <= 0 or len(state.queue) == 0:
                    continue
                chunk = state.queue.pop()
                budgets[state.stream_id] = budget - chunk.size
                progress = True
                self._dispatch(state, chunk, pooled=True)
        for state in queued:
            budget = budgets[state.stream_id]
            if budget == float("inf"):
                state.carry = 0.0
            else:
                # Debt-only carry: overdraft is repaid next tick, but
                # unused budget does not accumulate into a burst.
                state.carry = min(budget, 0.0)

    def _dispatch(self, state: MuxStreamState, chunk, pooled: bool) -> None:
        """Shed-check, gap-fill, and hand one chunk to the adapter.

        ``chunk`` is a :class:`~repro.mux.pool.PooledChunk` off the
        stream's queue (``pooled=True``) or a source
        :class:`~repro.stream.source.Chunk` on the fast path - both
        carry ``size`` / ``start_sample`` / ``end_sample`` / ``samples``.
        """
        if self.shed_hook is not None and self.shed_hook(
            state.stream_id, chunk
        ):
            state.counters.shed_chunks += 1
            state.counters.shed_samples += chunk.size
            tap_mux_shed(1, chunk.size)
            if pooled:
                self.pool.release(chunk)
            return
        if chunk.start_sample > state.expected_next:
            gap = chunk.start_sample - state.expected_next
            state.mux.buffer(np.zeros(gap, dtype=np.complex64))
            state.counters.gap_samples += gap
        if pooled:
            # Copy out of the arena before releasing: once the slab is
            # back on the free list a later push may overwrite it.
            state.mux.buffer(np.array(chunk.samples))
            self.pool.release(chunk)
        else:
            # Fast-path samples alias the immutable source capture.
            state.mux.buffer(chunk.samples)
        state.counters.delivered_chunks += 1
        state.counters.delivered_samples += chunk.size
        state.expected_next = max(state.expected_next, chunk.end_sample)
        self._tick_chunks += 1
        self._tick_samples += chunk.size
        self._tick_touched.add(state.stream_id)

    def _demod(self) -> None:
        """One batched kernel call per STFT-config group."""
        for members in group_streams(
            [s.mux for s in self._order if s.mux.pending_samples]
        ).values():
            for ms, events in tick_group(members, self.now_s):
                if events:
                    self._streams[ms.stream_id].events.extend(events)

    # -- accounting ---------------------------------------------------------

    def check_conservation(self) -> None:
        """Assert the chunk/sample ledger balances for every stream."""
        for state in self._order:
            c = state.counters
            buffered_chunks = len(state.queue)
            buffered_samples = state.queue.buffered_samples
            ok_chunks = c.produced_chunks == (
                c.delivered_chunks
                + c.shed_chunks
                + c.dropped_chunks
                + buffered_chunks
            )
            ok_samples = c.produced_samples == (
                c.delivered_samples
                + c.shed_samples
                + c.dropped_samples
                + buffered_samples
            )
            if not (ok_chunks and ok_samples):
                raise AssertionError(
                    f"conservation violated for {state.stream_id!r}: "
                    f"{c.as_dict()}, buffered={buffered_chunks} chunks / "
                    f"{buffered_samples} samples"
                )

    def totals(self) -> Dict[str, int]:
        """Fleet-wide ledger sums plus event count."""
        keys = StreamCounters().as_dict().keys()
        out = {key: 0 for key in keys}
        events = 0
        for state in self._order:
            for key, value in state.counters.as_dict().items():
                out[key] += value
            events += len(state.events)
        out["events"] = events
        return out

    def shed_fraction(self) -> float:
        """(shed + dropped) / produced, in chunks, fleet-wide."""
        totals = self.totals()
        produced = totals["produced_chunks"]
        if produced == 0:
            return 0.0
        return (totals["shed_chunks"] + totals["dropped_chunks"]) / produced

    def _summarise(self) -> None:
        totals = self.totals()
        tap_mux_summary(
            self.n_streams,
            totals["events"],
            self.shed_fraction(),
            self.pool.high_watermark,
        )
