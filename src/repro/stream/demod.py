"""Stateful, chunk-incremental DSP: the streaming half of the receiver.

The batch receiver computes one STFT over the whole capture
(:func:`repro.dsp.stft.stft`) and one envelope from it (paper Eq. 1).
Here the same quantities are produced chunk by chunk with explicit
carry-over state:

* :class:`StreamingSTFT` buffers the window tail between chunks and
  emits exactly the frames the batch call would, in the same global
  positions (the framing contract lives in
  :func:`repro.dsp.stft.frame_count`).  Feeding the same samples in any
  chunking - including one sample at a time - yields bit-identical
  magnitudes, because each frame is the same float vector through the
  same FFT.
* :class:`StreamingBandEnergy` reduces those frames to the Eq. 1
  envelope ``Y[n]`` over a fixed bin set, reusing the batch bin
  selection (:func:`repro.core.acquisition.harmonic_bins`) via a
  metadata stub so streaming and batch can never disagree about S.
* :class:`StreamingConvolver` carries FIR state across chunk
  boundaries, matching ``np.convolve(x, k, mode="same")`` over the
  concatenated stream; the receiver uses it with the edge kernel from
  :mod:`repro.dsp.filters` for online bit-start detection.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dsp.stft import Spectrogram, frame_count, frame_times
from ..dsp.windows import get_window
from .source import StreamMeta


class StreamingSTFT:
    """Chunk-incremental STFT, frame-identical to the batch :func:`stft`.

    Parameters mirror the batch call; ``complex_input`` fixes the
    frequency axis up front (the batch path infers it from the array
    dtype, which a stream cannot do before the first chunk).
    """

    def __init__(
        self,
        sample_rate: float,
        fft_size: int,
        hop: int,
        window: str = "hann",
        complex_input: bool = True,
    ):
        if fft_size < 2:
            raise ValueError("fft_size must be >= 2")
        if hop < 1:
            raise ValueError("hop must be >= 1")
        self.sample_rate = float(sample_rate)
        self.fft_size = int(fft_size)
        self.hop = int(hop)
        self.window = window
        self.complex_input = bool(complex_input)
        self._win = get_window(window, fft_size)
        if complex_input:
            self.frequencies = np.fft.fftshift(
                np.fft.fftfreq(fft_size, d=1.0 / sample_rate)
            )
        else:
            self.frequencies = np.fft.rfftfreq(fft_size, d=1.0 / sample_rate)
        dtype = np.complex128 if complex_input else np.float64
        # Preallocated growable window buffer: valid samples live at
        # ``_storage[_off : _off + _len]``.  Appends write in place,
        # consumption advances ``_off``, and the array is compacted /
        # doubled only when an append would not fit - so steady-state
        # chunk pushes reallocate nothing (see :meth:`reserve`).
        self._storage = np.empty(max(fft_size, 1), dtype=dtype)
        self._off = 0  # storage index of the first valid sample
        self._len = 0  # valid sample count
        self._buf_start = 0  # global index of the first valid sample
        self._received = 0  # total samples pushed
        self._emitted = 0  # complete frames emitted

    @property
    def frame_rate(self) -> float:
        return self.sample_rate / self.hop

    @property
    def n_frames(self) -> int:
        """Frames emitted so far."""
        return self._emitted

    @property
    def n_samples(self) -> int:
        """Samples consumed so far."""
        return self._received

    @property
    def buffer_capacity(self) -> int:
        """Current window-buffer capacity in samples."""
        return int(self._storage.size)

    def reserve(self, n_samples: int) -> None:
        """Grow the window buffer to hold ``n_samples`` without realloc.

        The stream runner calls this with the source's chunk size (plus
        the window tail) once the adaptive executor settles on
        batched-serial chunk service, so per-chunk pushes reuse one
        buffer instead of reallocating - same floats, fewer copies.
        """
        need = int(n_samples)
        if need <= self._storage.size:
            return
        grown = np.empty(max(need, 2 * self._storage.size), self._storage.dtype)
        grown[: self._len] = self._storage[self._off : self._off + self._len]
        self._storage = grown
        self._off = 0

    def _append(self, samples: np.ndarray) -> None:
        """Stage a chunk into the window buffer, compacting/growing once."""
        need = self._len + samples.size
        if self._off + need > self._storage.size:
            if need <= self._storage.size:
                # Shift the live tail to the front; no allocation.
                self._storage[: self._len] = self._storage[
                    self._off : self._off + self._len
                ]
            else:
                self.reserve(need)
            self._off = 0
        lo = self._off + self._len
        self._storage[lo : lo + samples.size] = samples.astype(
            self._storage.dtype
        )
        self._len = need

    def spectrogram_stub(self) -> Spectrogram:
        """A frame-less spectrogram carrying the axes.

        Lets streaming code reuse batch bin-selection helpers
        (``nearest_bin`` / ``band_indices``) before any frame exists.
        """
        return Spectrogram(
            magnitudes=np.empty((0, self.frequencies.size)),
            times=np.empty(0),
            frequencies=self.frequencies,
            hop=self.hop,
            fft_size=self.fft_size,
            sample_rate=self.sample_rate,
        )

    @property
    def window_values(self) -> np.ndarray:
        """The window coefficients applied to each frame."""
        return self._win

    def stage(self, samples: np.ndarray) -> Tuple[np.ndarray, int]:
        """Append a chunk and expose the newly completed *raw* frames.

        Returns ``(frames, first_frame_index)`` where ``frames`` is a
        strided view of shape ``(n_new, fft_size)`` over the internal
        buffer - no window applied, no FFT taken.  The view is valid
        until the next :meth:`stage`/:meth:`push` on this instance
        (:meth:`complete` only advances offsets, it never moves data).

        The split exists for the fleet multiplexer: many streams with
        the same STFT configuration stage their frames, the caller
        stacks the views row-wise and runs **one** windowed FFT over
        the stack, then calls :meth:`complete` per stream.  NumPy's
        pocketfft transforms each row of a 2D FFT independently, so the
        stacked call is bit-for-bit the per-stream :meth:`push`.
        """
        samples = np.asarray(samples)
        if samples.size:
            self._append(samples)
            self._received += samples.size
        # The next frame starts at the global sample index hop * emitted;
        # count how many complete frames the buffer now covers past it.
        next_start = self._emitted * self.hop
        available = self._received - next_start
        n_new = frame_count(available, self.fft_size, self.hop) if available > 0 else 0
        if n_new == 0:
            return (
                np.empty((0, self.fft_size), dtype=self._storage.dtype),
                self._emitted,
            )
        local = self._off + (next_start - self._buf_start)
        frames = sliding_window_view(
            self._storage[local : self._off + self._len], self.fft_size
        )[:: self.hop][:n_new]
        return frames, self._emitted

    def complete(self, n_new: int) -> None:
        """Mark ``n_new`` staged frames emitted and release their samples."""
        if n_new <= 0:
            return
        self._emitted += n_new
        keep_from = min(self._emitted * self.hop, self._received)
        if keep_from > self._buf_start:
            # Consume in place: advance the offset, never reallocate.
            delta = keep_from - self._buf_start
            self._off += delta
            self._len -= delta
            self._buf_start = keep_from

    def push(self, samples: np.ndarray) -> Tuple[np.ndarray, int]:
        """Feed one chunk; returns ``(new_magnitudes, first_frame_index)``.

        ``new_magnitudes`` has shape ``(n_new, n_bins)`` (possibly zero
        rows when the chunk does not complete a frame);
        ``first_frame_index`` is the global index of its first row.
        """
        frames, first = self.stage(samples)
        n_new = frames.shape[0]
        if n_new == 0:
            return np.empty((0, self.frequencies.size)), first
        # Identical arithmetic to the batch stft(): window, FFT, shift,
        # magnitude - on identical float rows, so the outputs match bit
        # for bit regardless of how the stream was chunked.
        if self.complex_input:
            spectra = np.fft.fft(frames * self._win, axis=1)
            spectra = np.fft.fftshift(spectra, axes=1)
        else:
            spectra = np.fft.rfft(frames * self._win, axis=1)
        mags = np.abs(spectra)
        self.complete(n_new)
        return mags, first

    def times(self, first_frame: int, n_frames: int) -> np.ndarray:
        """Centre times for a run of frames (same floats as the batch)."""
        return frame_times(
            first_frame, n_frames, self.fft_size, self.hop, self.sample_rate
        )


class StreamingBandEnergy:
    """Eq. 1 envelope ``Y[n]`` over a fixed bin set, chunk by chunk."""

    def __init__(self, sstft: StreamingSTFT, bins: np.ndarray):
        bins = np.asarray(bins, dtype=int)
        if bins.size == 0:
            raise ValueError("need at least one bin in S")
        self.sstft = sstft
        self.bins = bins

    @property
    def frame_rate(self) -> float:
        return self.sstft.frame_rate

    @property
    def n_frames(self) -> int:
        return self.sstft.n_frames

    def reserve(self, n_samples: int) -> None:
        """Pre-size the underlying STFT buffer (see :meth:`StreamingSTFT.reserve`)."""
        self.sstft.reserve(n_samples)

    def push(self, samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Feed one chunk; returns ``(y_new, times_new)``."""
        mags, first = self.sstft.push(samples)
        if mags.shape[0] == 0:
            return np.empty(0), np.empty(0)
        y = mags[:, self.bins].sum(axis=1)
        return y, self.sstft.times(first, y.size)


def streaming_envelope(
    meta: StreamMeta, vrm_frequency_hz: float, config
) -> StreamingBandEnergy:
    """Build the covert receiver's incremental Eq. 1 envelope.

    ``config`` is a :class:`repro.core.acquisition.AcquisitionConfig`;
    bin selection goes through the *batch* :func:`harmonic_bins` so the
    streaming receiver can never pick a different S than the batch one.
    """
    from ..core.acquisition import harmonic_bins

    if vrm_frequency_hz <= 0:
        raise ValueError("VRM frequency must be positive")
    sstft = StreamingSTFT(
        meta.sample_rate,
        fft_size=config.fft_size,
        hop=config.hop,
        window=config.window,
        complex_input=True,
    )
    bins = harmonic_bins(
        sstft.spectrogram_stub(),
        meta.as_capture_stub(),
        vrm_frequency_hz,
        config,
    )
    return StreamingBandEnergy(sstft, bins)


class StreamingConvolver:
    """Incremental ``np.convolve(x, kernel, mode="same")``.

    Carries the kernel-length input tail across pushes; outputs that
    still depend on future samples stay pending until :meth:`push`
    receives them or :meth:`finalize` zero-pads the right edge, exactly
    like the batch call's implicit edge handling.

    Emits exactly one output per input.  This matches the batch call
    whenever the stream is at least as long as the kernel; for shorter
    streams ``np.convolve(..., "same")`` pads its output out to the
    *kernel* length, a degenerate case the receiver never hits (the
    edge kernel is a fraction of one symbol period).
    """

    def __init__(self, kernel: np.ndarray):
        self.kernel = np.asarray(kernel, dtype=float)
        if self.kernel.size < 1:
            raise ValueError("kernel cannot be empty")
        self._shift = (self.kernel.size - 1) // 2
        self._tail = np.empty(0)
        self._fbuf = np.empty(0)  # pending full-conv values
        self._fstart = 0  # global full-conv index of _fbuf[0]
        self._n = 0  # inputs consumed
        self._emitted = 0  # same-mode outputs emitted
        self._finalized = False

    def push(self, x: np.ndarray) -> np.ndarray:
        """Feed inputs; returns the newly finalised same-mode outputs."""
        if self._finalized:
            raise RuntimeError("convolver already finalised")
        x = np.asarray(x, dtype=float)
        if x.size == 0:
            return np.empty(0)
        work = np.concatenate([self._tail, x])
        full = np.convolve(work, self.kernel, mode="full")
        # Full-conv outputs for the new inputs: local indices
        # [len(tail), len(tail) + len(x)) map to global [n, n + len(x)).
        t = self._tail.size
        self._fbuf = np.concatenate([self._fbuf, full[t : t + x.size]])
        self._n += x.size
        keep = self.kernel.size - 1
        # Clamp at zero: during startup the whole history is shorter
        # than the kernel, and a negative start would silently slice
        # from the wrong end.
        self._tail = work[max(work.size - keep, 0) :] if keep else np.empty(0)
        return self._drain(self._n - self._shift)

    def finalize(self) -> np.ndarray:
        """Zero-pad the right edge and return the trailing outputs."""
        if self._finalized:
            return np.empty(0)
        self._finalized = True
        if self._n == 0:
            return np.empty(0)
        if self._shift:
            # The last `shift` full-conv values involve only the tail
            # (future samples are zeros, as in the batch edge).
            full = np.convolve(self._tail, self.kernel, mode="full")
            self._fbuf = np.concatenate([self._fbuf, full[self._tail.size :]])
        return self._drain(self._n)

    def _drain(self, emit_until: int) -> np.ndarray:
        """Emit same-mode outputs ``[_emitted, emit_until)``."""
        if emit_until <= self._emitted:
            return np.empty(0)
        lo = self._emitted + self._shift - self._fstart
        hi = emit_until + self._shift - self._fstart
        out = self._fbuf[lo:hi]
        self._emitted = emit_until
        self._fbuf = self._fbuf[hi:]
        self._fstart = self._emitted + self._shift
        return out
