"""Chunked IQ sources: where a streaming receiver's samples come from.

A real attacker's SDR delivers IQ in fixed-size transfer buffers whose
arrival times wobble with USB scheduling; the batch pipeline instead
hands the receiver one monolithic :class:`~repro.types.IQCapture`.  This
module bridges the two: a :class:`ChunkSource` is any iterable of
:class:`Chunk` objects carrying samples, their global position in the
stream, and a *simulated* arrival clock, plus the stream metadata
(:class:`StreamMeta`) the receiver needs before the first sample lands.

:class:`CaptureChunkSource` replays an existing capture - recorded, or
produced by the simulated analog chain - in configurable chunk sizes
with seeded arrival jitter, so every streaming run is deterministic and
directly comparable against the batch decode of the same capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..types import IQCapture


@dataclass(frozen=True)
class StreamMeta:
    """What the receiver must know before the first chunk arrives."""

    sample_rate: float
    center_frequency: float

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample rate must be positive")

    def as_capture_stub(self) -> IQCapture:
        """An empty capture carrying this metadata.

        Lets streaming code reuse batch helpers that only read a
        capture's rates (bin selection, baseband offsets) without ever
        materialising the sample array.
        """
        return IQCapture(
            samples=np.empty(0, dtype=np.complex64),
            sample_rate=self.sample_rate,
            center_frequency=self.center_frequency,
        )


@dataclass(frozen=True)
class Chunk:
    """One delivery of IQ samples.

    Attributes
    ----------
    samples:
        Complex IQ samples of this chunk.
    start_sample:
        Global index of ``samples[0]`` in the stream.
    index:
        Sequence number of the chunk (0-based, gap-free at the source;
        the ring buffer may drop chunks downstream).
    arrival_s:
        Simulated arrival time: when the last sample of the chunk became
        available to the receiver.  Non-decreasing across chunks.
    """

    samples: np.ndarray
    start_sample: int
    index: int
    arrival_s: float

    @property
    def size(self) -> int:
        return int(self.samples.size)

    @property
    def end_sample(self) -> int:
        return self.start_sample + self.size


class ChunkSource:
    """Protocol for chunked sample producers.

    Subclasses provide :attr:`meta` and iterate :class:`Chunk` objects in
    stream order.  Kept as a plain base class (not ``typing.Protocol``)
    so Python 3.9 stays supported.
    """

    meta: StreamMeta

    def __iter__(self) -> Iterator[Chunk]:  # pragma: no cover - interface
        raise NotImplementedError


class CaptureChunkSource(ChunkSource):
    """Replay an :class:`~repro.types.IQCapture` as a chunk stream.

    Parameters
    ----------
    capture:
        The capture to replay.
    chunk_size:
        Samples per chunk (the final chunk may be shorter).
    jitter_rel:
        Arrival jitter as a fraction of one chunk's nominal duration.
        Each chunk's arrival is its real-time completion plus a seeded
        uniform delay in ``[0, jitter_rel * chunk_duration]``; arrivals
        stay monotone because delays only push forward.
    rng:
        Jitter random stream (default: fresh, seed 0).  Kept separate
        from the simulation chain's RNG so replaying a capture never
        perturbs the physics that produced it.
    """

    def __init__(
        self,
        capture: IQCapture,
        chunk_size: int,
        jitter_rel: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if jitter_rel < 0:
            raise ValueError("jitter_rel cannot be negative")
        self.capture = capture
        self.chunk_size = int(chunk_size)
        self.jitter_rel = float(jitter_rel)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.meta = StreamMeta(
            sample_rate=capture.sample_rate,
            center_frequency=capture.center_frequency,
        )

    @property
    def n_chunks(self) -> int:
        n = self.capture.samples.size
        return (n + self.chunk_size - 1) // self.chunk_size

    def __iter__(self) -> Iterator[Chunk]:
        samples = self.capture.samples
        fs = self.capture.sample_rate
        chunk_duration = self.chunk_size / fs
        for index in range(self.n_chunks):
            lo = index * self.chunk_size
            hi = min(lo + self.chunk_size, samples.size)
            nominal = hi / fs
            jitter = 0.0
            if self.jitter_rel > 0:
                jitter = float(
                    self._rng.uniform(0.0, self.jitter_rel * chunk_duration)
                )
            yield Chunk(
                samples=samples[lo:hi],
                start_sample=lo,
                index=index,
                arrival_s=nominal + jitter,
            )


def chain_chunk_source(
    machine,
    activity,
    scenario,
    profile,
    rng: np.random.Generator,
    chunk_size: int,
    jitter_rel: float = 0.0,
    jitter_rng: Optional[np.random.Generator] = None,
    **chain_kwargs,
) -> CaptureChunkSource:
    """Run the simulated analog chain and replay its capture chunked.

    Thin adapter over :func:`repro.chain.render_capture`; the chain RNG
    and the replay-jitter RNG are distinct so the emitted physics is
    identical to a batch run of the same arguments.
    """
    from ..chain import render_capture

    capture = render_capture(
        machine, activity, scenario, profile, rng, **chain_kwargs
    )
    return CaptureChunkSource(
        capture, chunk_size, jitter_rel=jitter_rel, rng=jitter_rng
    )
