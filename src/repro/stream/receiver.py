"""Online receivers: decode the emission as it arrives.

Two consumers share the chunk-push interface the runner drives
(``push_samples`` / ``push_gap`` / ``finalize``):

* :class:`StreamingReceiver` - the covert-channel bit receiver.  As
  chunks land it extends the Eq. 1 envelope incrementally, detects bit
  starts with a carried-over edge convolution, labels bits against a
  *rolling* threshold adapted over the most recent bits, attempts frame
  sync on the partial bit stream, and emits one :class:`BitEvent` per
  decoded bit with a latency stamp (stream-clock arrival minus the
  signal-time end of the bit).
* :class:`StreamingKeystrokeDetector` - the Section V-C keylogger,
  emitting :class:`KeystrokeEvent` objects online.

The online emissions are *provisional*: the paper's receiver
deliberately trades latency for accuracy by thresholding each bit
against statistics of bits before and after it, and a true stream has
not seen the "after" yet.  :meth:`StreamingReceiver.finalize` closes
the gap: it re-labels the accumulated envelope through the exact
:class:`~repro.core.decoder.BatchDecoder` logic, and because the
chunked envelope is bit-identical to the batch one (see
:mod:`repro.stream.demod`), the finalised bits are **bit-exact** with a
batch decode of the same capture whenever no chunk was dropped.  Memory
stays bounded relative to the IQ stream: the receiver retains only the
envelope (``hop``-fold smaller than the sample stream) plus
fixed-size carry-over state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from ..core.acquisition import Envelope
from ..core.decoder import BatchDecoder, DecodeResult, DecoderConfig
from ..core.edges import coarse_symbol_frames
from ..core.sync import FrameFormat, locate_preamble
from ..dsp.detection import bimodal_threshold, local_maxima
from ..dsp.filters import edge_kernel
from ..keylog.detector import (
    KeylogDetection,
    KeylogDetectorConfig,
    KeystrokeDetector,
    group_events,
)
from .demod import (
    StreamingBandEnergy,
    StreamingConvolver,
    StreamingSTFT,
    streaming_envelope,
)
from .source import StreamMeta


@dataclass(frozen=True)
class BitEvent:
    """One provisionally decoded bit, stamped with its decode latency.

    Attributes
    ----------
    index:
        Position in the provisional bit stream.
    bit:
        Provisional label (rolling threshold; the finalised stream may
        differ - see the module docstring).
    power:
        Average envelope power of the bit interval (Eq. 2 numerator).
    start_frame / end_frame:
        Envelope frame interval of the bit.
    time_s:
        Signal time of the bit start.
    emitted_at_s:
        Stream clock (simulated arrival/processing time) at emission.
    latency_s:
        ``emitted_at_s`` minus the signal time of the bit end: how long
        after the bit finished on the air the receiver produced it.
    payload_index:
        Bit index within the payload once frame sync has locked, else
        None.
    """

    index: int
    bit: int
    power: float
    start_frame: int
    end_frame: int
    time_s: float
    emitted_at_s: float
    latency_s: float
    payload_index: Optional[int] = None


@dataclass(frozen=True)
class KeystrokeEvent:
    """One online keystroke detection with its latency stamp."""

    start: float
    end: float
    emitted_at_s: float
    latency_s: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class StreamingReceiver:
    """Incremental covert-channel receiver over a chunked IQ stream.

    Parameters
    ----------
    meta:
        Stream metadata (sample rate, tuning).
    vrm_frequency_hz:
        The target's VRM switching frequency (profile-scaled).
    expected_bit_period_s:
        Rough symbol period; when omitted the receiver bootstraps it
        from the envelope autocorrelation once enough frames arrived
        (online events start only after the bootstrap).
    config:
        Receiver parameters, shared with :class:`BatchDecoder` so the
        finalised decode is the batch decode.
    frame_format:
        When given, the receiver attempts online frame sync and stamps
        payload indices on events once the preamble is located.
    rolling_bits:
        Number of recent bit powers the rolling threshold adapts over.
    on_event:
        Optional callback invoked with each :class:`BitEvent`.
    """

    #: Envelope frames required before the symbol-period bootstrap.
    BOOTSTRAP_FRAMES = 2048

    def __init__(
        self,
        meta: StreamMeta,
        vrm_frequency_hz: float,
        expected_bit_period_s: Optional[float] = None,
        config: DecoderConfig = DecoderConfig(),
        frame_format: Optional[FrameFormat] = None,
        rolling_bits: int = 64,
        on_event: Optional[Callable[[BitEvent], None]] = None,
        online: bool = True,
    ):
        if vrm_frequency_hz <= 0:
            raise ValueError("VRM frequency must be positive")
        if rolling_bits < 2:
            raise ValueError("rolling_bits must be >= 2")
        self.meta = meta
        self.vrm_frequency_hz = vrm_frequency_hz
        self.expected_bit_period_s = expected_bit_period_s
        self.config = config
        self.frame_format = frame_format
        self.on_event = on_event
        #: When False, the per-chunk online detectors (edge convolution,
        #: peak scan, rolling-threshold labelling) are skipped entirely;
        #: the receiver only accumulates the envelope and decodes at
        #: :meth:`finalize`.  The finalised bits are identical either
        #: way (they depend only on the envelope).  Fleet-scale
        #: multiplexing runs receivers deferred by default - per-chunk
        #: peak scans across 10k streams are the scaling bottleneck,
        #: and provisional events are only useful on watched streams.
        self.online = bool(online)
        acquisition = config.acquisition_for(
            expected_bit_period_s, meta.sample_rate
        )
        self._band: StreamingBandEnergy = streaming_envelope(
            meta, vrm_frequency_hz, acquisition
        )
        self._y = np.empty(0)
        self._times = np.empty(0)
        # Online state.
        self._expected_frames: Optional[float] = None
        if expected_bit_period_s is not None:
            self._expected_frames = (
                expected_bit_period_s * self._band.frame_rate
            )
        self._conv: Optional[StreamingConvolver] = None
        self._conv_fed = 0  # envelope frames fed into the convolver
        self._kernel_len = 0
        self._min_sep = 1
        self._resp = np.empty(0)
        self._resp_min = np.inf
        self._resp_max = -np.inf
        self._scan_upto = 0
        self._last_peak = -(10**9)
        self._starts: List[int] = []
        self._recent_powers: deque = deque(maxlen=rolling_bits)
        self._bits: List[int] = []
        self._events: List[BitEvent] = []
        self._synchronized = False
        self._payload_start: Optional[int] = None

    # -- public state -------------------------------------------------------

    @property
    def events(self) -> List[BitEvent]:
        """All events emitted so far (provisional bits)."""
        return list(self._events)

    @property
    def synchronized(self) -> bool:
        return self._synchronized

    @property
    def payload_start_index(self) -> Optional[int]:
        """Provisional-stream index of the first payload bit, if synced."""
        return self._payload_start

    @property
    def n_frames(self) -> int:
        return int(self._y.size)

    @property
    def n_samples(self) -> int:
        return self._band.sstft.n_samples

    def reserve(self, n_samples: int) -> None:
        """Pre-size the STFT chunk buffer for reallocation-free pushes."""
        self._band.reserve(n_samples)

    @property
    def band(self) -> StreamingBandEnergy:
        """The incremental Eq. 1 envelope this receiver consumes.

        Exposed so the fleet multiplexer can stage the underlying STFT
        into a cross-stream batched kernel and hand the resulting
        envelope increments back through :meth:`push_envelope`.
        """
        return self._band

    def envelope(self) -> Envelope:
        """The accumulated Eq. 1 envelope (batch-identical, drop-free)."""
        return Envelope(
            samples=self._y,
            frame_rate=self._band.frame_rate,
            times=self._times,
        )

    # -- chunk interface ----------------------------------------------------

    def push_samples(self, samples: np.ndarray, now_s: float) -> List[BitEvent]:
        """Feed one chunk of IQ samples; returns newly emitted events."""
        y_new, t_new = self._band.push(samples)
        return self.push_envelope(y_new, t_new, now_s)

    def push_envelope(
        self, y_new: np.ndarray, t_new: np.ndarray, now_s: float
    ) -> List[BitEvent]:
        """Feed precomputed Eq. 1 envelope frames (mux batched-DSP path).

        ``y_new``/``t_new`` must be exactly what :attr:`band` would have
        produced for the corresponding samples - the multiplexer
        guarantees this by staging this stream's frames into the group
        kernel and completing the same frame count.
        """
        if y_new.size == 0:
            return []
        self._y = np.concatenate([self._y, y_new])
        self._times = np.concatenate([self._times, t_new])
        if not self.online:
            return []
        return self._advance(now_s)

    def push_gap(self, n_samples: int, now_s: float) -> List[BitEvent]:
        """Account for lost samples by substituting silence.

        Keeps the envelope time base aligned with the signal so decoding
        degrades (the gap decodes as zeros / missed bits) instead of
        shifting every later bit.
        """
        if n_samples <= 0:
            return []
        zeros = np.zeros(int(n_samples), dtype=np.complex64)
        return self.push_samples(zeros, now_s)

    def finalize(self) -> DecodeResult:
        """Batch-grade decode of everything received.

        Runs the accumulated envelope through
        :meth:`BatchDecoder.decode_envelope`; on a drop-free stream the
        result is bit-exact with ``BatchDecoder.decode(capture)`` on the
        monolithic capture.
        """
        if self._y.size == 0:
            raise ValueError(
                "no envelope frames were produced; the stream is shorter "
                "than one acquisition window"
            )
        decoder = BatchDecoder(
            self.vrm_frequency_hz,
            expected_bit_period_s=self.expected_bit_period_s,
            config=self.config,
        )
        return decoder.decode_envelope(self.envelope())

    # -- online machinery ---------------------------------------------------

    def _advance(self, now_s: float) -> List[BitEvent]:
        """Run the online detectors over the newly finalised envelope."""
        if self._expected_frames is None:
            if self._y.size < self.BOOTSTRAP_FRAMES:
                return []
            self._expected_frames = coarse_symbol_frames(
                self.envelope(), min(self._y.size // 2, 8192)
            )
        if self._conv is None:
            edges = self.config.edges
            self._kernel_len = max(
                int(self._expected_frames * edges.kernel_fraction), 2
            )
            self._min_sep = max(
                int(self._expected_frames * edges.min_separation_fraction), 1
            )
            self._conv = StreamingConvolver(edge_kernel(self._kernel_len))
        backlog = self._y[self._conv_fed :]
        self._conv_fed = self._y.size
        resp_new = self._conv.push(backlog)
        if resp_new.size:
            self._resp = np.concatenate([self._resp, resp_new])
            self._resp_min = min(self._resp_min, float(resp_new.min()))
            self._resp_max = max(self._resp_max, float(resp_new.max()))
        new_starts = self._detect_starts()
        return self._emit_bits(new_starts, now_s)

    def _detect_starts(self) -> List[int]:
        """Scan the finalised edge response for new bit starts."""
        span = self._resp_max - self._resp_min
        if self._resp.size < 3 or span <= 0:
            return []
        # Overlap the scan window so a peak that sat on the previous
        # boundary is seen once its right context exists; the
        # min-separation check against the last accepted peak keeps the
        # overlap from double-detecting.
        margin = self._min_sep + self._kernel_len
        lo = max(self._scan_upto - margin, 0)
        window = self._resp[lo:]
        peaks = local_maxima(
            window,
            min_distance=self._min_sep,
            min_prominence=self.config.edges.min_prominence_rel * span,
        )
        self._scan_upto = self._resp.size
        half = self._kernel_len // 2
        accepted: List[int] = []
        for p in (lo + peaks).tolist():
            if p - self._last_peak < self._min_sep:
                continue
            if self._resp[p] <= 0:
                continue
            start = p - half
            if start < 0:
                continue
            self._last_peak = p
            accepted.append(start)
        return accepted

    def _emit_bits(self, new_starts: List[int], now_s: float) -> List[BitEvent]:
        """Close the bit intervals the new starts complete."""
        emitted: List[BitEvent] = []
        for start in new_starts:
            if self._starts:
                prev = self._starts[-1]
                emitted.append(self._close_bit(prev, start, now_s))
            self._starts.append(start)
        if emitted and self.frame_format is not None:
            was_synced = self._synchronized
            self._try_sync()
            if self._synchronized and not was_synced:
                # Sync locked on a bit emitted in this very batch:
                # stamp the batch's events retroactively so the first
                # payload bit carries payload_index 0.
                emitted = [
                    replace(e, payload_index=e.index - self._payload_start)
                    if e.index >= self._payload_start
                    else e
                    for e in emitted
                ]
        for event in emitted:
            self._events.append(event)
            if self.on_event is not None:
                self.on_event(event)
        return emitted

    def _close_bit(self, lo: int, hi: int, now_s: float) -> BitEvent:
        """Label one bit interval against the rolling threshold."""
        skip = int((hi - lo) * self.config.skip_fraction)
        body_lo = min(lo + skip, hi - 1) if hi > lo else lo
        body = self._y[body_lo:hi].astype(float)
        power = float(np.mean(body**2)) if body.size else 0.0
        self._recent_powers.append(power)
        recent = np.array(self._recent_powers)
        if recent.size >= 8:
            threshold = bimodal_threshold(recent)
        else:
            threshold = float((recent.min() + recent.max()) / 2)
        bit = int(power > threshold)
        self._bits.append(bit)
        index = len(self._bits) - 1
        end_time = float(self._times[min(hi, self._times.size - 1)])
        payload_index = None
        if self._payload_start is not None and index >= self._payload_start:
            payload_index = index - self._payload_start
        return BitEvent(
            index=index,
            bit=bit,
            power=power,
            start_frame=int(lo),
            end_frame=int(hi),
            time_s=float(self._times[min(lo, self._times.size - 1)]),
            emitted_at_s=float(now_s),
            latency_s=float(now_s) - end_time,
            payload_index=payload_index,
        )

    def _try_sync(self) -> None:
        """Attempt frame sync on the partial provisional bit stream."""
        if self._synchronized:
            return
        fmt = self.frame_format
        bits = np.array(self._bits, dtype=int)
        if bits.size < fmt.header.size:
            return
        nominal = fmt.header.size - fmt.preamble.size
        pos = locate_preamble(
            bits, fmt.preamble, max_errors=2, search_from=max(nominal - 6, 0)
        )
        if pos is None:
            return
        self._synchronized = True
        self._payload_start = pos


class StreamingKeystrokeDetector:
    """Online Section V-C keystroke detector over a chunked stream.

    Emits :class:`KeystrokeEvent` objects as soon as an activity burst
    can no longer merge with a successor (the merge gap has elapsed),
    thresholding each window against a rolling energy history.
    :meth:`finalize` reproduces the batch detector's global-threshold
    pass over the accumulated band energy, so the final event list
    matches :meth:`KeystrokeDetector.detect` on the same capture up to
    the batch path's pre-FFT normalisation (events agree; reported
    energies differ by the capture's RMS scale, which :meth:`finalize`
    divides back out from the running sample-power accumulator).
    """

    def __init__(
        self,
        meta: StreamMeta,
        vrm_frequency_hz: float,
        config: KeylogDetectorConfig = KeylogDetectorConfig(),
        rolling_windows: int = 512,
        on_event: Optional[Callable[[KeystrokeEvent], None]] = None,
        online: bool = True,
    ):
        if vrm_frequency_hz <= 0:
            raise ValueError("VRM frequency must be positive")
        self.meta = meta
        self.vrm_frequency_hz = vrm_frequency_hz
        self.config = config
        self.on_event = on_event
        #: Same contract as :attr:`StreamingReceiver.online`: False
        #: defers all detection to :meth:`finalize` (identical result).
        self.online = bool(online)
        window = max(int(config.window_s * meta.sample_rate), 8)
        sstft = StreamingSTFT(
            meta.sample_rate,
            fft_size=window,
            hop=window,  # non-overlapping, as in the batch detector
            window="rect",
            complex_input=True,
        )
        reference = KeystrokeDetector(vrm_frequency_hz, config)
        bins = reference._pmu_bins(
            sstft.spectrogram_stub(), meta.as_capture_stub()
        )
        self._band = StreamingBandEnergy(sstft, bins)
        self._window_s = window / meta.sample_rate
        self._energy = np.empty(0)
        self._times = np.empty(0)
        self._recent: deque = deque(maxlen=rolling_windows)
        self._power_sum = 0.0  # running sum of |x|^2 for RMS recovery
        self._n_samples = 0
        self._events: List[KeystrokeEvent] = []
        self._run_start: Optional[float] = None
        self._run_end: Optional[float] = None

    @property
    def events(self) -> List[KeystrokeEvent]:
        return list(self._events)

    def reserve(self, n_samples: int) -> None:
        """Pre-size the STFT chunk buffer for reallocation-free pushes."""
        self._band.reserve(n_samples)

    @property
    def band(self) -> StreamingBandEnergy:
        """The incremental band energy this detector consumes (mux hook)."""
        return self._band

    def account_samples(self, samples: np.ndarray) -> None:
        """Fold a chunk into the RMS accumulator without demodulating.

        The mux batched-DSP path stages the samples into the group STFT
        kernel itself, so only the |x|^2 bookkeeping (needed by
        :meth:`finalize` to recover the batch path's pre-FFT
        normalisation) remains per-stream.
        """
        samples = np.asarray(samples)
        if samples.size:
            self._power_sum += float(np.sum(np.abs(samples) ** 2))
            self._n_samples += samples.size

    def push_samples(
        self, samples: np.ndarray, now_s: float
    ) -> List[KeystrokeEvent]:
        samples = np.asarray(samples)
        self.account_samples(samples)
        energy, times = self._band.push(samples)
        return self.push_envelope(energy, times, now_s)

    def push_envelope(
        self, energy: np.ndarray, times: np.ndarray, now_s: float
    ) -> List[KeystrokeEvent]:
        """Feed precomputed band-energy windows (mux batched-DSP path).

        The caller must have already routed the raw samples through
        :meth:`account_samples` so :meth:`finalize` can undo the RMS
        scale.
        """
        if energy.size == 0:
            return []
        self._energy = np.concatenate([self._energy, energy])
        self._times = np.concatenate([self._times, times])
        if not self.online:
            return []
        return self._advance(energy, times, now_s)

    def push_gap(self, n_samples: int, now_s: float) -> List[KeystrokeEvent]:
        if n_samples <= 0:
            return []
        zeros = np.zeros(int(n_samples), dtype=np.complex64)
        return self.push_samples(zeros, now_s)

    def finalize(self) -> KeylogDetection:
        """Batch-equivalent detection over everything received."""
        if self._energy.size == 0:
            raise ValueError(
                "no analysis windows were produced; the stream is shorter "
                "than one detector window"
            )
        rms = (
            float(np.sqrt(self._power_sum / self._n_samples))
            if self._n_samples
            else 1.0
        )
        energy = self._energy / max(rms, 1e-12)
        threshold = bimodal_threshold(energy)
        active = energy > threshold
        events = group_events(active, self._times, self.config)
        return KeylogDetection(
            events=events,
            band_energy=energy,
            window_times=self._times,
            threshold=threshold,
        )

    # -- online machinery ---------------------------------------------------

    def _advance(
        self, energy: np.ndarray, times: np.ndarray, now_s: float
    ) -> List[KeystrokeEvent]:
        emitted: List[KeystrokeEvent] = []
        cfg = self.config
        for e, t in zip(energy, times):
            self._recent.append(float(e))
            recent = np.array(self._recent)
            if recent.size >= 8:
                threshold = bimodal_threshold(recent)
            else:
                threshold = float((recent.min() + recent.max()) / 2)
            active = e > threshold
            edge = t - self._window_s / 2
            if active:
                if self._run_start is None:
                    self._run_start = edge
                self._run_end = t + self._window_s / 2
            elif self._run_start is not None:
                if edge - self._run_end > cfg.merge_gap_s:
                    event = self._close_run(now_s)
                    if event is not None:
                        emitted.append(event)
        for event in emitted:
            self._events.append(event)
            if self.on_event is not None:
                self.on_event(event)
        return emitted

    def flush_events(self, now_s: float) -> List[KeystrokeEvent]:
        """Close a still-open activity run at end of stream."""
        event = self._close_run(now_s)
        if event is None:
            return []
        self._events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return [event]

    def _close_run(self, now_s: float) -> Optional[KeystrokeEvent]:
        if self._run_start is None:
            return None
        start, end = self._run_start, self._run_end
        self._run_start = self._run_end = None
        if end - start < self.config.min_event_s:
            return None
        return KeystrokeEvent(
            start=float(start),
            end=float(end),
            emitted_at_s=float(now_s),
            latency_s=float(now_s) - float(end),
        )
