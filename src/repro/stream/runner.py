"""The stream driver: source -> ring buffer -> receiver, with backpressure.

The runner replays a chunk source against an online receiver under a
*simulated* service clock, so a streaming run is deterministic and
reproducible (baselines, regression) while still exercising everything a
live run would:

* **Backpressure.**  The receiver drains the ring buffer at
  ``service_rate_sps`` samples per second of simulated compute.  When
  chunks arrive faster than they are serviced the buffer fills; under
  the ``block`` policy the producer then stalls (the lossless file-replay
  behaviour), under ``drop-oldest`` the oldest queued chunk is evicted
  and accounted (the live-SDR behaviour).
* **Graceful degradation.**  When the buffer occupancy crosses
  ``degrade_threshold`` the runner starts shedding every other incoming
  chunk at ingest (a crude but predictable decimation), emitting one
  ``RuntimeWarning`` plus a trace event on entry - the same pattern the
  process pool uses for its serial fallback - so a degraded run is never
  silent.
* **Gap alignment.**  Dropped or shed chunks are replayed into the
  receiver as zero-sample gaps (:meth:`push_gap`) keyed off each chunk's
  ``start_sample``, so loss degrades the decode instead of shifting
  every later bit.
* **Accounting.**  Per-chunk lag and buffer occupancy go to
  ``obs.metrics`` (``stream.*``) and per-chunk spans to ``obs.trace``;
  the run returns a :class:`StreamStats` summary suitable for manifests.

``service_rate_sps=None`` models an infinitely fast receiver: the buffer
never backs up, nothing drops, and the finalised decode is bit-exact
with the batch decoder.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.metrics import (
    tap_stream_chunk,
    tap_stream_degraded,
    tap_stream_drop,
    tap_stream_event,
    tap_stream_summary,
)
from ..exec.executor import choose_executor
from ..obs.trace import span, trace_event
from .ring import RingBuffer
from .source import Chunk, ChunkSource


@dataclass
class StreamStats:
    """End-of-run accounting, flat enough to drop into a manifest."""

    chunks_total: int = 0
    chunks_processed: int = 0
    chunks_dropped: int = 0
    chunks_shed: int = 0
    samples_processed: int = 0
    samples_dropped: int = 0
    samples_shed: int = 0
    gap_samples: int = 0
    n_events: int = 0
    max_lag_s: float = 0.0
    mean_lag_s: float = 0.0
    high_watermark: int = 0
    buffer_capacity: int = 0
    policy: str = "block"
    degraded: bool = False
    stream_duration_s: float = 0.0
    finished_at_s: float = 0.0
    events_per_s: float = 0.0
    executor: str = ""

    @property
    def lossless(self) -> bool:
        """True when every source sample reached the receiver."""
        return self.samples_dropped == 0 and self.samples_shed == 0

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["lossless"] = self.lossless
        return out


@dataclass
class StreamRunResult:
    """Everything a streaming run produced, short of finalisation."""

    stats: StreamStats
    events: List = field(default_factory=list)

    @property
    def n_events(self) -> int:
        return len(self.events)


class StreamRunner:
    """Drive one chunk source through one online receiver.

    Parameters
    ----------
    source:
        The chunk producer (:class:`~repro.stream.source.ChunkSource`).
    receiver:
        Any object with ``push_samples(samples, now_s)`` /
        ``push_gap(n, now_s)`` returning lists of events carrying a
        ``latency_s`` attribute (both stream receivers qualify).
    buffer_capacity / policy:
        Ring-buffer size and overflow behaviour
        (:class:`~repro.stream.ring.RingBuffer`).
    service_rate_sps:
        Simulated receiver throughput in samples per second; ``None``
        means infinitely fast (no backpressure, lossless).
    degrade_threshold:
        Buffer occupancy (fraction) at which ingest decimation starts;
        ``None`` disables degradation.
    """

    def __init__(
        self,
        source: ChunkSource,
        receiver,
        buffer_capacity: int = 64,
        policy: str = "block",
        service_rate_sps: Optional[float] = None,
        degrade_threshold: Optional[float] = 0.85,
    ):
        if service_rate_sps is not None and service_rate_sps <= 0:
            raise ValueError("service_rate_sps must be positive (or None)")
        if degrade_threshold is not None and not 0 < degrade_threshold <= 1:
            raise ValueError("degrade_threshold must be in (0, 1] or None")
        self.source = source
        self.receiver = receiver
        self.ring = RingBuffer(buffer_capacity, policy)
        self.service_rate_sps = service_rate_sps
        self.degrade_threshold = degrade_threshold
        self._busy_until = 0.0
        self._expected_next = 0
        self._degraded = False
        self._shed_parity = 0
        self._lag_total = 0.0
        self._events: List = []
        self.stats = StreamStats(
            buffer_capacity=self.ring.capacity, policy=policy
        )

    # -- public -------------------------------------------------------------

    def run(self) -> StreamRunResult:
        """Replay the whole source; returns events plus accounting."""
        sample_rate = self.source.meta.sample_rate
        self._prepare_service()
        last_end = 0
        for chunk in self.source:
            self.stats.chunks_total += 1
            last_end = max(last_end, chunk.end_sample)
            self._drain_until(chunk.arrival_s)
            if self._should_shed(chunk):
                continue
            self._ingest(chunk)
        self._drain_all()
        flush = getattr(self.receiver, "flush_events", None)
        if flush is not None:
            self._record_events(flush(self._busy_until))
        self._summarise(last_end / sample_rate)
        return StreamRunResult(stats=self.stats, events=list(self._events))

    # -- clock / buffer mechanics -------------------------------------------

    def _prepare_service(self) -> None:
        """Pick the chunk-service strategy via the adaptive executor.

        Chunk DSP is order-dependent (every streaming stage carries
        state across chunk boundaries), so the only admissible mode is
        batched-serial - but asking the executor records *why* in the
        trace, and its chunk-shape answer sizes the receiver's STFT
        buffers up front so steady-state pushes reallocate nothing.
        """
        chunk_size = int(getattr(self.source, "chunk_size", 0) or 0)
        tasks = int(getattr(self.source, "n_chunks", 0) or 1)
        decision = choose_executor(
            max(tasks, 1),
            jobs=1,  # ordered, stateful: one service lane by contract
            bytes_per_task=chunk_size * 8,  # complex64 IQ
            numpy_bound=True,
            batchable=True,
        )
        self.stats.executor = decision.mode
        reserve = getattr(self.receiver, "reserve", None)
        if reserve is not None and chunk_size > 0:
            # One chunk plus the carried window tail fits in place.
            reserve(2 * chunk_size)

    def _service_time(self, chunk: Chunk) -> float:
        if self.service_rate_sps is None:
            return 0.0
        return chunk.size / self.service_rate_sps

    def _drain_until(self, now_s: float) -> None:
        """Service queued chunks whose processing completes by ``now_s``."""
        while True:
            head = self.ring.peek()
            if head is None:
                return
            start = max(self._busy_until, head.arrival_s)
            finish = start + self._service_time(head)
            if finish > now_s:
                return
            self.ring.pop()
            self._process(head, finish)

    def _drain_all(self) -> None:
        """End of stream: service everything still queued."""
        while True:
            head = self.ring.pop()
            if head is None:
                return
            start = max(self._busy_until, head.arrival_s)
            self._process(head, start + self._service_time(head))

    def _ingest(self, chunk: Chunk) -> None:
        """Push one chunk, modelling the policy's overflow behaviour."""
        if self.ring.full and self.ring.policy == "block":
            # The producer stalls until the receiver frees a slot.
            head = self.ring.pop()
            start = max(self._busy_until, head.arrival_s)
            self._process(head, start + self._service_time(head))
        evicted = self.ring.push(chunk)
        for victim in evicted:
            self.stats.chunks_dropped += 1
            self.stats.samples_dropped += victim.size
            tap_stream_drop(1, victim.size)
            trace_event(
                "stream.drop",
                index=victim.index,
                samples=victim.size,
                arrival_s=victim.arrival_s,
            )

    def _should_shed(self, chunk: Chunk) -> bool:
        """Graceful degradation: decimate ingest while overloaded."""
        if self.degrade_threshold is None:
            return False
        if self.ring.occupancy < self.degrade_threshold:
            return False
        if not self._degraded:
            self._degraded = True
            self.stats.degraded = True
            warnings.warn(
                "stream runner falling behind (buffer occupancy "
                f"{self.ring.occupancy:.0%} >= "
                f"{self.degrade_threshold:.0%}); shedding every other "
                "chunk until the backlog clears",
                RuntimeWarning,
                stacklevel=3,
            )
            trace_event(
                "warning",
                kind="stream-degraded",
                occupancy=self.ring.occupancy,
                chunk=chunk.index,
            )
        self._shed_parity ^= 1
        if self._shed_parity == 1:
            self.stats.chunks_shed += 1
            self.stats.samples_shed += chunk.size
            tap_stream_degraded(1, chunk.size)
            return True
        return False

    # -- receiver side ------------------------------------------------------

    def _process(self, chunk: Chunk, finish_s: float) -> None:
        """Feed one chunk (and any preceding gap) to the receiver."""
        self._busy_until = finish_s
        lag = finish_s - chunk.arrival_s
        with span(
            "stream.chunk",
            {
                "index": chunk.index,
                "samples": chunk.size,
                "lag_s": round(lag, 6),
                "occupancy": round(self.ring.occupancy, 4),
            },
        ):
            if chunk.start_sample > self._expected_next:
                gap = chunk.start_sample - self._expected_next
                self.stats.gap_samples += gap
                self._record_events(self.receiver.push_gap(gap, finish_s))
            self._record_events(
                self.receiver.push_samples(chunk.samples, finish_s)
            )
        self._expected_next = max(self._expected_next, chunk.end_sample)
        self.stats.chunks_processed += 1
        self.stats.samples_processed += chunk.size
        self._lag_total += lag
        if lag > self.stats.max_lag_s:
            self.stats.max_lag_s = lag
        tap_stream_chunk(lag, self.ring.occupancy)

    def _record_events(self, events) -> None:
        for event in events:
            self._events.append(event)
            tap_stream_event(event.latency_s)

    def _summarise(self, stream_duration_s: float) -> None:
        s = self.stats
        s.n_events = len(self._events)
        s.high_watermark = self.ring.high_watermark
        s.stream_duration_s = stream_duration_s
        s.finished_at_s = self._busy_until
        if s.chunks_processed:
            s.mean_lag_s = self._lag_total / s.chunks_processed
        horizon = max(s.finished_at_s, stream_duration_s)
        s.events_per_s = s.n_events / horizon if horizon > 0 else 0.0
        tap_stream_summary(s.events_per_s, s.high_watermark)
