"""Fixed-capacity chunk buffer between the SDR and the receiver.

A real streaming receiver owns a bounded queue: the SDR driver deposits
transfer buffers at line rate while the DSP drains them at whatever rate
the CPU sustains.  When the queue fills, something must give - either
the producer stalls (``block``, what a lossless file replay does) or the
oldest unprocessed data is discarded (``drop-oldest``, what a live SDR
does when the host falls behind).  This module models exactly that
choice, with explicit drop accounting so a lossy run can never be
mistaken for a lossless one.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .source import Chunk

#: Overflow policies understood by :class:`RingBuffer`.
POLICIES = ("block", "drop-oldest")


class BufferFull(Exception):
    """Raised by a ``block``-policy push onto a full buffer.

    The driver is expected to drain before pushing (that *is* the
    backpressure); reaching this exception means the driver logic is
    wrong, not that the stream is overloaded.
    """


class RingBuffer:
    """Bounded FIFO of :class:`~repro.stream.source.Chunk` objects.

    Parameters
    ----------
    capacity:
        Maximum number of queued chunks.
    policy:
        ``"block"``: a push onto a full buffer raises
        :class:`BufferFull`; the driver must drain first, which models
        the producer stalling.  ``"drop-oldest"``: a push onto a full
        buffer evicts the oldest queued chunk and returns it, so the
        caller can account for the loss.
    """

    def __init__(self, capacity: int, policy: str = "block"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r}; choose from {POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: deque = deque()
        self.pushed = 0
        self.popped = 0
        self.dropped_chunks = 0
        self.dropped_samples = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def occupancy(self) -> float:
        """Fill fraction in ``[0, 1]``."""
        return len(self._items) / self.capacity

    def push(self, chunk: Chunk) -> List[Chunk]:
        """Enqueue one chunk; returns the chunks evicted to make room.

        Empty list on a clean push.  Under ``drop-oldest`` the evicted
        chunk(s) are returned *and* counted in :attr:`dropped_chunks` /
        :attr:`dropped_samples`; under ``block`` a full buffer raises
        :class:`BufferFull` instead.
        """
        dropped: List[Chunk] = []
        while self.full:
            if self.policy == "block":
                raise BufferFull(
                    f"ring buffer full ({self.capacity} chunks) under "
                    "block policy; drain before pushing"
                )
            victim = self._items.popleft()
            dropped.append(victim)
            self.dropped_chunks += 1
            self.dropped_samples += victim.size
        self._items.append(chunk)
        self.pushed += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        return dropped

    def pop(self) -> Optional[Chunk]:
        """Dequeue the oldest chunk, or None when empty."""
        if not self._items:
            return None
        self.popped += 1
        return self._items.popleft()

    def peek(self) -> Optional[Chunk]:
        return self._items[0] if self._items else None
