"""repro.stream: real-time streaming receiver over chunked IQ.

The batch pipeline (:mod:`repro.core`) decodes a finished capture in one
pass; this package decodes the same signal *as it arrives*, the way an
attacker's SDR actually delivers it:

``source`` -> ``ring`` -> ``demod`` -> ``receiver``, driven by ``runner``.

The headline guarantee: a drop-free streaming run finalises to bits that
are **bit-exact** with :class:`~repro.core.decoder.BatchDecoder` on the
same capture, for any chunking (see DESIGN.md section 11).
"""

from .demod import (
    StreamingBandEnergy,
    StreamingConvolver,
    StreamingSTFT,
    streaming_envelope,
)
from .receiver import (
    BitEvent,
    KeystrokeEvent,
    StreamingKeystrokeDetector,
    StreamingReceiver,
)
from .ring import POLICIES, BufferFull, RingBuffer
from .runner import StreamRunner, StreamRunResult, StreamStats
from .source import (
    CaptureChunkSource,
    Chunk,
    ChunkSource,
    StreamMeta,
    chain_chunk_source,
)

__all__ = [
    "BitEvent",
    "BufferFull",
    "CaptureChunkSource",
    "Chunk",
    "ChunkSource",
    "KeystrokeEvent",
    "POLICIES",
    "RingBuffer",
    "StreamMeta",
    "StreamRunResult",
    "StreamRunner",
    "StreamStats",
    "StreamingBandEnergy",
    "StreamingConvolver",
    "StreamingKeystrokeDetector",
    "StreamingReceiver",
    "StreamingSTFT",
    "chain_chunk_source",
    "streaming_envelope",
]
