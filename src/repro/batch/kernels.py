"""Trial-major vectorized kernels for the hot chain stages.

Every kernel here is a *stacking* of its scalar counterpart: N
independent trials' arrays are laid out trial-major (axis 0 = trial,
axis 1 = sample) and pushed through one numpy/scipy call instead of N.
The win is not algorithmic - it is amortising FFT plans, window tables,
filter taps and Python dispatch over the whole batch, exactly the
population-major idiom the sweep's homogeneous trial groups expose.

Bit-identity discipline (the non-negotiable from ISSUE 6): each kernel
is only allowed transformations that are provably element-identical to
the scalar path -

* ``scipy.signal.fftconvolve(stack, kern[None, :], axes=-1)`` computes
  each row with the same FFT length and the same complex arithmetic as
  the per-row call, so rows match bit-for-bit (pinned by tests);
* a flattened offset ``np.bincount`` performs the identical in-order
  per-bin float accumulation as N separate bincounts;
* framing via ``sliding_window_view`` + advanced indexing selects the
  same windows as hop-slicing, and a row-subset FFT equals the same
  rows of the full FFT.

Row independence also makes every kernel chunk-invariant, so stacks are
processed in ~:data:`CHUNK_BYTES` blocks to bound peak memory without
changing a single output bit.

Observability: each kernel runs under a ``batch.kernel`` span and feeds
the ``batch.kernel.*`` metrics (batch size, bytes moved, seconds).
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import signal as sps

from ..dsp.stft import Spectrogram, frame_count, frame_times
from ..dsp.windows import get_window
from ..obs.metrics import tap_batch_kernel
from ..obs.trace import span

#: Target upper bound for one chunk of stacked rows moving through an
#: FFT-based kernel.  Chunking along the trial axis is bit-safe (rows
#: are independent); this only bounds peak memory.
CHUNK_BYTES = 64 << 20


def _row_chunks(n_rows: int, row_bytes: int) -> List[Tuple[int, int]]:
    """Split ``n_rows`` into contiguous (start, stop) chunks of roughly
    ``CHUNK_BYTES`` each (always at least one row per chunk)."""
    if n_rows <= 0:
        return []
    per = max(int(CHUNK_BYTES // max(row_bytes, 1)), 1)
    return [(lo, min(lo + per, n_rows)) for lo in range(0, n_rows, per)]


def _kernel_span(name: str, batch: int, bytes_moved: int):
    return span(
        "batch.kernel",
        {"kernel": name, "batch": batch, "bytes": int(bytes_moved)},
    )


def batched_bincount(
    indices: Sequence[np.ndarray],
    deposits: Sequence[np.ndarray],
    length: int,
) -> np.ndarray:
    """N scatter-accumulations onto equal-length grids in one pass.

    Equivalent to ``np.bincount(idx_i, weights=dep_i, minlength=length)``
    per row: offsetting row ``i``'s indices by ``i * length`` and
    binning into a flattened ``(N * length,)`` grid performs the same
    in-order per-bin accumulation, because bins of different rows never
    alias.  Rows with empty index sets come back all-zero, matching the
    scalar guard.
    """
    n = len(indices)
    out = np.zeros((n, length))
    flat_parts = [
        idx.astype(np.int64) + i * length
        for i, idx in enumerate(indices)
        if idx.size
    ]
    if not flat_parts:
        return out
    started = time.perf_counter()
    with _kernel_span("bincount", n, out.nbytes):
        flat_idx = np.concatenate(flat_parts)
        flat_dep = np.concatenate([d for d in deposits if d.size])
        out = np.bincount(
            flat_idx, weights=flat_dep, minlength=n * length
        ).reshape(n, length)
    tap_batch_kernel(
        "bincount", n, out.nbytes, time.perf_counter() - started
    )
    return out


def batched_convolve_full(
    stack: np.ndarray, kernel: np.ndarray, out_len: int
) -> np.ndarray:
    """Row-wise ``fftconvolve(row, kernel)[:out_len]`` (full mode).

    The scalar emission synthesis truncates the full convolution back to
    the wave length; broadcasting the kernel over the stacked rows uses
    the same FFT size per row, so each row is bit-identical.
    """
    started = time.perf_counter()
    row_bytes = (stack.shape[1] + kernel.size) * 16
    out = np.empty((stack.shape[0], out_len))
    with _kernel_span("convolve", stack.shape[0], stack.nbytes):
        for lo, hi in _row_chunks(stack.shape[0], row_bytes):
            out[lo:hi] = sps.fftconvolve(
                stack[lo:hi], kernel[None, :], axes=-1
            )[:, :out_len]
    tap_batch_kernel(
        "convolve", stack.shape[0], stack.nbytes, time.perf_counter() - started
    )
    return out


def batched_mix(
    stack: np.ndarray,
    sample_rate: float,
    center_frequency: float,
    oscillator_offset_hz: float,
) -> np.ndarray:
    """Row-wise :func:`repro.sdr.frontend.mix_to_baseband`.

    All rows share (rate, LO frequency), so the local oscillator is
    synthesised once and broadcast; ``float64 row * complex LO`` is the
    identical per-element product as the scalar call.
    """
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    started = time.perf_counter()
    with _kernel_span("mix", stack.shape[0], stack.nbytes):
        n = np.arange(stack.shape[1])
        lo_freq = center_frequency + oscillator_offset_hz
        lo = np.exp(-2j * np.pi * lo_freq * n / sample_rate)
        out = stack.astype(np.float64) * lo[None, :]
    tap_batch_kernel(
        "mix", stack.shape[0], stack.nbytes, time.perf_counter() - started
    )
    return out


def batched_decimate(
    stack: np.ndarray, factor: int, numtaps: int = 129
) -> np.ndarray:
    """Row-wise :func:`repro.sdr.frontend.decimate`.

    One firwin design and one broadcast same-mode fftconvolve replace N
    filter builds and N convolutions; each row's FFT length matches the
    scalar call, so the filtered samples are bit-identical.
    """
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    if factor == 1:
        return stack
    started = time.perf_counter()
    taps = sps.firwin(numtaps, 0.8 / factor)
    row_bytes = (stack.shape[1] + numtaps) * 32
    out = np.empty(
        (stack.shape[0], len(range(0, stack.shape[1], factor))),
        dtype=complex,
    )
    with _kernel_span("decimate", stack.shape[0], stack.nbytes):
        for lo, hi in _row_chunks(stack.shape[0], row_bytes):
            filtered = sps.fftconvolve(
                stack[lo:hi], taps[None, :], mode="same", axes=-1
            )
            out[lo:hi] = filtered[:, ::factor]
    tap_batch_kernel(
        "decimate", stack.shape[0], stack.nbytes, time.perf_counter() - started
    )
    return out


# ---------------------------------------------------------------------------
# Union-of-positions STFT: many (hop, bins) requests over one capture


class EnvelopeRequest:
    """One Eq. 1 envelope wanted from a shared capture.

    ``fft_size`` and ``window`` are fixed per batch (they set the frame
    contents); ``hop`` and ``bins`` vary per request.
    """

    __slots__ = ("hop", "bins", "n_frames")

    def __init__(self, hop: int, bins: np.ndarray, n_frames: int):
        self.hop = hop
        self.bins = bins
        self.n_frames = n_frames


def batched_band_energy(
    samples: np.ndarray,
    fft_size: int,
    window: str,
    requests: Sequence[EnvelopeRequest],
) -> List[np.ndarray]:
    """Serve N band-energy envelopes from one capture with one FFT sweep.

    Requests with different hops sample overlapping frame-start grids
    (hop 16 contains hop 32 contains hop 64 ...); the kernel FFTs the
    *union* of all requested frame positions exactly once and gathers
    each request's rows back out.  Windowing and FFT are the very calls
    the scalar :func:`repro.core.acquisition.acquire` makes; instead of
    fftshifting and taking ``abs`` of every spectrum, each request's
    (few) bins are index-mapped back to unshifted FFT coordinates and
    only those columns are touched - ``abs`` commutes with indexing and
    the column order (hence the pairwise sum) is preserved, so each
    envelope is bit-identical to its solo run.
    """
    started = time.perf_counter()
    positions = [
        np.arange(r.n_frames, dtype=np.int64) * r.hop for r in requests
    ]
    union = (
        np.unique(np.concatenate(positions))
        if positions
        else np.empty(0, dtype=np.int64)
    )
    outs = [np.zeros(r.n_frames) for r in requests]
    if union.size == 0:
        return outs
    win = get_window(window, fft_size)
    frames = sliding_window_view(samples, fft_size)
    gathers = [np.searchsorted(union, pos) for pos in positions]
    # The scalar path fftshifts before indexing bins; mapping the bins
    # into unshifted coordinates instead lets each block skip the
    # full-spectrum shift copy and |.| pass.
    mapped = [
        (np.asarray(r.bins, dtype=np.int64) - fft_size // 2) % fft_size
        for r in requests
    ]
    row_bytes = fft_size * 16 * 2  # complex frame + spectrum
    bytes_moved = union.size * fft_size * 16
    with _kernel_span("stft", len(requests), bytes_moved):
        for lo, hi in _row_chunks(union.size, row_bytes):
            spectra = np.fft.fft(frames[union[lo:hi]] * win, axis=1)
            for req, gather, cols, out in zip(
                requests, gathers, mapped, outs
            ):
                inside = (gather >= lo) & (gather < hi)
                if not inside.any():
                    continue
                rows = spectra[gather[inside] - lo]
                out[inside] = np.abs(rows[:, cols]).sum(axis=1)
    tap_batch_kernel(
        "stft", len(requests), bytes_moved, time.perf_counter() - started
    )
    return outs


def spectrogram_axes(
    fft_size: int, sample_rate: float
) -> np.ndarray:
    """The fftshifted complex-input frequency axis of the scalar STFT."""
    return np.fft.fftshift(np.fft.fftfreq(fft_size, d=1.0 / sample_rate))


def empty_spectrogram(
    fft_size: int, hop: int, sample_rate: float
) -> Spectrogram:
    """A magnitudes-free spectrogram carrying only the axes.

    :func:`repro.core.acquisition.harmonic_bins` needs ``frequencies``
    and ``nearest_bin`` but never touches the magnitudes; this lets the
    batch path resolve each request's bin set without materialising any
    spectra.
    """
    return Spectrogram(
        magnitudes=np.empty((0, fft_size)),
        times=np.empty(0),
        frequencies=spectrogram_axes(fft_size, sample_rate),
        hop=hop,
        fft_size=fft_size,
        sample_rate=sample_rate,
    )


def check_frames(n_samples: int, fft_size: int, hop: int) -> int:
    """Frame count with the scalar :func:`repro.dsp.stft.stft` error."""
    n_frames = frame_count(n_samples, fft_size, hop)
    if n_frames == 0:
        raise ValueError(
            f"need at least fft_size={fft_size} samples, got {n_samples}"
        )
    return n_frames


def envelope_times(
    n_frames: int, fft_size: int, hop: int, sample_rate: float
) -> np.ndarray:
    return frame_times(0, n_frames, fft_size, hop, sample_rate)
