"""Trial-major batched execution of the analog chain (DESIGN.md §14).

The scalar chain runs one trial at a time through Python-dispatched
stages; a sweep's homogeneous trial groups leave most of that dispatch
(FFT plans, window tables, filter taps, LO synthesis) re-done N times.
This package re-cuts the loop nest trial-major:

* :mod:`repro.batch.kernels` - stacked ndarray kernels for the hot
  stages (scatter deposit, pulse convolution, mix, decimate, the
  union-of-positions STFT), each provably bit-identical per row to its
  scalar counterpart and chunked to bound peak memory.
* :mod:`repro.batch.chain` - :func:`render_captures_batched`: resolve N
  trials' captures through the layered chain cache with each distinct
  node computed exactly once, grouped through the kernels.
* :mod:`repro.batch.runner` - :func:`run_trials_batched`: the
  batched-serial sweep executor producing records bit-identical to the
  scalar engine's (schema, decoded bits, RNG digests, trace stream).
"""

from .chain import ChainRequest, ResolvedCapture, render_captures_batched
from .kernels import (
    CHUNK_BYTES,
    EnvelopeRequest,
    batched_band_energy,
    batched_bincount,
    batched_convolve_full,
    batched_decimate,
    batched_mix,
)
from .runner import run_trials_batched, warm_map

__all__ = [
    "CHUNK_BYTES",
    "ChainRequest",
    "EnvelopeRequest",
    "ResolvedCapture",
    "batched_band_energy",
    "batched_bincount",
    "batched_convolve_full",
    "batched_decimate",
    "batched_mix",
    "render_captures_batched",
    "run_trials_batched",
    "warm_map",
]
