"""Trial-major resolution of the analog chain for a batch of trials.

:func:`render_captures_batched` is the batched counterpart of
:func:`repro.chain.render_capture` for N trials at once.  It walks the
same layered key chain (power -> burst -> dither -> emit -> capture),
but *across the whole batch*: every distinct stage node is probed once,
the missing nodes of each layer are computed together - grouped through
the trial-major kernels of :mod:`repro.batch.kernels` - and members
share the node's value and RNG exit state exactly as a cache hit would
(deduplication is a virtual hit: same key, same bytes, same exit
state).

Observability parity is part of the bit-identity contract.  The scalar
engine's traces and metrics are pinned by tests and recorded baselines,
so this module emits the *same* stage spans (one per computed node,
with the same attrs and RNG digests), the same ``stage`` hit events
where the scalar path would replay a cache hit, the same metric taps
the same number of times, and the same ``sweep.warm`` events /
``sweep.group`` spans for the planner's warm nodes.  The only additions
are the ``batch.*`` spans and metrics, which no baseline pins.

The replay rule that makes hit events line up: a consumer emits a
``stage`` hit for a lower node iff that node came from the cache or is
*shared* (a planner warm node) - an unshared node is computed "inline"
on behalf of its sole consumer, which is how the scalar chain
attributes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..chain import (
    _stage_hit,
    _stage_span,
    tuned_frequency_hz,
)
from ..exec.timing import stage
from ..obs.metrics import (
    tap_activity,
    tap_bursts,
    tap_capture,
    tap_emission,
    tap_propagation,
)
from ..obs.trace import key_prefix, span, trace_event
from ..power.pmu import PMU
from ..sdr.rtlsdr import RtlSdrV3
from ..types import IQCapture
from ..vrm.buck import BuckConverter
from ..vrm.emission import EmissionModel
from ..vrm.vid import VidInterface
from .kernels import (
    batched_bincount,
    batched_convolve_full,
    batched_decimate,
    batched_mix,
)


@dataclass
class ChainRequest:
    """One trial's chain inputs, with the RNG as a state (not a live
    generator), so a request is inert until its node computes."""

    machine: object
    activity: object
    scenario: object
    profile: object
    allow_c_states: bool
    allow_p_states: bool
    vrm_dithering: object
    keys: object  # repro.chain.ChainKeys
    entry_state: dict


@dataclass
class ResolvedCapture:
    """What one request gets back: the capture, where it came from
    (``cache`` / ``computed``), and the chain's RNG exit state."""

    capture: IQCapture
    key: Optional[str]
    source: str
    exit_state: dict


class _Node:
    """One distinct stage node during batch resolution."""

    __slots__ = ("key", "req", "source", "value", "exit_state")

    def __init__(self, key, req):
        self.key = key
        self.req = req
        self.source: Optional[str] = None  # "cache" | "computed"
        self.value = None
        self.exit_state: Optional[dict] = None


def _generator(state: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


def _probe(cache, node: _Node) -> bool:
    if cache is None:
        return False
    hit = cache.get(node.key)
    if hit is None:
        return False
    node.value, node.exit_state = hit
    node.source = "cache"
    return True


def _put(cache, node: _Node) -> None:
    if cache is not None:
        cache.put(node.key, (node.value, node.exit_state))


def _replays(node: Optional[_Node], warmed: Mapping[str, int]) -> bool:
    """Does a consumer replay this lower node as a hit event?

    True when the scalar path would have found it in the cache: either
    it really was cached, or it is a shared (warmed) node the scalar
    warm phase computes before any consumer runs.
    """
    if node is None:
        return False
    return node.source == "cache" or node.key in warmed


def render_captures_batched(
    requests: Sequence[ChainRequest],
    warmed: Optional[Mapping[str, int]] = None,
    emit_warm_events: bool = False,
) -> List[ResolvedCapture]:
    """Resolve every request's capture, computing each distinct stage
    node exactly once and batching each layer's misses through the
    trial-major kernels.

    Parameters
    ----------
    requests:
        The batch.  Requests sharing a stage key must (by key
        construction) agree on that stage's inputs and RNG entry state.
    warmed:
        ``{key: fan_out}`` of the planner's warm nodes (shared
        vrm/emission/capture nodes with a pending member).  These are
        force-resolved even when a higher layer hits, and each gets a
        ``sweep.group`` span - matching the scalar engine's warm phase.
    emit_warm_events:
        Also emit the per-stage ``sweep.warm`` trace events (the
        engine's warm-phase announcements).
    """
    from ..exec.cache import get_chain_cache

    warmed = dict(warmed or {})
    cache = get_chain_cache()

    with span("batch.chain", {"requests": len(requests)}):
        return _resolve(requests, warmed, emit_warm_events, cache)


def _resolve(requests, warmed, emit_warm_events, cache):
    # ---- layer tables: one node per distinct key ----------------------
    captures: Dict[str, _Node] = {}
    emissions: Dict[str, _Node] = {}
    dithers: Dict[str, _Node] = {}
    bursts: Dict[str, _Node] = {}

    def node_for(table, key, req):
        if key not in table:
            table[key] = _Node(key, req)
        return table[key]

    for req in requests:
        if req.keys.capture is None:
            raise ValueError("batched rendering needs a scenario per trial")
        node_for(captures, req.keys.capture, req)

    # ---- probe top-down, seeding lower layers from misses -------------
    for node in captures.values():
        _probe(cache, node)

    def want_emission(req):
        node = node_for(emissions, req.keys.emit, req)
        return node

    def want_bursts_chain(req):
        # Burst (and optional dither) nodes an emission compute needs.
        if req.vrm_dithering is not None:
            node_for(dithers, req.keys.dither, req)
        node_for(bursts, req.keys.burst, req)

    for node in captures.values():
        if node.source is None:
            want_emission(node.req)
    # The planner's warm nodes are force-resolved at their own layer,
    # exactly as the scalar warm phase runs each one regardless of what
    # higher layers have cached.
    for req in requests:
        if req.keys.emit in warmed:
            want_emission(req)
        if req.keys.burst in warmed:
            node_for(bursts, req.keys.burst, req)

    for node in emissions.values():
        if not _probe(cache, node) and node.source is None:
            want_bursts_chain(node.req)
    for node in dithers.values():
        if not _probe(cache, node):
            node_for(bursts, node.req.keys.burst, node.req)
    for node in bursts.values():
        _probe(cache, node)

    # ---- vrm phase: compute missing burst nodes -----------------------
    if emit_warm_events:
        _warm_announce("vrm", bursts, warmed)
    table_memo: Dict[tuple, object] = {}

    def power_table(machine, allow_c, allow_p):
        memo_key = (id(machine), allow_c, allow_p)
        if memo_key not in table_memo:
            table_memo[memo_key] = machine.power_table(
                allow_c=allow_c, allow_p=allow_p
            )
        return table_memo[memo_key]

    vid = VidInterface()
    for node in bursts.values():
        if node.source is not None:
            continue
        req = node.req
        rng = _generator(req.entry_state)
        k_power = req.keys.power if cache is not None else None
        k_burst = node.key if cache is not None else None
        power_hit = cache.get(req.keys.power) if cache is not None else None
        if power_hit is not None:
            power_trace, state_after = power_hit
            rng.bit_generator.state = state_after
            _stage_hit("pmu", req.keys.power, rng)
        else:
            with stage("pmu"), _stage_span("pmu", k_power, rng):
                table = power_table(
                    req.machine, req.allow_c_states, req.allow_p_states
                )
                pmu = PMU(
                    table,
                    governor=req.machine.governor(table, req.profile),
                    rng=rng,
                )
                power_trace = pmu.run(req.activity)
            if cache is not None:
                cache.put(
                    req.keys.power, (power_trace, rng.bit_generator.state)
                )
        with stage("vrm"), _stage_span("vrm", k_burst, rng):
            table = power_table(
                req.machine, req.allow_c_states, req.allow_p_states
            )
            load = power_trace.current_draw(table.current_a)
            requested_v = power_trace.voltage(table.voltage_v)
            realized_v = vid.apply(requested_v)
            buck = BuckConverter(req.machine.buck_design(req.profile), rng=rng)
            node.value = buck.simulate(load, realized_v)
        node.exit_state = rng.bit_generator.state
        node.source = "computed"
        _put(cache, node)
    if emit_warm_events:
        _warm_groups("vrm", bursts, warmed)

    # ---- dither phase -------------------------------------------------
    for node in dithers.values():
        if node.source is not None:
            continue
        req = node.req
        burst_node = bursts[req.keys.burst]
        rng = _generator(burst_node.exit_state)
        if _replays(burst_node, warmed):
            _stage_hit("vrm", burst_node.key, rng)
        k_dither = node.key if cache is not None else None
        with stage("dither"), _stage_span("dither", k_dither, rng):
            node.value = req.vrm_dithering.apply(
                burst_node.value, rng, time_scale=req.profile.time_scale
            )
        node.exit_state = rng.bit_generator.state
        node.source = "computed"
        _put(cache, node)

    # ---- emission phase: per-node deposits, grouped synthesis ---------
    if emit_warm_events:
        _warm_announce("emission", emissions, warmed)
    _compute_emissions(emissions, dithers, bursts, warmed, cache)
    if emit_warm_events:
        _warm_groups("emission", emissions, warmed)

    # ---- capture phase: per-node noise/propagation, grouped mixing ----
    if emit_warm_events:
        _warm_announce("capture", captures, warmed)
    _compute_captures(captures, emissions, warmed, cache)
    if emit_warm_events:
        _warm_groups("capture", captures, warmed)

    return [
        ResolvedCapture(
            capture=captures[req.keys.capture].value,
            key=req.keys.capture if cache is not None else None,
            source=captures[req.keys.capture].source,
            exit_state=captures[req.keys.capture].exit_state,
        )
        for req in requests
    ]


def _compute_emissions(emissions, dithers, bursts, warmed, cache):
    """Synthesize every missing emission node: deposits per node (with
    the scalar ``emission`` span and taps), then one grouped bincount
    per wave length and one grouped convolution per pulse kernel."""
    pending = [n for n in emissions.values() if n.source is None]
    if not pending:
        return
    jobs = []  # (node, rng, bursts, emitter)
    for node in pending:
        req = node.req
        if req.vrm_dithering is not None:
            lower = dithers[req.keys.dither]
            lower_stage = "dither"
        else:
            lower = bursts[req.keys.burst]
            lower_stage = "vrm"
        rng = _generator(lower.exit_state)
        if _replays(lower, warmed):
            _stage_hit(lower_stage, lower.key, rng)
        jobs.append(
            (
                node,
                rng,
                lower.value,
                EmissionModel(field_gain=req.machine.emission_strength),
            )
        )

    # Per-node: the scalar emission span, taps, and deposit arithmetic.
    deposit_groups: Dict[int, list] = {}  # wave length -> [(node, idx, dep)]
    convolve_groups: Dict[tuple, list] = {}  # (len, kernel) -> [node]
    kernels: Dict[tuple, np.ndarray] = {}
    waves: Dict[str, np.ndarray] = {}
    for node, rng, train, emitter in jobs:
        req = node.req
        sample_rate = req.profile.rf_sample_rate_hz
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        k_emit = node.key if cache is not None else None
        with stage("emission"), span(
            "emission",
            {
                "cache": "off" if k_emit is None else "miss",
                "key": key_prefix(k_emit),
            },
        ):
            tap_bursts(train)
            n_samples = int(round(train.duration * sample_rate))
            length = max(n_samples, 1)
            if train.count == 0:
                waves[node.key] = np.zeros(length)
                continue
            width_s = emitter.pulse_width_fraction * train.switching_period
            nominal_v = max(np.median(train.voltages), 1e-9)
            weights = (
                emitter.field_gain
                * (train.charges / width_s)
                * (train.voltages / nominal_v)
            )
            positions = train.times * sample_rate
            base = np.floor(positions).astype(np.int64)
            frac = positions - base
            interior = (base >= 0) & (base < n_samples - 1)
            last = base == n_samples - 1
            indices = np.concatenate(
                (base[interior], base[interior] + 1, base[last])
            )
            deposits = np.concatenate(
                (
                    weights[interior] * (1.0 - frac[interior]),
                    weights[interior] * frac[interior],
                    weights[last],
                )
            )
            deposit_groups.setdefault(length, []).append(
                (node, indices, deposits)
            )
            kernel = emitter.pulse_kernel(
                sample_rate, train.switching_period
            )
            if kernel.size > 1:
                group_key = (length, kernel.tobytes())
                kernels[group_key] = kernel
                convolve_groups.setdefault(group_key, []).append(node)
            # kernel.size == 1: the deposited wave is final.

    # Grouped scatter: one bincount per wave length.
    for length, members in deposit_groups.items():
        stack = batched_bincount(
            [idx for _, idx, _ in members],
            [dep for _, _, dep in members],
            length,
        )
        for row, (node, _, _) in zip(stack, members):
            waves[node.key] = row

    # Grouped pulse shaping: one broadcast convolution per kernel.
    for group_key, members in convolve_groups.items():
        length, _ = group_key
        stack = np.stack([waves[node.key] for node in members])
        shaped = batched_convolve_full(stack, kernels[group_key], length)
        for row, node in zip(shaped, members):
            waves[node.key] = row

    for node, rng, _, _ in jobs:
        node.value = waves[node.key]
        # Synthesis draws nothing: the exit state is the entry state,
        # exactly what the scalar path stores.
        node.exit_state = rng.bit_generator.state
        node.source = "computed"
        tap_emission(node.value)
        _put(cache, node)


def _compute_captures(captures, emissions, warmed, cache):
    """Digitise every missing capture node: noise and propagation per
    node (sequential RNG), then grouped mix + decimation, then the AGC
    and quantiser per node."""
    pending = [n for n in captures.values() if n.source is None]
    if not pending:
        return
    groups: Dict[tuple, list] = {}  # downconvert params -> [(node, row)]
    rngs: Dict[str, np.random.Generator] = {}
    sdrs: Dict[str, RtlSdrV3] = {}
    for node in pending:
        req = node.req
        emit_node = emissions[req.keys.emit]
        rng = _generator(emit_node.exit_state)
        # render_emission's entry tap, which every scalar capture
        # compute passes through.
        tap_activity(req.activity)
        if _replays(emit_node, warmed):
            _stage_hit("emission", emit_node.key, rng)
            tap_emission(emit_node.value)
        wave = emit_node.value
        k_capture = node.key if cache is not None else None
        rf_rate = req.profile.rf_sample_rate_hz
        with stage("propagation"), _stage_span(
            "propagation", k_capture, rng
        ):
            antenna_v = req.scenario.apply(wave, rf_rate, rng)
            tap_propagation(wave, antenna_v, req.scenario)
        sdr = RtlSdrV3(sample_rate=req.profile.sdr_sample_rate_hz)
        factor = rf_rate / sdr.sample_rate
        if abs(factor - round(factor)) > 1e-6:
            raise ValueError(
                f"input rate {rf_rate} is not an integer multiple of "
                f"device rate {sdr.sample_rate}"
            )
        factor = int(round(factor))
        center = tuned_frequency_hz(req.machine, req.profile)
        with stage("sdr"), _stage_span("sdr", k_capture, rng):
            # The SDR's only draw; mixing, decimation and the AGC are
            # deterministic, so deferring them into the grouped kernels
            # leaves this span's RNG digest scalar-identical.
            noisy = antenna_v + sdr.noise_floor * rng.standard_normal(
                antenna_v.size
            )
        offset_hz = center * sdr.ppm_error * 1e-6
        rngs[node.key] = rng
        sdrs[node.key] = sdr
        groups.setdefault(
            (
                noisy.size,
                rf_rate,
                center,
                offset_hz,
                factor,
                sdr.sample_rate,
            ),
            [],
        ).append((node, noisy))

    for (size, rf_rate, center, offset_hz, factor, out_rate), members in (
        groups.items()
    ):
        # Chunk the group so the complex mixed stack stays bounded; row
        # independence makes any chunking bit-identical.
        per = max((64 << 20) // max(size * 48, 1), 1)
        for lo in range(0, len(members), per):
            chunk = members[lo : lo + per]
            stack = np.stack([row for _, row in chunk])
            baseband = batched_mix(stack, rf_rate, center, offset_hz)
            baseband = batched_decimate(baseband, factor)
            for row, (node, _) in zip(baseband, chunk):
                sdr = sdrs[node.key]
                rng = rngs[node.key]
                quantised = sdr._agc_and_quantise(row, rng)
                node.value = IQCapture(
                    samples=quantised.astype(np.complex64),
                    sample_rate=sdr.sample_rate,
                    center_frequency=center,
                )
                node.exit_state = rng.bit_generator.state
                node.source = "computed"
                tap_capture(node.value, sdr.bits)
                _put(cache, node)


# ---------------------------------------------------------------------------
# Warm-phase parity


def _warm_nodes_for(table, warmed):
    return [node for node in table.values() if node.key in warmed]


def _warm_announce(stage_name, table, warmed):
    nodes = _warm_nodes_for(table, warmed)
    if nodes:
        trace_event("sweep.warm", stage=stage_name, groups=len(nodes))


def _warm_groups(stage_name, table, warmed):
    """Emit one ``sweep.group`` span per warm node of this stage, with
    the scalar warm worker's cache-hit replays inside.

    A node the batch just computed gets an (almost) empty span - its
    compute spans were already emitted by the stage phase, exactly as
    the scalar ``_warm_node``'s nested stage spans are separate flat
    events.  A node served from cache replays the hit events/taps its
    scalar warm would have emitted.
    """
    for node in _warm_nodes_for(table, warmed):
        with span(
            "sweep.group",
            {
                "stage": stage_name,
                "key": key_prefix(node.key),
                "fan_out": warmed[node.key],
            },
        ):
            rng = _generator(node.exit_state)
            if stage_name == "emission":
                # render_emission taps the activity on entry, hit or
                # miss alike.
                tap_activity(node.req.activity)
            if node.source == "cache":
                if stage_name == "vrm":
                    _stage_hit("vrm", node.key, rng)
                elif stage_name == "emission":
                    _stage_hit("emission", node.key, rng)
                    tap_emission(node.value)
                elif stage_name == "capture":
                    _stage_hit("sdr", node.key, rng)
                    tap_activity(node.req.activity)
                    tap_capture(node.value, adc_bits=8)
