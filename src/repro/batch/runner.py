"""Batched sweep execution: plan in, scalar-identical records out.

:func:`run_trials_batched` is the batched-serial counterpart of the
sweep engine's warm-then-fan-out loop.  One process does all the work,
but trial-major: the digital half is prepared once per distinct digital
prefix, every distinct chain node is computed exactly once through the
grouped kernels (:func:`repro.batch.chain.render_captures_batched`),
and the receiver tails share one union-of-positions STFT per capture
(:func:`repro.batch.kernels.batched_band_energy`) instead of N
overlapping sliding FFTs.

The output records are bit-identical to :func:`~repro.sweep.engine.
run_sweep`'s scalar path - same schema, same decoded-bits digests, same
RNG exit digests - and the trace/metrics stream matches the scalar
engine's (stage spans, hit replays, ``sweep.warm`` / ``sweep.group`` /
``sweep.trial``), plus the ``batch.*`` additions.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chain import _stage_hit
from ..core.acquisition import Envelope, harmonic_bins
from ..core.align import align_bits
from ..core.decoder import BatchDecoder
from ..dsp.detection import histogram_modes
from ..obs.metrics import tap_activity, tap_batch_run, tap_capture
from ..obs.trace import key_prefix, rng_digest, span
from ..sweep.plan import SweepPlan, TrialPlan
from ..sweep.spec import build_link, trial_payload
from ..sweep.store import STORE_SCHEMA
from .chain import ChainRequest, ResolvedCapture, render_captures_batched
from .kernels import (
    EnvelopeRequest,
    batched_band_energy,
    check_frames,
    empty_spectrogram,
    envelope_times,
)


def _bits_digest(bits: np.ndarray) -> str:
    import hashlib

    data = np.ascontiguousarray(np.asarray(bits), dtype=np.uint8)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def warm_map(plan: SweepPlan, pending: Sequence[TrialPlan]) -> Dict[str, int]:
    """The engine's warm set as ``{key: fan_out}``: shared warmable
    nodes that still have a pending consumer."""
    pending_ids = {tp.trial_id for tp in pending}
    return {
        node.key: len(node.children)
        for node in plan.warm_nodes()
        if any(t in pending_ids for t in node.trial_ids)
    }


def run_trials_batched(
    plan: SweepPlan,
    pending: Sequence[TrialPlan],
    warmed: Optional[Dict[str, int]] = None,
) -> Tuple[List[dict], int]:
    """Execute every pending trial trial-major; returns the records (in
    ``pending`` order) and the number of warm groups, mirroring the
    scalar engine's accounting."""
    from ..exec.cache import get_chain_cache

    if warmed is None:
        warmed = warm_map(plan, pending)
    cache = get_chain_cache()
    if cache is None:
        # Without a cache there is no warm phase (dedup still applies -
        # a shared node computes once and members reuse it virtually).
        warmed = {}

    # ---- digital half, once per distinct prefix -----------------------
    links = {tp.trial_id: build_link(tp.trial) for tp in pending}
    prepared: Dict[str, dict] = {}
    for tp in pending:
        if tp.digital_id in prepared:
            continue
        prep = links[tp.trial_id].prepare(trial_payload(tp.trial))
        prepared[tp.digital_id] = {
            "tx_bits": prep.tx_bits,
            "activity": prep.activity,
            "nominal": prep.nominal_bit_duration_s,
            "entry_state": prep.rng.bit_generator.state,
        }

    # ---- analog chain, one pass per distinct node ---------------------
    requests = []
    for tp in pending:
        link = links[tp.trial_id]
        digital = prepared[tp.digital_id]
        requests.append(
            ChainRequest(
                machine=link.machine,
                activity=digital["activity"],
                scenario=link.scenario,
                profile=link.profile,
                allow_c_states=link.allow_c_states,
                allow_p_states=link.allow_p_states,
                vrm_dithering=link.vrm_dithering,
                keys=tp.keys,
                entry_state=digital["entry_state"],
            )
        )
    resolved = render_captures_batched(
        requests, warmed, emit_warm_events=True
    )
    tap_batch_run(len(pending), len({id(r.capture) for r in resolved}))

    # ---- receiver tails: one STFT sweep per (capture, M, window) ------
    envelopes = _batched_envelopes(pending, links, prepared, resolved)
    records = []
    for tp, res in zip(pending, resolved):
        records.append(
            _finish_trial(
                tp,
                links[tp.trial_id],
                prepared[tp.digital_id],
                res,
                envelopes[tp.trial_id],
                replay=cache is not None
                and (res.source == "cache" or res.key in warmed),
            )
        )
    return records, len(warmed)


def _batched_envelopes(
    pending: Sequence[TrialPlan],
    links: Dict[str, object],
    prepared: Dict[str, dict],
    resolved: Sequence[ResolvedCapture],
) -> Dict[str, Envelope]:
    """Acquire every trial's Eq. 1 envelope, grouping trials that share
    (capture, fft_size, window) through the union-STFT kernel."""
    groups: Dict[tuple, list] = {}
    for tp, res in zip(pending, resolved):
        link = links[tp.trial_id]
        capture = res.capture
        acquisition = link.decoder_config.acquisition_for(
            prepared[tp.digital_id]["nominal"], capture.sample_rate
        )
        n_frames = check_frames(
            capture.samples.size, acquisition.fft_size, acquisition.hop
        )
        axes = empty_spectrogram(
            acquisition.fft_size, acquisition.hop, capture.sample_rate
        )
        bins = harmonic_bins(
            axes, capture, link.vrm_frequency_hz, acquisition
        )
        group_key = (
            res.key or id(capture),
            acquisition.fft_size,
            acquisition.window,
        )
        groups.setdefault(group_key, []).append(
            (tp, capture, acquisition, bins, n_frames)
        )
    envelopes: Dict[str, Envelope] = {}
    for (_, fft_size, window), members in groups.items():
        capture = members[0][1]
        with span(
            "batch.decode",
            {"requests": len(members), "fft_size": fft_size},
        ):
            ys = batched_band_energy(
                capture.samples,
                fft_size,
                window,
                [
                    EnvelopeRequest(acq.hop, bins, n_frames)
                    for _, _, acq, bins, n_frames in members
                ],
            )
        for y, (tp, _, acq, _, n_frames) in zip(ys, members):
            envelopes[tp.trial_id] = Envelope(
                samples=y,
                frame_rate=capture.sample_rate / acq.hop,
                times=envelope_times(
                    n_frames, fft_size, acq.hop, capture.sample_rate
                ),
            )
    return envelopes


def _finish_trial(
    tp: TrialPlan,
    link,
    digital: dict,
    res: ResolvedCapture,
    envelope: Envelope,
    replay: bool,
) -> dict:
    """The per-trial tail: replay the capture hit the scalar trial would
    see, decode, and assemble the exact scalar record schema."""
    trial = tp.trial
    started = time.perf_counter()
    rng = np.random.default_rng(0)
    rng.bit_generator.state = res.exit_state
    tx_bits = digital["tx_bits"]
    with span(
        "sweep.trial",
        {"trial": key_prefix(tp.trial_id), "label": trial.label},
    ):
        if replay:
            _stage_hit("sdr", res.key, rng)
            tap_activity(digital["activity"])
            tap_capture(res.capture, adc_bits=8)
        decoder = BatchDecoder(
            link.vrm_frequency_hz,
            expected_bit_period_s=digital["nominal"],
            config=link.decoder_config,
        )
        decode = decoder.decode_envelope(envelope)
        m = align_bits(tx_bits, decode.bits)
    duration_s = digital["activity"].duration
    if duration_s <= 0:
        tr_bps = 0.0
    else:
        tr_bps = link.profile.paper_rate(tx_bits.size / duration_s)
    threshold = (
        float(decode.thresholds[0]) if decode.thresholds else float("nan")
    )
    lo_mode = hi_mode = float("nan")
    if decode.powers.size:
        _, _, modes = histogram_modes(decode.powers)
        lo_mode = float(min(modes[:2])) if modes.size >= 2 else float(modes[0])
        hi_mode = float(max(modes[:2])) if modes.size >= 2 else float(modes[0])
    return {
        "schema": STORE_SCHEMA,
        "trial_id": tp.trial_id,
        "label": trial.label,
        "trial": dataclasses.asdict(trial),
        "keys": {stage: key_prefix(key) for stage, key in tp.keys.stages()},
        "result": {
            "bit_errors": int(m.bit_errors),
            "insertions": int(m.insertions),
            "deletions": int(m.deletions),
            "transmitted": int(m.transmitted),
            "received": int(m.received),
            "ber": float(m.ber),
            "ip": float(m.insertion_probability),
            "dp": float(m.deletion_probability),
            "tr_bps": float(tr_bps),
            "duration_s": float(duration_s),
            "n_bits": int(decode.bits.size),
            "bits_sha": _bits_digest(decode.bits),
            "tx_sha": _bits_digest(tx_bits),
            "rng": rng_digest(rng),
            "threshold": threshold,
            "power_modes": [lo_mode, hi_mode],
        },
        "elapsed_s": round(time.perf_counter() - started, 6),
    }
