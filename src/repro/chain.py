"""The shared analog signal chain: activity trace -> SDR capture.

Both applications (covert channel, keylogging) drive the same physics:

    activity -> PMU (power states) -> VRM (bursts) -> emission
             -> propagation/noise -> antenna -> SDR -> IQ capture

This module is the single implementation of that chain.

Caching
-------
The digital and VRM stages are pure functions of (machine, activity,
profile, BIOS flags, dithering config) *and the RNG state on entry*, so
their outputs are content-addressed in :mod:`repro.exec.cache` under a
layered key chain::

    k_power   = H(machine, activity, profile, flags, rng_state)
    k_burst   = H(k_power)
    k_dither  = H(k_burst, dithering)     # only when dithering is on
    k_emit    = H(k_dither)
    k_capture = H(k_emit, scenario)

A sweep that varies only the receiver (decoder/detector config) hits
``k_capture`` and skips the whole analog chain; one that varies only
the propagation scenario hits ``k_emit`` and skips the PMU + VRM; one
that varies only the dithering hits ``k_burst`` and re-runs just the
dither + synthesis.
Every cached value stores the RNG state on *exit* from its stage, which
a hit restores, so cached and uncached runs are bit-identical.

Each stage is also bracketed with :func:`repro.exec.timing.stage`, so
harnesses that collect timings see where the wall-clock went
(``pmu`` / ``vrm`` / ``dither`` / ``emission`` / ``propagation`` /
``sdr``).

Observability
-------------
When tracing is on (:mod:`repro.obs.trace`), every stage emits one
structured event carrying its cache key prefix, hit/miss disposition,
duration and an RNG-state digest; when a metrics registry is active
(:mod:`repro.obs.metrics`), each stage also reports signal-quality
figures (duty cycle, burst rate, shed fraction, emission RMS, SNR,
clipping).  Both are single ``ContextVar`` reads when off.  Note that
under a warm cache the stages a hit skips do not tap (their
intermediates are never materialised); the baseline regression gate
therefore runs with the cache disabled.
"""

from __future__ import annotations

import numpy as np

from .em.environment import Scenario
from .exec.cache import CHAIN_SCHEMA, fingerprint, get_chain_cache
from .exec.timing import stage
from .obs.metrics import (
    tap_activity,
    tap_bursts,
    tap_capture,
    tap_emission,
    tap_propagation,
)
from .obs.trace import (
    key_prefix,
    rng_digest,
    span,
    trace_event,
    tracing_active,
)
from .params import SimProfile
from .power.pmu import PMU
from .sdr.rtlsdr import RtlSdrV3
from .systems.laptops import Machine
from .types import ActivityTrace, BurstTrain, IQCapture, PowerStateTrace
from .vrm.buck import BuckConverter
from .vrm.emission import EmissionModel
from .vrm.vid import VidInterface


def tuned_frequency_hz(machine: Machine, profile: SimProfile) -> float:
    """SDR tuning for a machine: midway between f0 and its first harmonic
    (profile-scaled), so both Eq. 1 components are in band."""
    return 1.5 * machine.vrm_frequency_hz / profile.total_freq_divisor


def paper_tuned_frequency_hz(machine: Machine) -> float:
    """Paper-scale tuning frequency (for profile-invariant link physics)."""
    return 1.5 * machine.vrm_frequency_hz


# ---------------------------------------------------------------------------
# Cache keys


def _activity_fingerprint(activity: ActivityTrace):
    """Activity content as arrays (fast to hash even for long traces)."""
    return (
        np.array([iv.start for iv in activity.intervals]),
        np.array([iv.end for iv in activity.intervals]),
        np.array([iv.level for iv in activity.intervals]),
        activity.duration,
    )


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def power_chain_key(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    allow_c_states: bool,
    allow_p_states: bool,
) -> str:
    """Content address of the power-state stage (and chain prefix root)."""
    return fingerprint(
        CHAIN_SCHEMA,
        "power",
        machine,
        _activity_fingerprint(activity),
        profile,
        allow_c_states,
        allow_p_states,
        _rng_state(rng),
    )


def _chain_keys(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    allow_c_states: bool,
    allow_p_states: bool,
    vrm_dithering,
):
    """The layered (power, burst, dither, emit) key chain for one run."""
    k_power = power_chain_key(
        machine, activity, profile, rng, allow_c_states, allow_p_states
    )
    k_burst = fingerprint(CHAIN_SCHEMA, "burst", k_power)
    if vrm_dithering is not None:
        k_dither = fingerprint(CHAIN_SCHEMA, "dither", k_burst, vrm_dithering)
    else:
        k_dither = k_burst
    k_emit = fingerprint(CHAIN_SCHEMA, "emit", k_dither)
    return k_power, k_burst, k_dither, k_emit


# ---------------------------------------------------------------------------
# Tracing helpers


def _stage_hit(name: str, key, rng: np.random.Generator) -> None:
    """Trace a stage served from cache (RNG digest is post-restore)."""
    if tracing_active():
        trace_event(
            "stage",
            name=name,
            cache="hit",
            key=key_prefix(key),
            rng=rng_digest(rng),
        )


def _stage_span(name: str, key, rng: np.random.Generator):
    """Span for a stage that actually computes (miss, or cache off)."""
    return span(
        name,
        {"cache": "off" if key is None else "miss", "key": key_prefix(key)},
        lazy=lambda: {"rng": rng_digest(rng)},
    )


# ---------------------------------------------------------------------------
# Stages


def run_power_chain(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
) -> PowerStateTrace:
    """Digital half: activity -> power-state residencies."""
    cache = get_chain_cache()
    key = None
    if cache is not None:
        key = power_chain_key(
            machine, activity, profile, rng, allow_c_states, allow_p_states
        )
        hit = cache.get(key)
        if hit is not None:
            power_trace, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("pmu", key, rng)
            return power_trace
    with stage("pmu"), _stage_span("pmu", key, rng):
        table = machine.power_table(allow_c=allow_c_states, allow_p=allow_p_states)
        pmu = PMU(table, governor=machine.governor(table, profile), rng=rng)
        power_trace = pmu.run(activity)
    if cache is not None:
        cache.put(key, (power_trace, _rng_state(rng)))
    return power_trace


def _simulate_bursts(
    machine: Machine,
    profile: SimProfile,
    power_trace: PowerStateTrace,
    rng: np.random.Generator,
    *,
    allow_c_states: bool,
    allow_p_states: bool,
    key=None,
) -> BurstTrain:
    """VRM half: power states -> raw (pre-dithering) burst train."""
    with stage("vrm"), _stage_span("vrm", key, rng):
        table = machine.power_table(allow_c=allow_c_states, allow_p=allow_p_states)
        load = power_trace.current_draw(table.current_a)
        requested_v = power_trace.voltage(table.voltage_v)
        realized_v = VidInterface().apply(requested_v)
        buck = BuckConverter(machine.buck_design(profile), rng=rng)
        return buck.simulate(load, realized_v)


def _synthesize(
    machine: Machine, profile: SimProfile, bursts: BurstTrain, key=None
) -> np.ndarray:
    with stage("emission"), span(
        "emission", {"cache": "off" if key is None else "miss", "key": key_prefix(key)}
    ):
        tap_bursts(bursts)
        emitter = EmissionModel(field_gain=machine.emission_strength)
        wave = emitter.synthesize(bursts, profile.rf_sample_rate_hz)
        tap_emission(wave)
        return wave


def render_emission(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> np.ndarray:
    """Activity -> emitted RF waveform (before propagation).

    ``vrm_dithering`` optionally applies the Section VI spread-spectrum
    countermeasure (:class:`repro.countermeasures.VrmDithering`) to the
    burst train before synthesis.
    """
    tap_activity(activity)
    cache = get_chain_cache()
    if cache is None:
        power_trace = run_power_chain(
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        bursts = _simulate_bursts(
            machine,
            profile,
            power_trace,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        if vrm_dithering is not None:
            with stage("dither"), _stage_span("dither", None, rng):
                bursts = vrm_dithering.apply(
                    bursts, rng, time_scale=profile.time_scale
                )
        return _synthesize(machine, profile, bursts)

    # Derive the whole key chain from the inputs alone, then probe from
    # the coarsest layer down so a hit skips every stage it covers.
    k_power, k_burst, k_dither, k_emit = _chain_keys(
        machine,
        activity,
        profile,
        rng,
        allow_c_states,
        allow_p_states,
        vrm_dithering,
    )

    hit = cache.get(k_emit)
    if hit is not None:
        wave, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("emission", k_emit, rng)
        tap_emission(wave)
        return wave

    if vrm_dithering is not None:
        hit = cache.get(k_dither)
        if hit is not None:
            bursts, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("dither", k_dither, rng)
        else:
            bursts = _cached_bursts(
                cache,
                k_power,
                k_burst,
                machine,
                activity,
                profile,
                rng,
                allow_c_states=allow_c_states,
                allow_p_states=allow_p_states,
            )
            with stage("dither"), _stage_span("dither", k_dither, rng):
                bursts = vrm_dithering.apply(
                    bursts, rng, time_scale=profile.time_scale
                )
            cache.put(k_dither, (bursts, _rng_state(rng)))
    else:
        bursts = _cached_bursts(
            cache,
            k_power,
            k_burst,
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
    wave = _synthesize(machine, profile, bursts, key=k_emit)
    # Synthesis is deterministic: RNG state is unchanged from the
    # dither/burst stage, so storing the current state is exact.
    cache.put(k_emit, (wave, _rng_state(rng)))
    return wave


def _cached_bursts(
    cache,
    k_power: str,
    k_burst: str,
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool,
    allow_p_states: bool,
) -> BurstTrain:
    """Raw (pre-dithering) burst train via the layered cache."""
    hit = cache.get(k_burst)
    if hit is not None:
        bursts, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("vrm", k_burst, rng)
        return bursts
    hit = cache.get(k_power)
    if hit is not None:
        power_trace, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("pmu", k_power, rng)
    else:
        with stage("pmu"), _stage_span("pmu", k_power, rng):
            table = machine.power_table(
                allow_c=allow_c_states, allow_p=allow_p_states
            )
            pmu = PMU(table, governor=machine.governor(table, profile), rng=rng)
            power_trace = pmu.run(activity)
        cache.put(k_power, (power_trace, _rng_state(rng)))
    bursts = _simulate_bursts(
        machine,
        profile,
        power_trace,
        rng,
        allow_c_states=allow_c_states,
        allow_p_states=allow_p_states,
        key=k_burst,
    )
    cache.put(k_burst, (bursts, _rng_state(rng)))
    return bursts


def render_capture(
    machine: Machine,
    activity: ActivityTrace,
    scenario: Scenario,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> IQCapture:
    """Full chain: activity -> complex baseband IQ capture.

    The finished capture is itself cached, keyed by the emission key
    plus the scenario, so a sweep that varies only the *receiver*
    (decoder/detector configuration) pays for the analog chain once.
    """
    cache = get_chain_cache()
    k_capture = None
    if cache is not None:
        _, _, _, k_emit = _chain_keys(
            machine,
            activity,
            profile,
            rng,
            allow_c_states,
            allow_p_states,
            vrm_dithering,
        )
        k_capture = fingerprint(CHAIN_SCHEMA, "capture", k_emit, scenario)
        hit = cache.get(k_capture)
        if hit is not None:
            capture, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("sdr", k_capture, rng)
            # render_emission is skipped entirely on a capture hit, so
            # tap the endpoints that are still materialised here.
            tap_activity(activity)
            tap_capture(capture, adc_bits=8)
            return capture
    wave = render_emission(
        machine,
        activity,
        profile,
        rng,
        allow_c_states=allow_c_states,
        allow_p_states=allow_p_states,
        vrm_dithering=vrm_dithering,
    )
    with stage("propagation"), _stage_span("propagation", k_capture, rng):
        antenna_v = scenario.apply(wave, profile.rf_sample_rate_hz, rng)
        tap_propagation(wave, antenna_v, scenario)
    with stage("sdr"), _stage_span("sdr", k_capture, rng):
        sdr = RtlSdrV3(sample_rate=profile.sdr_sample_rate_hz)
        capture = sdr.capture(
            antenna_v,
            profile.rf_sample_rate_hz,
            tuned_frequency_hz(machine, profile),
            rng,
        )
        tap_capture(capture, sdr.bits)
    if cache is not None:
        cache.put(k_capture, (capture, _rng_state(rng)))
    return capture
