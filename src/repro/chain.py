"""The shared analog signal chain: activity trace -> SDR capture.

Both applications (covert channel, keylogging) drive the same physics:

    activity -> PMU (power states) -> VRM (bursts) -> emission
             -> propagation/noise -> antenna -> SDR -> IQ capture

This module is the single implementation of that chain.

Caching
-------
The digital and VRM stages are pure functions of (machine, activity,
profile, BIOS flags, dithering config) *and the RNG state on entry*, so
their outputs are content-addressed in :mod:`repro.exec.cache` under a
layered key chain::

    k_power   = H(machine, activity, profile, flags, rng_state)
    k_burst   = H(k_power)
    k_dither  = H(k_burst, dithering)     # only when dithering is on
    k_emit    = H(k_dither)
    k_capture = H(k_emit, scenario)

A sweep that varies only the receiver (decoder/detector config) hits
``k_capture`` and skips the whole analog chain; one that varies only
the propagation scenario hits ``k_emit`` and skips the PMU + VRM; one
that varies only the dithering hits ``k_burst`` and re-runs just the
dither + synthesis.
Every cached value stores the RNG state on *exit* from its stage, which
a hit restores, so cached and uncached runs are bit-identical.
Stage computes run under per-key stampede locks (disk-backed caches
only): when two workers miss the same key concurrently, exactly one
computes while the other blocks and is then served the published value,
traced as ``cache.stampede_avoided``.

:func:`capture_chain_keys` names a trial's whole key chain without
executing anything; :mod:`repro.sweep` uses it to group a parameter
grid by shared prefix and compute every shared stage exactly once.

Each stage is also bracketed with :func:`repro.exec.timing.stage`, so
harnesses that collect timings see where the wall-clock went
(``pmu`` / ``vrm`` / ``dither`` / ``emission`` / ``propagation`` /
``sdr``).

Observability
-------------
When tracing is on (:mod:`repro.obs.trace`), every stage emits one
structured event carrying its cache key prefix, hit/miss disposition,
duration and an RNG-state digest; when a metrics registry is active
(:mod:`repro.obs.metrics`), each stage also reports signal-quality
figures (duty cycle, burst rate, shed fraction, emission RMS, SNR,
clipping).  Both are single ``ContextVar`` reads when off.  Note that
under a warm cache the stages a hit skips do not tap (their
intermediates are never materialised); the baseline regression gate
therefore runs with the cache disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .em.environment import Scenario
from .exec.cache import CHAIN_SCHEMA, fingerprint, get_chain_cache
from .exec.timing import stage
from .obs.metrics import (
    get_metrics,
    tap_activity,
    tap_bursts,
    tap_capture,
    tap_emission,
    tap_propagation,
)
from .obs.trace import (
    key_prefix,
    rng_digest,
    span,
    trace_event,
    tracing_active,
)
from .params import SimProfile
from .power.pmu import PMU
from .sdr.rtlsdr import RtlSdrV3
from .systems.laptops import Machine
from .types import ActivityTrace, BurstTrain, IQCapture, PowerStateTrace
from .vrm.buck import BuckConverter
from .vrm.emission import EmissionModel
from .vrm.vid import VidInterface


def tuned_frequency_hz(machine: Machine, profile: SimProfile) -> float:
    """SDR tuning for a machine: midway between f0 and its first harmonic
    (profile-scaled), so both Eq. 1 components are in band."""
    return 1.5 * machine.vrm_frequency_hz / profile.total_freq_divisor


def paper_tuned_frequency_hz(machine: Machine) -> float:
    """Paper-scale tuning frequency (for profile-invariant link physics)."""
    return 1.5 * machine.vrm_frequency_hz


# ---------------------------------------------------------------------------
# Cache keys


def _activity_fingerprint(activity: ActivityTrace):
    """Activity content as arrays (fast to hash even for long traces)."""
    return (
        np.array([iv.start for iv in activity.intervals]),
        np.array([iv.end for iv in activity.intervals]),
        np.array([iv.level for iv in activity.intervals]),
        activity.duration,
    )


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def power_chain_key(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    allow_c_states: bool,
    allow_p_states: bool,
) -> str:
    """Content address of the power-state stage (and chain prefix root)."""
    return fingerprint(
        CHAIN_SCHEMA,
        "power",
        machine,
        _activity_fingerprint(activity),
        profile,
        allow_c_states,
        allow_p_states,
        _rng_state(rng),
    )


def _chain_keys(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    allow_c_states: bool,
    allow_p_states: bool,
    vrm_dithering,
):
    """The layered (power, burst, dither, emit) key chain for one run."""
    k_power = power_chain_key(
        machine, activity, profile, rng, allow_c_states, allow_p_states
    )
    k_burst = fingerprint(CHAIN_SCHEMA, "burst", k_power)
    if vrm_dithering is not None:
        k_dither = fingerprint(CHAIN_SCHEMA, "dither", k_burst, vrm_dithering)
    else:
        k_dither = k_burst
    k_emit = fingerprint(CHAIN_SCHEMA, "emit", k_dither)
    return k_power, k_burst, k_dither, k_emit


@dataclass(frozen=True)
class ChainKeys:
    """The layered cache-key chain of one trial, computed without
    running any stage.

    ``capture`` is None when no scenario was supplied (emission-only
    chains).  When dithering is off, ``dither`` equals ``burst`` and
    the dither stage does not exist as a distinct node.
    """

    power: str
    burst: str
    dither: str
    emit: str
    capture: Optional[str] = None

    def stages(self) -> List[Tuple[str, str]]:
        """Ordered (stage, key) nodes, collapsing the absent dither."""
        nodes = [("pmu", self.power), ("vrm", self.burst)]
        if self.dither != self.burst:
            nodes.append(("dither", self.dither))
        nodes.append(("emission", self.emit))
        if self.capture is not None:
            nodes.append(("capture", self.capture))
        return nodes


def capture_chain_keys(
    machine: Machine,
    activity: ActivityTrace,
    scenario: Optional[Scenario],
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> ChainKeys:
    """Fingerprint a trial's whole key chain without executing it.

    This is the planner's entry point: given the chain inputs (the RNG
    is read, never advanced), it names every stage the trial would
    compute, so trials can be grouped by shared prefix before anything
    runs.
    """
    k_power, k_burst, k_dither, k_emit = _chain_keys(
        machine,
        activity,
        profile,
        rng,
        allow_c_states,
        allow_p_states,
        vrm_dithering,
    )
    k_capture = None
    if scenario is not None:
        k_capture = fingerprint(CHAIN_SCHEMA, "capture", k_emit, scenario)
    return ChainKeys(k_power, k_burst, k_dither, k_emit, k_capture)


# ---------------------------------------------------------------------------
# Tracing helpers


def _stage_hit(name: str, key, rng: np.random.Generator) -> None:
    """Trace a stage served from cache (RNG digest is post-restore)."""
    if tracing_active():
        trace_event(
            "stage",
            name=name,
            cache="hit",
            key=key_prefix(key),
            rng=rng_digest(rng),
        )


def _stage_span(name: str, key, rng: np.random.Generator):
    """Span for a stage that actually computes (miss, or cache off)."""
    return span(
        name,
        {"cache": "off" if key is None else "miss", "key": key_prefix(key)},
        lazy=lambda: {"rng": rng_digest(rng)},
    )


def _compute_through_lock(cache, key, name, rng, compute, on_hit=None):
    """Run a missed stage under the per-key stampede lock and publish it.

    ``compute`` executes the stage (with its own span/timing brackets)
    and returns the stage value, leaving ``rng`` in the stage's exit
    state.  If a concurrent worker published the value while this one
    waited for the lock, the re-probe serves the cached value instead -
    restoring the RNG state exactly as a plain hit would - and emits a
    ``cache.stampede_avoided`` event, so every key is computed at most
    once across all workers sharing the disk layer.  ``on_hit`` lets
    call sites replay metric taps that the skipped compute would have
    issued.
    """
    with cache.lock(key) as locked:
        if locked:
            hit = cache.reprobe(key)
            if hit is not None:
                value, state_after = hit
                rng.bit_generator.state = state_after
                trace_event(
                    "cache.stampede_avoided",
                    key=key_prefix(key),
                    stage=name,
                )
                registry = get_metrics()
                if registry is not None:
                    registry.counter("cache.stampede_avoided").inc()
                _stage_hit(name, key, rng)
                if on_hit is not None:
                    on_hit(value)
                return value
        value = compute()
        cache.put(key, (value, _rng_state(rng)))
    return value


# ---------------------------------------------------------------------------
# Stages


def run_power_chain(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
) -> PowerStateTrace:
    """Digital half: activity -> power-state residencies."""
    cache = get_chain_cache()
    key = None
    if cache is not None:
        key = power_chain_key(
            machine, activity, profile, rng, allow_c_states, allow_p_states
        )
        hit = cache.get(key)
        if hit is not None:
            power_trace, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("pmu", key, rng)
            return power_trace

    def compute() -> PowerStateTrace:
        with stage("pmu"), _stage_span("pmu", key, rng):
            table = machine.power_table(
                allow_c=allow_c_states, allow_p=allow_p_states
            )
            pmu = PMU(table, governor=machine.governor(table, profile), rng=rng)
            return pmu.run(activity)

    if cache is None:
        return compute()
    return _compute_through_lock(cache, key, "pmu", rng, compute)


def _simulate_bursts(
    machine: Machine,
    profile: SimProfile,
    power_trace: PowerStateTrace,
    rng: np.random.Generator,
    *,
    allow_c_states: bool,
    allow_p_states: bool,
    key=None,
) -> BurstTrain:
    """VRM half: power states -> raw (pre-dithering) burst train."""
    with stage("vrm"), _stage_span("vrm", key, rng):
        table = machine.power_table(allow_c=allow_c_states, allow_p=allow_p_states)
        load = power_trace.current_draw(table.current_a)
        requested_v = power_trace.voltage(table.voltage_v)
        realized_v = VidInterface().apply(requested_v)
        buck = BuckConverter(machine.buck_design(profile), rng=rng)
        return buck.simulate(load, realized_v)


def _synthesize(
    machine: Machine, profile: SimProfile, bursts: BurstTrain, key=None
) -> np.ndarray:
    with stage("emission"), span(
        "emission", {"cache": "off" if key is None else "miss", "key": key_prefix(key)}
    ):
        tap_bursts(bursts)
        emitter = EmissionModel(field_gain=machine.emission_strength)
        wave = emitter.synthesize(bursts, profile.rf_sample_rate_hz)
        tap_emission(wave)
        return wave


def render_emission(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> np.ndarray:
    """Activity -> emitted RF waveform (before propagation).

    ``vrm_dithering`` optionally applies the Section VI spread-spectrum
    countermeasure (:class:`repro.countermeasures.VrmDithering`) to the
    burst train before synthesis.
    """
    tap_activity(activity)
    cache = get_chain_cache()
    if cache is None:
        power_trace = run_power_chain(
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        bursts = _simulate_bursts(
            machine,
            profile,
            power_trace,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        if vrm_dithering is not None:
            with stage("dither"), _stage_span("dither", None, rng):
                bursts = vrm_dithering.apply(
                    bursts, rng, time_scale=profile.time_scale
                )
        return _synthesize(machine, profile, bursts)

    # Derive the whole key chain from the inputs alone, then probe from
    # the coarsest layer down so a hit skips every stage it covers.
    k_power, k_burst, k_dither, k_emit = _chain_keys(
        machine,
        activity,
        profile,
        rng,
        allow_c_states,
        allow_p_states,
        vrm_dithering,
    )

    hit = cache.get(k_emit)
    if hit is not None:
        wave, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("emission", k_emit, rng)
        tap_emission(wave)
        return wave

    def compute_emit() -> np.ndarray:
        bursts = _resolve_bursts(
            cache,
            k_power,
            k_burst,
            k_dither,
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
            vrm_dithering=vrm_dithering,
        )
        # Synthesis is deterministic: RNG state is unchanged from the
        # dither/burst stage, so storing the current state is exact.
        return _synthesize(machine, profile, bursts, key=k_emit)

    return _compute_through_lock(
        cache, k_emit, "emission", rng, compute_emit, on_hit=tap_emission
    )


def render_bursts(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> BurstTrain:
    """Digital + VRM halves only: activity -> (optionally dithered)
    burst train.

    A stage-wise entry point for planners/executors that want to warm a
    shared burst-level prefix (e.g. a dithering sweep, where every trial
    shares the raw train but diverges at the dither stage) without
    paying for synthesis.
    """
    cache = get_chain_cache()
    if cache is None:
        power_trace = run_power_chain(
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        bursts = _simulate_bursts(
            machine,
            profile,
            power_trace,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        if vrm_dithering is not None:
            with stage("dither"), _stage_span("dither", None, rng):
                bursts = vrm_dithering.apply(
                    bursts, rng, time_scale=profile.time_scale
                )
        return bursts
    k_power, k_burst, k_dither, _ = _chain_keys(
        machine,
        activity,
        profile,
        rng,
        allow_c_states,
        allow_p_states,
        vrm_dithering,
    )
    return _resolve_bursts(
        cache,
        k_power,
        k_burst,
        k_dither,
        machine,
        activity,
        profile,
        rng,
        allow_c_states=allow_c_states,
        allow_p_states=allow_p_states,
        vrm_dithering=vrm_dithering,
    )


def _resolve_bursts(
    cache,
    k_power: str,
    k_burst: str,
    k_dither: str,
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool,
    allow_p_states: bool,
    vrm_dithering,
) -> BurstTrain:
    """The burst train a synthesis consumes: dithered when configured."""
    if vrm_dithering is None:
        return _cached_bursts(
            cache,
            k_power,
            k_burst,
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
    hit = cache.get(k_dither)
    if hit is not None:
        bursts, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("dither", k_dither, rng)
        return bursts

    def compute_dither() -> BurstTrain:
        bursts = _cached_bursts(
            cache,
            k_power,
            k_burst,
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
        )
        with stage("dither"), _stage_span("dither", k_dither, rng):
            return vrm_dithering.apply(bursts, rng, time_scale=profile.time_scale)

    return _compute_through_lock(cache, k_dither, "dither", rng, compute_dither)


def _cached_bursts(
    cache,
    k_power: str,
    k_burst: str,
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool,
    allow_p_states: bool,
) -> BurstTrain:
    """Raw (pre-dithering) burst train via the layered cache."""
    hit = cache.get(k_burst)
    if hit is not None:
        bursts, state_after = hit
        rng.bit_generator.state = state_after
        _stage_hit("vrm", k_burst, rng)
        return bursts

    def compute_bursts() -> BurstTrain:
        hit = cache.get(k_power)
        if hit is not None:
            power_trace, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("pmu", k_power, rng)
        else:

            def compute_power() -> PowerStateTrace:
                with stage("pmu"), _stage_span("pmu", k_power, rng):
                    table = machine.power_table(
                        allow_c=allow_c_states, allow_p=allow_p_states
                    )
                    pmu = PMU(
                        table, governor=machine.governor(table, profile), rng=rng
                    )
                    return pmu.run(activity)

            power_trace = _compute_through_lock(
                cache, k_power, "pmu", rng, compute_power
            )
        return _simulate_bursts(
            machine,
            profile,
            power_trace,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
            key=k_burst,
        )

    return _compute_through_lock(cache, k_burst, "vrm", rng, compute_bursts)


def render_capture(
    machine: Machine,
    activity: ActivityTrace,
    scenario: Scenario,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> IQCapture:
    """Full chain: activity -> complex baseband IQ capture.

    The finished capture is itself cached, keyed by the emission key
    plus the scenario, so a sweep that varies only the *receiver*
    (decoder/detector configuration) pays for the analog chain once.
    """
    cache = get_chain_cache()
    k_capture = None
    if cache is not None:
        keys = capture_chain_keys(
            machine,
            activity,
            scenario,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
            vrm_dithering=vrm_dithering,
        )
        k_capture = keys.capture
        hit = cache.get(k_capture)
        if hit is not None:
            capture, state_after = hit
            rng.bit_generator.state = state_after
            _stage_hit("sdr", k_capture, rng)
            # render_emission is skipped entirely on a capture hit, so
            # tap the endpoints that are still materialised here.
            tap_activity(activity)
            tap_capture(capture, adc_bits=8)
            return capture

    def compute_capture() -> IQCapture:
        wave = render_emission(
            machine,
            activity,
            profile,
            rng,
            allow_c_states=allow_c_states,
            allow_p_states=allow_p_states,
            vrm_dithering=vrm_dithering,
        )
        with stage("propagation"), _stage_span("propagation", k_capture, rng):
            antenna_v = scenario.apply(wave, profile.rf_sample_rate_hz, rng)
            tap_propagation(wave, antenna_v, scenario)
        with stage("sdr"), _stage_span("sdr", k_capture, rng):
            sdr = RtlSdrV3(sample_rate=profile.sdr_sample_rate_hz)
            capture = sdr.capture(
                antenna_v,
                profile.rf_sample_rate_hz,
                tuned_frequency_hz(machine, profile),
                rng,
            )
            tap_capture(capture, sdr.bits)
        return capture

    if cache is None:
        return compute_capture()

    def replay_taps(capture: IQCapture) -> None:
        tap_activity(activity)
        tap_capture(capture, adc_bits=8)

    return _compute_through_lock(
        cache, k_capture, "sdr", rng, compute_capture, on_hit=replay_taps
    )
