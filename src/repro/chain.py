"""The shared analog signal chain: activity trace -> SDR capture.

Both applications (covert channel, keylogging) drive the same physics:

    activity -> PMU (power states) -> VRM (bursts) -> emission
             -> propagation/noise -> antenna -> SDR -> IQ capture

This module is the single implementation of that chain.
"""

from __future__ import annotations

import numpy as np

from .em.environment import Scenario
from .params import SimProfile
from .power.pmu import PMU
from .sdr.rtlsdr import RtlSdrV3
from .systems.laptops import Machine
from .types import ActivityTrace, IQCapture, PowerStateTrace
from .vrm.buck import BuckConverter
from .vrm.emission import EmissionModel
from .vrm.vid import VidInterface


def tuned_frequency_hz(machine: Machine, profile: SimProfile) -> float:
    """SDR tuning for a machine: midway between f0 and its first harmonic
    (profile-scaled), so both Eq. 1 components are in band."""
    return 1.5 * machine.vrm_frequency_hz / profile.total_freq_divisor


def paper_tuned_frequency_hz(machine: Machine) -> float:
    """Paper-scale tuning frequency (for profile-invariant link physics)."""
    return 1.5 * machine.vrm_frequency_hz


def run_power_chain(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
) -> PowerStateTrace:
    """Digital half: activity -> power-state residencies."""
    table = machine.power_table(allow_c=allow_c_states, allow_p=allow_p_states)
    pmu = PMU(table, governor=machine.governor(table, profile), rng=rng)
    return pmu.run(activity)


def render_emission(
    machine: Machine,
    activity: ActivityTrace,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> np.ndarray:
    """Activity -> emitted RF waveform (before propagation).

    ``vrm_dithering`` optionally applies the Section VI spread-spectrum
    countermeasure (:class:`repro.countermeasures.VrmDithering`) to the
    burst train before synthesis.
    """
    table = machine.power_table(allow_c=allow_c_states, allow_p=allow_p_states)
    power_trace = run_power_chain(
        machine,
        activity,
        profile,
        rng,
        allow_c_states=allow_c_states,
        allow_p_states=allow_p_states,
    )
    load = power_trace.current_draw(table.current_a)
    requested_v = power_trace.voltage(table.voltage_v)
    realized_v = VidInterface().apply(requested_v)
    buck = BuckConverter(machine.buck_design(profile), rng=rng)
    bursts = buck.simulate(load, realized_v)
    if vrm_dithering is not None:
        bursts = vrm_dithering.apply(bursts, rng, time_scale=profile.time_scale)
    emitter = EmissionModel(field_gain=machine.emission_strength)
    return emitter.synthesize(bursts, profile.rf_sample_rate_hz)


def render_capture(
    machine: Machine,
    activity: ActivityTrace,
    scenario: Scenario,
    profile: SimProfile,
    rng: np.random.Generator,
    *,
    allow_c_states: bool = True,
    allow_p_states: bool = True,
    vrm_dithering=None,
) -> IQCapture:
    """Full chain: activity -> complex baseband IQ capture."""
    wave = render_emission(
        machine,
        activity,
        profile,
        rng,
        allow_c_states=allow_c_states,
        allow_p_states=allow_p_states,
        vrm_dithering=vrm_dithering,
    )
    antenna_v = scenario.apply(wave, profile.rf_sample_rate_hz, rng)
    sdr = RtlSdrV3(sample_rate=profile.sdr_sample_rate_hz)
    return sdr.capture(
        antenna_v,
        profile.rf_sample_rate_hz,
        tuned_frequency_hz(machine, profile),
        rng,
    )
