"""Signal acquisition: Eq. 1 of the paper.

The received IQ stream behaves like on-off keying in the frequency
domain, so the receiver reduces it to a single envelope

    Y[n] = sum_{k in S} abs(F_n[k])

where ``F_n`` is a sliding FFT of size M and S is the set of bins
carrying the VRM's spectral lines - by default the fundamental and its
first harmonic, the combination the paper uses for Figure 4.  Summing
several components raises the 0/1 magnitude separation, which is the
point of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..dsp.stft import Spectrogram, stft
from ..types import IQCapture


@dataclass
class Envelope:
    """The acquired envelope ``Y[n]`` and its time axis."""

    samples: np.ndarray
    frame_rate: float
    times: np.ndarray

    @property
    def duration(self) -> float:
        return self.samples.size / self.frame_rate

    def slice_seconds(self, start_s: float, end_s: float) -> "Envelope":
        """Extract a time slice (used for batch processing)."""
        i0 = int(max(start_s, 0.0) * self.frame_rate)
        i1 = int(min(end_s, self.duration) * self.frame_rate)
        return Envelope(
            samples=self.samples[i0:i1],
            frame_rate=self.frame_rate,
            times=self.times[i0:i1],
        )


@dataclass(frozen=True)
class AcquisitionConfig:
    """Parameters of the Eq. 1 acquisition step.

    Attributes
    ----------
    fft_size:
        Sliding-FFT length M (paper: 1024).
    hop:
        Frame hop in samples.  The paper uses "maximum overlapping"
        (hop 1), which is quadratically expensive; the default of 32
        keeps the frame period far below a bit period (see DESIGN.md).
    harmonics:
        Which multiples of the VRM frequency to include in S (paper
        Figure 4 uses the fundamental and first harmonic: ``(1, 2)``).
    bin_halfwidth:
        Bins to include either side of each line, tolerating frequency
        drift and ppm offset.
    window:
        Analysis window name.
    """

    fft_size: int = 1024
    hop: int = 32
    harmonics: Tuple[int, ...] = (1, 2)
    bin_halfwidth: int = 1
    window: str = "hann"

    def __post_init__(self) -> None:
        if not self.harmonics:
            raise ValueError("need at least one harmonic in S")
        if any(h < 1 for h in self.harmonics):
            raise ValueError("harmonics are 1-based multiples of f0")
        if self.bin_halfwidth < 0:
            raise ValueError("bin_halfwidth cannot be negative")


def harmonic_bins(
    spectrogram: Spectrogram,
    capture: IQCapture,
    vrm_frequency_hz: float,
    config: AcquisitionConfig,
) -> np.ndarray:
    """Bin indices of the considered frequency components S.

    Harmonics that fall outside the capture bandwidth are skipped; at
    least one must remain.
    """
    nyquist = capture.sample_rate / 2
    bins = []
    for h in config.harmonics:
        offset = capture.baseband_offset(h * vrm_frequency_hz)
        if abs(offset) >= nyquist:
            continue
        center = spectrogram.nearest_bin(offset)
        lo = max(center - config.bin_halfwidth, 0)
        hi = min(center + config.bin_halfwidth, spectrogram.frequencies.size - 1)
        bins.extend(range(lo, hi + 1))
    if not bins:
        raise ValueError(
            "no requested harmonic falls inside the capture bandwidth"
        )
    return np.unique(np.array(bins, dtype=int))


def acquire(
    capture: IQCapture,
    vrm_frequency_hz: float,
    config: AcquisitionConfig = AcquisitionConfig(),
) -> Envelope:
    """Compute the Eq. 1 envelope from an IQ capture."""
    if vrm_frequency_hz <= 0:
        raise ValueError("VRM frequency must be positive")
    spec = stft(
        capture.samples,
        capture.sample_rate,
        fft_size=config.fft_size,
        hop=config.hop,
        window=config.window,
    )
    bins = harmonic_bins(spec, capture, vrm_frequency_hz, config)
    y = spec.band_energy(bins)
    return Envelope(samples=y, frame_rate=spec.frame_rate, times=spec.times)
