"""The paper's contribution: the PMU side-channel receiver pipeline."""

from .acquisition import AcquisitionConfig, Envelope, acquire, harmonic_bins
from .align import ChannelMetrics, align_bits
from .coding import (
    ParityCode,
    as_bit_array,
    bits_to_bytes,
    bytes_to_bits,
    hamming_decode,
    hamming_encode,
)
from .decoder import BatchDecoder, DecodeResult, DecoderConfig
from .edges import EdgeConfig, coarse_symbol_frames, detect_bit_starts, edge_response
from .labeling import LabelingResult, bit_average_powers, label_bits, label_envelope_bits
from .pipeline import ReceiveResult, receive
from .sync import DEFAULT_PREAMBLE, FrameFormat, locate_preamble, strip_header
from .timing import (
    PulseWidthStats,
    analyze_pulse_widths,
    drop_spurious_starts,
    fill_missing_starts,
    pulse_widths,
    signaling_time,
)

__all__ = [
    "AcquisitionConfig",
    "BatchDecoder",
    "ChannelMetrics",
    "DEFAULT_PREAMBLE",
    "DecodeResult",
    "DecoderConfig",
    "EdgeConfig",
    "Envelope",
    "FrameFormat",
    "LabelingResult",
    "ParityCode",
    "PulseWidthStats",
    "ReceiveResult",
    "acquire",
    "align_bits",
    "analyze_pulse_widths",
    "as_bit_array",
    "bit_average_powers",
    "bits_to_bytes",
    "bytes_to_bits",
    "coarse_symbol_frames",
    "detect_bit_starts",
    "drop_spurious_starts",
    "edge_response",
    "fill_missing_starts",
    "hamming_decode",
    "hamming_encode",
    "harmonic_bins",
    "label_bits",
    "label_envelope_bits",
    "locate_preamble",
    "pulse_widths",
    "receive",
    "signaling_time",
    "strip_header",
]
