"""Insertion/deletion-aware comparison of bit streams (Section IV-B4).

The covert channel can insert bits (a spurious edge splits one bit in
two) and delete bits (an interrupt suppresses an edge, merging bits).
Plain positional comparison would count every bit after the first
insertion as an error, so transmitted and received streams are aligned
with edit-distance dynamic programming first; substitutions give the
BER, and the insertion/deletion counts give IP and DP as reported in
Tables II and III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coding import as_bit_array


@dataclass(frozen=True)
class ChannelMetrics:
    """Per-run channel quality figures, paper Table II columns."""

    bit_errors: int
    insertions: int
    deletions: int
    transmitted: int
    received: int

    @property
    def ber(self) -> float:
        """Substitution errors per transmitted bit."""
        if self.transmitted == 0:
            return 0.0
        return self.bit_errors / self.transmitted

    @property
    def insertion_probability(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return self.insertions / self.transmitted

    @property
    def deletion_probability(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return self.deletions / self.transmitted

    def combined(self, other: "ChannelMetrics") -> "ChannelMetrics":
        """Pool two runs' counts (used for multi-run averages)."""
        return ChannelMetrics(
            bit_errors=self.bit_errors + other.bit_errors,
            insertions=self.insertions + other.insertions,
            deletions=self.deletions + other.deletions,
            transmitted=self.transmitted + other.transmitted,
            received=self.received + other.received,
        )


def align_bits(transmitted, received) -> ChannelMetrics:
    """Edit-distance alignment of two bit streams.

    Uses unit costs for substitution, insertion and deletion, then backs
    the optimal path out of the DP table to count each operation.  The
    DP rows are vectorised over the received stream, keeping the cost at
    O(n*m) cheap NumPy operations.
    """
    tx = as_bit_array(transmitted)
    rx = as_bit_array(received)
    n, m = tx.size, rx.size
    if n == 0:
        return ChannelMetrics(0, m, 0, 0, m)
    if m == 0:
        return ChannelMetrics(0, 0, n, n, 0)
    # dp[i, j]: edit distance between tx[:i] and rx[:j].
    dp = np.zeros((n + 1, m + 1), dtype=np.int32)
    dp[0, :] = np.arange(m + 1)
    dp[:, 0] = np.arange(n + 1)
    j_idx = np.arange(1, m + 1, dtype=np.int32)
    for i in range(1, n + 1):
        sub_cost = (rx != tx[i - 1]).astype(np.int32)
        row_prev = dp[i - 1]
        # Substitution / deletion candidates are independent per column;
        # the insertion term couples columns left-to-right, but
        # row[j] = min_{j' <= j} cand[j'] + (j - j') collapses to a
        # prefix minimum of (cand[j'] - j'), keeping the row vectorised.
        cand = np.minimum(row_prev[:-1] + sub_cost, row_prev[1:] + 1)
        shifted = np.concatenate(([dp[i, 0]], cand - j_idx))
        dp[i, 1:] = np.minimum.accumulate(shifted)[1:] + j_idx
    # Backtrack to classify operations.
    i, j = n, m
    errors = insertions = deletions = 0
    while i > 0 or j > 0:
        if i > 0 and j > 0 and dp[i, j] == dp[i - 1, j - 1] + (tx[i - 1] != rx[j - 1]):
            if tx[i - 1] != rx[j - 1]:
                errors += 1
            i -= 1
            j -= 1
        elif i > 0 and dp[i, j] == dp[i - 1, j] + 1:
            deletions += 1
            i -= 1
        else:
            insertions += 1
            j -= 1
    return ChannelMetrics(
        bit_errors=errors,
        insertions=insertions,
        deletions=deletions,
        transmitted=n,
        received=m,
    )
