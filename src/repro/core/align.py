"""Insertion/deletion-aware comparison of bit streams (Section IV-B4).

The covert channel can insert bits (a spurious edge splits one bit in
two) and delete bits (an interrupt suppresses an edge, merging bits).
Plain positional comparison would count every bit after the first
insertion as an error, so transmitted and received streams are aligned
with edit-distance dynamic programming first; substitutions give the
BER, and the insertion/deletion counts give IP and DP as reported in
Tables II and III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coding import as_bit_array


@dataclass(frozen=True)
class ChannelMetrics:
    """Per-run channel quality figures, paper Table II columns."""

    bit_errors: int
    insertions: int
    deletions: int
    transmitted: int
    received: int

    @property
    def ber(self) -> float:
        """Substitution errors per transmitted bit."""
        if self.transmitted == 0:
            return 0.0
        return self.bit_errors / self.transmitted

    @property
    def insertion_probability(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return self.insertions / self.transmitted

    @property
    def deletion_probability(self) -> float:
        if self.transmitted == 0:
            return 0.0
        return self.deletions / self.transmitted

    def combined(self, other: "ChannelMetrics") -> "ChannelMetrics":
        """Pool two runs' counts (used for multi-run averages)."""
        return ChannelMetrics(
            bit_errors=self.bit_errors + other.bit_errors,
            insertions=self.insertions + other.insertions,
            deletions=self.deletions + other.deletions,
            transmitted=self.transmitted + other.transmitted,
            received=self.received + other.received,
        )


def align_bits(transmitted, received) -> ChannelMetrics:
    """Edit-distance alignment of two bit streams.

    Uses unit costs for substitution, insertion and deletion.  Among the
    minimum-cost alignments the one with the *most* substitutions is
    reported (ties between "one substitution" and "one insertion plus
    one deletion elsewhere" resolve toward the substitution, matching
    how the paper's tables attribute errors).  That canonical choice
    makes the counts symmetric by construction: any optimal alignment
    satisfies ``S + I + D = C`` and ``I - D = m - n``, so the
    decomposition is determined entirely by the substitution count, and
    the maximum-substitution value is invariant under swapping the two
    streams (transposing the DP swaps insertions with deletions but
    leaves matches and substitutions in place).  Hence
    ``align_bits(a, b)`` and ``align_bits(b, a)`` always agree, with
    insertions and deletions exchanged.

    The DP rows are vectorised over the received stream, keeping the
    cost at O(n*m) cheap NumPy operations: each cell carries the single
    integer ``cost * K - substitutions`` (``K`` exceeds any possible
    substitution count), so the lexicographic (min cost, max subs)
    objective stays an ordinary ``min``.
    """
    tx = as_bit_array(transmitted)
    rx = as_bit_array(received)
    n, m = tx.size, rx.size
    if n == 0:
        return ChannelMetrics(0, m, 0, 0, m)
    if m == 0:
        return ChannelMetrics(0, 0, n, n, 0)
    big = np.int64(min(n, m) + 1)  # strictly above any substitution count
    # dp[i, j]: cost * big - substitutions over tx[:i] vs rx[:j].
    dp = np.zeros((n + 1, m + 1), dtype=np.int64)
    dp[0, :] = np.arange(m + 1, dtype=np.int64) * big
    dp[:, 0] = np.arange(n + 1, dtype=np.int64) * big
    j_idx = np.arange(1, m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        sub_cost = (rx != tx[i - 1]).astype(np.int64)
        row_prev = dp[i - 1]
        # Substitution / deletion candidates are independent per column
        # (a match adds 0, a substitution big - 1, a deletion big); the
        # insertion term couples columns left-to-right, but
        # row[j] = min_{j' <= j} cand[j'] + (j - j') * big collapses to
        # a prefix minimum of (cand[j'] - j' * big), keeping the row
        # vectorised.
        cand = np.minimum(
            row_prev[:-1] + sub_cost * (big - 1), row_prev[1:] + big
        )
        shifted = np.concatenate(([dp[i, 0]], cand - j_idx * big))
        dp[i, 1:] = np.minimum.accumulate(shifted)[1:] + j_idx * big
    value = int(dp[n, m])
    cost = (value + int(big) - 1) // int(big)
    errors = cost * int(big) - value
    insertions = (cost - errors + (m - n)) // 2
    deletions = (cost - errors + (n - m)) // 2
    return ChannelMetrics(
        bit_errors=errors,
        insertions=insertions,
        deletions=deletions,
        transmitted=n,
        received=m,
    )
