"""Transmission framing and synchronisation (paper Section IV-C1).

The transmitter prepends:

1. an interleaved 1/0 training sequence (gives the receiver a clean
   symbol-rate reference and a bimodal power sample for thresholding),
2. a short run of known zeros, then
3. a preamble marking the start of data.

The receiver locates the preamble in the decoded bit stream by sliding
Hamming distance, tolerating a few bit errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .coding import as_bit_array

#: Default preamble: a 13-bit Barker-like pattern with good autocorrelation.
DEFAULT_PREAMBLE = np.array([1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=int)


@dataclass(frozen=True)
class FrameFormat:
    """Layout of one covert transmission.

    Attributes
    ----------
    training_bits:
        Number of alternating 1/0 bits at the start.
    zero_run:
        Number of known zeros after the training sequence.
    preamble:
        Start-of-data marker pattern.
    """

    training_bits: int = 32
    zero_run: int = 8
    preamble: np.ndarray = None  # set in __post_init__

    def __post_init__(self) -> None:
        if self.training_bits < 2:
            raise ValueError("training sequence needs at least 2 bits")
        if self.zero_run < 0:
            raise ValueError("zero run cannot be negative")
        if self.preamble is None:
            object.__setattr__(self, "preamble", DEFAULT_PREAMBLE.copy())

    @property
    def header(self) -> np.ndarray:
        """All bits before the payload."""
        training = np.tile([1, 0], self.training_bits // 2 + 1)[: self.training_bits]
        return np.concatenate(
            [training, np.zeros(self.zero_run, dtype=int), self.preamble]
        )

    def frame(self, payload_bits: np.ndarray) -> np.ndarray:
        """Assemble a full transmission: header + payload."""
        return np.concatenate([self.header, as_bit_array(payload_bits)])


def locate_preamble(
    bits: np.ndarray,
    preamble: np.ndarray,
    max_errors: int = 2,
    search_from: int = 0,
) -> Optional[int]:
    """Index just *after* the best preamble match, or None.

    Slides the preamble over ``bits`` starting at ``search_from`` and
    returns the end of the lowest-Hamming-distance alignment, provided
    that distance is within ``max_errors``.
    """
    bits = as_bit_array(bits)
    preamble = as_bit_array(preamble)
    n, p = bits.size, preamble.size
    if n < p:
        return None
    best_pos, best_err = None, max_errors + 1
    for i in range(search_from, n - p + 1):
        err = int(np.count_nonzero(bits[i : i + p] != preamble))
        if err < best_err:
            best_err = err
            best_pos = i
            if err == 0:
                break
    if best_pos is None:
        return None
    return best_pos + p


def strip_header(
    bits: np.ndarray, fmt: FrameFormat, max_errors: int = 2
) -> Optional[np.ndarray]:
    """Extract the payload from a decoded stream, or None if no preamble.

    The preamble search starts shortly before the nominal header length
    to stay robust to a few inserted/deleted header bits.
    """
    nominal = fmt.header.size - fmt.preamble.size
    search_from = max(nominal - 6, 0)
    pos = locate_preamble(bits, fmt.preamble, max_errors, search_from)
    if pos is None:
        # Fall back to a full search (heavy insertions before preamble).
        pos = locate_preamble(bits, fmt.preamble, max_errors, 0)
    if pos is None:
        return None
    return as_bit_array(bits)[pos:]
