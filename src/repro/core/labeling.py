"""Bit labeling by average signal power (paper Section IV-B3, Eq. 2).

A bit is labeled one when the *average* power of its envelope samples
exceeds a threshold:

    (1/N) * sum_n |s[n]|^2 > thr

Averaging (instead of totalling) makes the decision robust to the
signalling-period variation: a zero whose period simply lasted longer
does not accumulate its way over the threshold.  The threshold itself is
chosen per batch as the midpoint of the two dominant modes of the
per-bit average-power distribution (paper Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dsp.detection import bimodal_threshold
from .acquisition import Envelope


@dataclass
class LabelingResult:
    """Labeled bits plus the diagnostics behind the decision."""

    bits: np.ndarray
    powers: np.ndarray
    threshold: float


def bit_average_powers(
    envelope: Envelope, starts: np.ndarray, skip_fraction: float = 0.15
) -> np.ndarray:
    """Average power of the envelope inside each bit interval.

    ``skip_fraction`` of each interval's head is excluded: every bit
    (including zeros) begins with the transmitter's housekeeping burst,
    which would otherwise bias zero-bits upward.
    """
    starts = np.asarray(starts, dtype=int)
    if starts.size == 0:
        return np.empty(0)
    bounds = np.append(starts, envelope.samples.size)
    powers = np.empty(starts.size)
    sq = envelope.samples.astype(float) ** 2
    csum = np.concatenate([[0.0], np.cumsum(sq)])
    for i in range(starts.size):
        lo, hi = bounds[i], bounds[i + 1]
        skip = int((hi - lo) * skip_fraction)
        lo = min(lo + skip, hi - 1) if hi > lo else lo
        n = max(hi - lo, 1)
        powers[i] = (csum[hi] - csum[lo]) / n
    return powers


def label_bits(
    powers: np.ndarray, threshold: Optional[float] = None
) -> LabelingResult:
    """Apply Eq. 2 with an adaptive (or supplied) threshold."""
    powers = np.asarray(powers, dtype=float)
    if powers.size == 0:
        return LabelingResult(np.empty(0, dtype=int), powers, 0.0)
    thr = float(threshold) if threshold is not None else bimodal_threshold(powers)
    bits = (powers > thr).astype(int)
    return LabelingResult(bits=bits, powers=powers, threshold=thr)


def label_envelope_bits(
    envelope: Envelope,
    starts: np.ndarray,
    threshold: Optional[float] = None,
    skip_fraction: float = 0.15,
) -> LabelingResult:
    """Convenience wrapper: powers then labels in one call."""
    powers = bit_average_powers(envelope, starts, skip_fraction=skip_fraction)
    return label_bits(powers, threshold)
