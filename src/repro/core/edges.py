"""Bit-start detection (paper Section IV-B2, Figure 5).

Every transmitted bit - even a zero - begins with a sharp envelope rise,
because the transmitter must execute code (finish the previous usleep,
read the next data bit) before idling again.  The receiver exploits
this: it convolves the envelope with a +1/-1 step kernel that mimics a
derivative, then takes local maxima of the convolution as bit starting
points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.detection import local_maxima
from ..dsp.filters import edge_kernel
from .acquisition import Envelope


@dataclass(frozen=True)
class EdgeConfig:
    """Edge-detector parameters.

    Attributes
    ----------
    kernel_fraction:
        Kernel length ``l_d`` as a fraction of the expected symbol
        period (in envelope frames).  The paper notes ``l_d`` depends on
        the sampling rate; tying it to the symbol period makes it
        self-scaling.
    min_separation_fraction:
        Minimum spacing between accepted edges, as a fraction of the
        expected symbol period; suppresses double-detections on one
        rise.
    min_prominence_rel:
        Required peak prominence relative to the convolution's overall
        dynamic range; rejects noise wiggles.
    """

    kernel_fraction: float = 0.5
    min_separation_fraction: float = 0.6
    min_prominence_rel: float = 0.12

    def __post_init__(self) -> None:
        if self.kernel_fraction <= 0:
            raise ValueError("kernel fraction must be positive")
        if not 0 < self.min_separation_fraction <= 1:
            raise ValueError("min separation fraction must be in (0, 1]")


def edge_response(envelope: Envelope, kernel_length: int) -> np.ndarray:
    """The derivative-mimicking convolution (the dotted line in Fig. 5).

    Positive peaks mark rising edges.  Output is aligned with the
    envelope (same length).
    """
    kernel = edge_kernel(max(kernel_length, 2))
    response = np.convolve(envelope.samples, kernel, mode="same")
    return response


def detect_bit_starts(
    envelope: Envelope,
    expected_symbol_frames: float,
    config: EdgeConfig = EdgeConfig(),
) -> np.ndarray:
    """Find candidate bit starting points (frame indices).

    Parameters
    ----------
    envelope:
        The Eq. 1 envelope.
    expected_symbol_frames:
        Rough symbol period in envelope frames; sets the kernel length
        and minimum edge spacing.  The decoder bootstraps this from the
        known transmitter configuration or a coarse autocorrelation.
    """
    if expected_symbol_frames <= 0:
        raise ValueError("expected symbol period must be positive")
    kernel_length = max(int(expected_symbol_frames * config.kernel_fraction), 2)
    response = edge_response(envelope, kernel_length)
    span = float(response.max() - response.min())
    if span <= 0:
        return np.empty(0, dtype=int)
    min_sep = max(int(expected_symbol_frames * config.min_separation_fraction), 1)
    peaks = local_maxima(
        response,
        min_distance=min_sep,
        min_prominence=config.min_prominence_rel * span,
    )
    # Keep only rising edges (positive response).
    peaks = peaks[response[peaks] > 0]
    # The convolution peaks at the centre of the kernel's +/- transition;
    # shift back by half a kernel so starts align with the envelope rise.
    starts = peaks - kernel_length // 2
    return starts[starts >= 0]


def coarse_symbol_frames(envelope: Envelope, max_lag_frames: int) -> float:
    """Bootstrap the symbol period from the envelope's autocorrelation.

    Used when the receiver knows nothing about the transmitter: the
    synchronisation preamble of alternating ones/zeros produces a strong
    periodic component at the symbol rate.
    """
    y = envelope.samples - envelope.samples.mean()
    if y.size < 4:
        raise ValueError("envelope too short for period estimation")
    n = min(max_lag_frames, y.size - 1)
    ac = np.correlate(y, y, mode="full")[y.size - 1 :][: n + 1]
    if ac[0] <= 0:
        return float(n)
    ac = ac / ac[0]
    # Candidate peaks past lag zero.  An alternating 1/0 training
    # sequence makes the *two-bit* lag the global maximum, so take the
    # smallest-lag peak that is still a substantial fraction of the
    # best peak rather than the argmax.
    peaks = local_maxima(ac, min_distance=2)
    peaks = peaks[peaks > 1]
    if peaks.size == 0:
        return float(n)
    best = float(ac[peaks].max())
    significant = peaks[ac[peaks] >= 0.35 * best]
    return float(significant[0])
