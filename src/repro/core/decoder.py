"""The batch receiver: envelope in, bit stream out (Section IV-B).

Processing follows the paper's order exactly:

1. acquire the Eq. 1 envelope,
2. detect candidate bit starts with the derivative-kernel convolution,
3. estimate the signalling time as the median (CDF = 0.5) of the
   inter-start distances,
4. drop double-detections and fill gaps the edge detector missed,
5. label each bit by its average power against a per-batch bimodal
   threshold.

The paper processes the stream in *batches*: the timing and threshold of
each bit are determined together with a number of bit periods before and
after it, trading a little latency for a large error-rate reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..dsp.detection import bimodal_threshold
from ..obs.metrics import tap_receiver
from ..types import IQCapture
from .acquisition import AcquisitionConfig, Envelope, acquire
from .edges import EdgeConfig, coarse_symbol_frames, detect_bit_starts
from .labeling import bit_average_powers
from .timing import (
    drop_spurious_starts,
    fill_missing_starts,
    signaling_time,
)


def _default_acquisition() -> AcquisitionConfig:
    """Covert-channel acquisition default.

    The paper quotes M=1024 at 2.4 MS/s; that window spans ~1.5 bit
    periods and, in this simulation, smears enough edges to hurt the
    deletion rate badly (see the fft-size ablation bench).  M=256 keeps
    the window under half a bit period while still resolving the VRM
    lines, so it is the library default; the figure-generation
    experiments that illustrate the paper's plots keep M=1024.
    """
    return AcquisitionConfig(fft_size=256, hop=32)


@dataclass(frozen=True)
class DecoderConfig:
    """All receiver knobs in one place.

    ``auto_window`` scales the acquisition FFT window with the expected
    symbol period (targeting ~0.4 bit periods per window, like the
    paper's 427 us window against ~1 ms Windows bits): long bits then
    integrate over interrupt-length bursts instead of resolving them as
    spurious edges.  Explicitly configured acquisitions disable it.
    """

    acquisition: AcquisitionConfig = field(default_factory=_default_acquisition)
    edges: EdgeConfig = field(default_factory=EdgeConfig)
    batch_bits: int = 64
    skip_fraction: float = 0.15
    auto_window: bool = True

    def __post_init__(self) -> None:
        if self.batch_bits < 8:
            raise ValueError("batches need at least 8 bits for thresholding")

    def acquisition_for(
        self, expected_bit_period_s, sample_rate: float
    ) -> AcquisitionConfig:
        """The acquisition config, window-scaled when appropriate."""
        if not self.auto_window or expected_bit_period_s is None:
            return self.acquisition
        if self.acquisition != _default_acquisition():
            # An explicitly chosen acquisition always wins.
            return self.acquisition
        samples_per_bit = expected_bit_period_s * sample_rate
        target = 0.4 * samples_per_bit
        fft_size = 64
        while fft_size * 2 <= target and fft_size < 2048:
            fft_size *= 2
        if fft_size == self.acquisition.fft_size:
            return self.acquisition
        return AcquisitionConfig(
            fft_size=fft_size,
            hop=max(fft_size // 8, 8),
            harmonics=self.acquisition.harmonics,
            bin_halfwidth=self.acquisition.bin_halfwidth,
            window=self.acquisition.window,
        )


@dataclass
class DecodeResult:
    """Decoded bits plus every intermediate the experiments plot."""

    bits: np.ndarray
    starts: np.ndarray
    period_frames: float
    thresholds: List[float]
    powers: np.ndarray
    envelope: Envelope

    @property
    def symbol_rate_hz(self) -> float:
        """Recovered symbol rate in bits per second."""
        if self.period_frames <= 0:
            return 0.0
        return self.envelope.frame_rate / self.period_frames


class BatchDecoder:
    """Decode an IQ capture of covert-channel traffic.

    Parameters
    ----------
    vrm_frequency_hz:
        The target's VRM switching frequency (found by the attacker with
        a quick spectrum scan; known per laptop model).
    expected_bit_period_s:
        Rough symbol period used to size the edge kernel.  When omitted
        the decoder bootstraps it from the envelope autocorrelation of
        the training sequence.
    config:
        Receiver parameters.
    """

    def __init__(
        self,
        vrm_frequency_hz: float,
        expected_bit_period_s: Optional[float] = None,
        config: DecoderConfig = DecoderConfig(),
    ):
        if vrm_frequency_hz <= 0:
            raise ValueError("VRM frequency must be positive")
        self.vrm_frequency_hz = vrm_frequency_hz
        self.expected_bit_period_s = expected_bit_period_s
        self.config = config

    def decode(self, capture: IQCapture) -> DecodeResult:
        """Run the full receive pipeline on one capture."""
        acquisition = self.config.acquisition_for(
            self.expected_bit_period_s, capture.sample_rate
        )
        envelope = acquire(capture, self.vrm_frequency_hz, acquisition)
        return self.decode_envelope(envelope)

    def decode_envelope(self, envelope: Envelope) -> DecodeResult:
        """Decode a pre-acquired envelope (used by ablations)."""
        expected_frames = self._expected_frames(envelope)
        starts = detect_bit_starts(envelope, expected_frames, self.config.edges)
        if starts.size < 3:
            tap_receiver(np.empty(0), starts.size)
            return DecodeResult(
                bits=np.empty(0, dtype=int),
                starts=starts,
                period_frames=expected_frames,
                thresholds=[],
                powers=np.empty(0),
                envelope=envelope,
            )
        period = signaling_time(starts, hint=expected_frames)
        starts = drop_spurious_starts(starts, period)
        starts = fill_missing_starts(starts, period, envelope.samples.size)
        powers = bit_average_powers(
            envelope, starts, skip_fraction=self.config.skip_fraction
        )
        bits, thresholds = self._label_batches(powers)
        tap_receiver(powers, starts.size)
        return DecodeResult(
            bits=bits,
            starts=starts,
            period_frames=period,
            thresholds=thresholds,
            powers=powers,
            envelope=envelope,
        )

    def _expected_frames(self, envelope: Envelope) -> float:
        if self.expected_bit_period_s is not None:
            return self.expected_bit_period_s * envelope.frame_rate
        max_lag = min(envelope.samples.size // 2, 8192)
        return coarse_symbol_frames(envelope, max_lag)

    def _label_batches(self, powers: np.ndarray):
        """Per-batch Eq. 2 thresholding with a global fallback.

        A batch consisting of (almost) only zeros or only ones has no
        bimodal structure to estimate a threshold from; such batches
        reuse the global threshold computed over the whole stream
        (which always sees both levels thanks to the training header).
        """
        if powers.size == 0:
            return np.empty(0, dtype=int), []
        global_thr = bimodal_threshold(powers)
        bits = np.empty(powers.size, dtype=int)
        thresholds: List[float] = []
        step = self.config.batch_bits
        for lo in range(0, powers.size, step):
            batch = powers[lo : lo + step]
            n_hi = int(np.count_nonzero(batch > global_thr))
            mixed = 0 < n_hi < batch.size
            if mixed and batch.size >= 16:
                thr = bimodal_threshold(batch)
                # Sanity: a batch threshold wildly off the global one
                # means the mode detection latched onto noise.
                span = powers.max() - powers.min()
                if abs(thr - global_thr) > 0.5 * span:
                    thr = global_thr
            else:
                thr = global_thr
            thresholds.append(float(thr))
            bits[lo : lo + batch.size] = (batch > thr).astype(int)
        return bits, thresholds
