"""Channel coding for the covert channel.

The paper keeps the transmitter trivially simple (it must be typed into
an air-gapped machine by hand), so it uses "a very simple (parity) code"
whose codewords keep a minimum Hamming distance of three - i.e. a
single-error-correcting code.  We implement the canonical such code,
Hamming(7,4), plus helpers for the raw bit plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

#: Generator matrix for systematic Hamming(7,4): codeword = [d1..d4 p1..p3].
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=int,
)

#: Parity-check matrix consistent with ``_G``.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=int,
)


def as_bit_array(bits: Iterable[int]) -> np.ndarray:
    """Normalise any 0/1 iterable to an int array, validating values."""
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    arr = arr.astype(int)
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0 or 1")
    return arr


def bytes_to_bits(data: bytes) -> np.ndarray:
    """MSB-first bit expansion of a byte string."""
    if not data:
        return np.empty(0, dtype=int)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8)).astype(int)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`; pads the tail with zeros."""
    bits = as_bit_array(bits)
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=int)])
    return np.packbits(bits.astype(np.uint8)).tobytes()


def hamming_encode(data_bits: Iterable[int]) -> np.ndarray:
    """Encode data bits with Hamming(7,4); zero-pads to a multiple of 4."""
    bits = as_bit_array(data_bits)
    pad = (-bits.size) % 4
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=int)])
    blocks = bits.reshape(-1, 4)
    codewords = blocks @ _G % 2
    return codewords.reshape(-1)


def hamming_decode(code_bits: Iterable[int]) -> Tuple[np.ndarray, int]:
    """Decode Hamming(7,4), correcting up to one error per codeword.

    Returns ``(data_bits, corrected_count)``.  A trailing partial
    codeword (from insertions/deletions upstream) is dropped.
    """
    bits = as_bit_array(code_bits)
    usable = (bits.size // 7) * 7
    blocks = bits[:usable].reshape(-1, 7).copy()
    corrected = 0
    syndromes = blocks @ _H.T % 2
    # Map each non-zero syndrome to the column of H it matches.
    for i in range(blocks.shape[0]):
        s = syndromes[i]
        if not s.any():
            continue
        matches = np.nonzero((_H.T == s).all(axis=1))[0]
        if matches.size:
            blocks[i, matches[0]] ^= 1
            corrected += 1
    return blocks[:, :4].reshape(-1), corrected


def rz_encode(bits: Iterable[int]) -> np.ndarray:
    """Return-to-zero line code: bit 1 -> chips (1, 0), bit 0 -> (0, 0).

    The paper's transmitter signals a 1 as a busy half-period followed
    by an idle half-period, so every 1 produces a rising edge and the
    line always returns to idle between symbols.  Output has two chips
    per input bit.
    """
    arr = as_bit_array(bits)
    chips = np.zeros(arr.size * 2, dtype=int)
    chips[0::2] = arr
    return chips


def rz_decode(chips: Iterable[int]) -> np.ndarray:
    """Inverse of :func:`rz_encode`: the first chip of each pair.

    A trailing partial pair (odd chip count, from upstream
    insertions/deletions) is dropped.
    """
    arr = as_bit_array(chips)
    usable = (arr.size // 2) * 2
    return arr[:usable:2].copy()


@dataclass(frozen=True)
class ParityCode:
    """Even-parity blocks: ``block_size`` data bits + 1 parity bit.

    Detects (but does not correct) single errors; used by the ablation
    bench as the weaker alternative to Hamming(7,4).
    """

    block_size: int = 7

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block size must be >= 1")

    def encode(self, data_bits: Iterable[int]) -> np.ndarray:
        bits = as_bit_array(data_bits)
        pad = (-bits.size) % self.block_size
        if pad:
            bits = np.concatenate([bits, np.zeros(pad, dtype=int)])
        blocks = bits.reshape(-1, self.block_size)
        parity = blocks.sum(axis=1) % 2
        return np.hstack([blocks, parity[:, None]]).reshape(-1)

    def decode(self, code_bits: Iterable[int]) -> Tuple[np.ndarray, int]:
        """Returns ``(data_bits, parity_error_count)``."""
        bits = as_bit_array(code_bits)
        step = self.block_size + 1
        usable = (bits.size // step) * step
        blocks = bits[:usable].reshape(-1, step)
        errors = int(np.count_nonzero(blocks.sum(axis=1) % 2))
        return blocks[:, : self.block_size].reshape(-1), errors
