"""The conventional matched-filter receiver the paper tried first.

Section IV-B2: "It is a common practice for the conventional
communication systems to use a matched filter and sample the filtered
signal at each symbol (bit), but that approach assumes that the symbols
have practically no variation in their duration...  when applying the
matched filter approach to our received signal, the BER was high".

This module implements that conventional receiver so the ablation bench
can reproduce the comparison: a fixed symbol clock derived from the
nominal rate, a rectangular matched filter of one symbol length, and
mid-symbol sampling.  Against the covert channel's asynchronous timing
it accumulates clock drift and loses lock - which is exactly why the
paper built the batch receiver instead.
"""

from __future__ import annotations

import numpy as np

from ..dsp.detection import bimodal_threshold
from .acquisition import Envelope


def matched_filter_decode(
    envelope: Envelope,
    symbol_period_frames: float,
    start_frame: float = 0.0,
) -> np.ndarray:
    """Decode with a fixed symbol clock (the paper's strawman).

    Parameters
    ----------
    envelope:
        The Eq. 1 envelope.
    symbol_period_frames:
        The receiver's belief about the symbol period, held *constant*
        for the whole stream (this is the method's flaw).
    start_frame:
        Phase of the first symbol.
    """
    if symbol_period_frames <= 0:
        raise ValueError("symbol period must be positive")
    y = envelope.samples.astype(float)
    # Rectangular matched filter: integrate one symbol period.
    kernel_len = max(int(round(symbol_period_frames)), 1)
    kernel = np.ones(kernel_len) / kernel_len
    filtered = np.convolve(y**2, kernel, mode="same")
    # Sample at the (fixed) mid-symbol instants.
    centers = np.arange(
        start_frame + symbol_period_frames / 2, y.size, symbol_period_frames
    )
    samples = filtered[np.round(centers).astype(int).clip(0, y.size - 1)]
    if samples.size == 0:
        return np.empty(0, dtype=int)
    threshold = bimodal_threshold(samples)
    return (samples > threshold).astype(int)
