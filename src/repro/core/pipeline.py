"""Top-level receive API: capture in, payload out.

Ties together decoding, frame synchronisation and error correction so
applications (and the examples) need a single call:

    payload, result = receive(capture, vrm_frequency_hz=970e3,
                              expected_bit_period_s=270e-6)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..types import IQCapture
from .coding import hamming_decode
from .decoder import BatchDecoder, DecodeResult, DecoderConfig
from .sync import FrameFormat, strip_header


@dataclass
class ReceiveResult:
    """Everything recovered from one capture."""

    payload_bits: Optional[np.ndarray]
    corrected_errors: int
    raw: DecodeResult
    synchronized: bool

    @property
    def payload_bytes(self) -> Optional[bytes]:
        from .coding import bits_to_bytes

        if self.payload_bits is None:
            return None
        return bits_to_bytes(self.payload_bits)


def receive(
    capture: IQCapture,
    vrm_frequency_hz: float,
    expected_bit_period_s: Optional[float] = None,
    frame_format: FrameFormat = FrameFormat(),
    decoder_config: DecoderConfig = DecoderConfig(),
    use_ecc: bool = True,
) -> ReceiveResult:
    """Decode a covert transmission end to end.

    Parameters mirror :class:`~repro.core.decoder.BatchDecoder`;
    ``use_ecc`` applies Hamming(7,4) correction to the payload (the
    transmitter must have encoded with
    :func:`~repro.core.coding.hamming_encode`).
    """
    decoder = BatchDecoder(vrm_frequency_hz, expected_bit_period_s, decoder_config)
    raw = decoder.decode(capture)
    payload = strip_header(raw.bits, frame_format)
    if payload is None:
        return ReceiveResult(
            payload_bits=None, corrected_errors=0, raw=raw, synchronized=False
        )
    corrected = 0
    if use_ecc:
        payload, corrected = hamming_decode(payload)
    return ReceiveResult(
        payload_bits=payload,
        corrected_errors=corrected,
        raw=raw,
        synchronized=True,
    )
