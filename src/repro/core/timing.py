"""Signal timing for the covert communication (paper Section IV-B2).

The realised duration of one "transmitted bit" varies between instances
(sleep jitter, scheduler delays), with a positively skewed, Rayleigh-like
distribution (paper Figure 6).  The receiver therefore:

1. measures the distances between consecutive detected bit starts,
2. takes the point where the empirical CDF reaches 0.5 (the median) as
   the signalling time - the paper argues the median minimises false
   insertions/deletions under the skewed distribution, and
3. uses that signalling time to fill the gaps where the edge detector
   missed a start (a missed edge shows up as an inter-start distance of
   about twice the signalling time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats


@dataclass
class PulseWidthStats:
    """Summary of the inter-start distance distribution (Figure 6)."""

    widths: np.ndarray
    median: float
    rayleigh_scale: float
    rayleigh_loc: float

    @property
    def skewness(self) -> float:
        """Sample skewness; positive for the paper's distribution."""
        return float(stats.skew(self.widths))


def pulse_widths(starts: np.ndarray) -> np.ndarray:
    """Distances between consecutive bit starting points."""
    starts = np.asarray(starts, dtype=float)
    if starts.size < 2:
        return np.empty(0)
    return np.diff(starts)


def analyze_pulse_widths(starts: np.ndarray) -> PulseWidthStats:
    """Fit the paper's Figure 6 distribution to detected starts."""
    widths = pulse_widths(starts)
    if widths.size == 0:
        raise ValueError("need at least two starts to measure widths")
    loc, scale = stats.rayleigh.fit(widths)
    return PulseWidthStats(
        widths=widths,
        median=float(np.median(widths)),
        rayleigh_scale=float(scale),
        rayleigh_loc=float(loc),
    )


def signaling_time(starts: np.ndarray, hint: Optional[float] = None) -> float:
    """The symbol period estimate: CDF = 0.5 of the width distribution.

    When the edge detector misses many starts (weak zero-bit edges),
    the raw median lands on a multiple of the true period; two defences
    handle that:

    * with a ``hint`` (the decoder's expected symbol period), the
      estimate is the median of the width cluster within [0.55, 1.45]x
      the hint;
    * without one, the smallest prominent width cluster is used, after
      checking the median is consistent with an integer multiple of it.
    """
    widths = pulse_widths(starts)
    if widths.size == 0:
        raise ValueError("need at least two starts")
    median = float(np.median(widths))
    if hint is not None and hint > 0:
        cluster = widths[(widths >= 0.55 * hint) & (widths <= 1.45 * hint)]
        if cluster.size >= 3:
            return float(np.median(cluster))
        # No widths near the hint at all: every detected width may be a
        # multiple of the true period (e.g. alternating data whose
        # zero-bit edges are too weak to detect).  If the median sits
        # near an integer multiple of the hint, divide it back down.
        ratio = median / hint
        k = int(round(ratio))
        if k >= 1 and abs(ratio - k) <= 0.25 * k:
            return median / k
    # Smallest prominent cluster: anchor on a low percentile, which is
    # immune to missed edges (they only create *large* widths).
    anchor = float(np.percentile(widths, 10))
    cluster = widths[(widths >= 0.75 * anchor) & (widths <= 1.35 * anchor)]
    if cluster.size >= 3:
        candidate = float(np.median(cluster))
        # Accept if the global median is close to an integer multiple.
        ratio = median / candidate
        if abs(ratio - round(ratio)) < 0.25:
            return candidate
    typical = widths[widths < 1.6 * median]
    if typical.size == 0:
        return median
    return float(np.median(typical))


def fill_missing_starts(
    starts: np.ndarray,
    period: float,
    total_frames: int,
    gap_tolerance: float = 0.3,
) -> np.ndarray:
    """Insert synthetic starts where the edge detector left gaps.

    A gap of ``k`` periods (within ``gap_tolerance`` of an integer
    ``k >= 2``) receives ``k - 1`` evenly spaced synthetic starts - the
    "filling the gaps" step the paper describes after measuring the
    signalling time.  Gaps that are not close to an integer number of
    periods are left alone (they become detected deletions).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    starts = np.asarray(starts, dtype=float)
    if starts.size < 2:
        return starts.astype(int)
    # Leading gap: edges at the very start of a capture sit against the
    # STFT warm-up region and are often missed; back-fill whole periods.
    lead = [float(starts[0])]
    while lead[-1] - period >= 0.45 * period:
        lead.append(lead[-1] - period)
    out = lead[::-1]
    for nxt in starts[1:]:
        gap = nxt - out[-1]
        k = gap / period
        k_round = int(round(k))
        # Allow proportionally more slack for long gaps, where realised
        # jitter accumulates over several missing bits.
        tolerance = max(gap_tolerance, 0.08 * k_round)
        if k_round >= 2 and abs(k - k_round) <= tolerance:
            step = gap / k_round
            base = nxt - gap
            for j in range(1, k_round):
                out.append(base + j * step)
        out.append(float(nxt))
    # Trailing gap: fill up to the end of the capture.
    while total_frames - out[-1] >= 1.55 * period:
        out.append(out[-1] + period)
    result = np.array(out)
    result = result[(result >= 0) & (result < total_frames)]
    return np.round(result).astype(int)


def drop_spurious_starts(starts: np.ndarray, period: float) -> np.ndarray:
    """Remove starts closer than half a period to their predecessor.

    These are usually double-detections on a single rising edge, which
    would otherwise insert bits.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    starts = np.asarray(starts, dtype=float)
    if starts.size == 0:
        return starts.astype(int)
    kept = [float(starts[0])]
    for s in starts[1:]:
        if s - kept[-1] >= 0.5 * period:
            kept.append(float(s))
    return np.round(np.array(kept)).astype(int)
