"""A minimal scheduler model: mixing competing activity onto one package.

The covert-channel transmitter shares the machine with OS housekeeping
and, in the Section IV-C2 experiment, with a resource-intensive
background process.  For the *EM emission* all that matters is the union
of activity on the package (any running core keeps the VRM loaded); for
the *transmitter's timing*, competing load stretches its active periods
(time sharing) and delays its wakeups.  This module models both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..types import ActivityTrace, Interval


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for the time-sharing perturbation.

    ``stretch_per_overlap`` is the factor by which a transmitter active
    period grows per unit of overlapping competing activity (1.0 means a
    fully contended period takes twice as long).  ``wakeup_delay_s`` is
    the mean extra delay before a sleeping process is scheduled again
    when the system is busy at its wake time.
    """

    stretch_per_overlap: float = 0.5
    wakeup_delay_s: float = 20e-6


class Scheduler:
    """Applies contention effects and merges traces for emission."""

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        time_scale: float = 1.0,
    ):
        self.config = config if config is not None else SchedulerConfig()
        self._rng = rng if rng is not None else np.random.default_rng(3)
        self.time_scale = time_scale

    def contend(
        self, transmitter: ActivityTrace, competitor: ActivityTrace
    ) -> ActivityTrace:
        """Stretch transmitter intervals that overlap competing activity.

        Returns a new transmitter trace whose active periods are extended
        proportionally to how much competing activity overlapped them and
        whose starts are pushed back when a wakeup lands on a busy system.
        Later intervals are shifted so ordering is preserved.
        """
        if not transmitter.intervals:
            return transmitter
        delay_mean = self.config.wakeup_delay_s * self.time_scale
        out: List[Interval] = []
        shift = 0.0
        for iv in transmitter.intervals:
            start = iv.start + shift
            overlap = _overlap_seconds(competitor, start, start + iv.duration)
            busy_at_wake = competitor.levels_at(np.array([start]))[0] > 0
            if busy_at_wake and delay_mean > 0:
                delay = float(self._rng.exponential(delay_mean))
                start += delay
                shift += delay
            stretch = self.config.stretch_per_overlap * overlap
            end = start + iv.duration + stretch
            shift += stretch
            out.append(Interval(start, end, iv.level))
        duration = max(transmitter.duration + shift, out[-1].end)
        return ActivityTrace(out, duration)

    def package_activity(self, *traces: ActivityTrace) -> ActivityTrace:
        """Union of all activity on the package (drives the VRM)."""
        if not traces:
            raise ValueError("need at least one trace")
        merged = traces[0]
        for t in traces[1:]:
            merged = merged.merged_with(t)
        return merged


def _overlap_seconds(trace: ActivityTrace, start: float, end: float) -> float:
    """Level-weighted seconds of ``trace`` activity inside ``[start, end)``."""
    total = 0.0
    for iv in trace.intervals:
        lo = max(iv.start, start)
        hi = min(iv.end, end)
        if hi > lo:
            total += (hi - lo) * iv.level
    return total
