"""OS sleep-timer models.

The paper's covert-channel bit-rate is set almost entirely by how
precisely a user-level process can control its own idleness: ``usleep``
on Linux/macOS is microsecond-granular while ``Sleep`` on Windows is
quantised to the ~1 ms timer tick, which is why Table II shows 3-4 kbps
for the Unix laptops and just under 1 kbps for the Windows ones.

Each model maps a *requested* sleep to a *realised* sleep drawn from a
positively skewed distribution (a sleep can be lengthened by other system
activity but never shortened), matching the ``usleep`` man-page caveat
the paper quotes and producing the Rayleigh-like pulse-width spread of
Figure 6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class SleepTimer(ABC):
    """Maps requested sleep durations to realised durations."""

    def __init__(self, rng: np.random.Generator, time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._rng = rng
        self.time_scale = time_scale

    @abstractmethod
    def sleep(self, requested_s: float, now_s: float = 0.0) -> float:
        """Realised duration for one sleep call of ``requested_s``.

        ``now_s`` is the absolute time of the call; tick-quantised
        timers use it to align wakeups with the system tick, which makes
        consecutive sleeps phase-correlated (a real effect that keeps
        Windows bit periods near-deterministic despite the coarse tick).
        """

    @property
    @abstractmethod
    def minimum_reliable_sleep_s(self) -> float:
        """Below this, realised sleeps become highly variable (paper: ~10 us)."""


class UnixUsleep(SleepTimer):
    """``usleep``/``nanosleep`` on Linux and macOS.

    Realised sleep = requested + fixed syscall overhead + a gamma-shaped
    positive tail.  Requests below ~10 us (scaled) mostly measure the
    overhead, making the realised duration highly variable relative to
    the request - the paper's observed lower bound for SLEEP_PERIOD.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        time_scale: float = 1.0,
        overhead_s: float = 4e-6,
        jitter_scale_s: float = 4e-6,
    ):
        super().__init__(rng, time_scale)
        self.overhead_s = overhead_s * time_scale
        self.jitter_scale_s = jitter_scale_s * time_scale

    @property
    def minimum_reliable_sleep_s(self) -> float:
        return 10e-6 * self.time_scale

    def sleep(self, requested_s: float, now_s: float = 0.0) -> float:
        if requested_s < 0:
            raise ValueError("cannot sleep a negative duration")
        tail = float(self._rng.gamma(shape=1.5, scale=self.jitter_scale_s))
        return requested_s + self.overhead_s + tail


class WindowsSleep(SleepTimer):
    """``Sleep()`` on Windows: quantised to the system timer tick.

    The realised sleep ends at the first expiry of the free-running
    system tick at or after ``now + requested``.  With the multimedia
    timer resolution raised (``timeBeginPeriod``), the tick is 0.5-1 ms;
    this quantisation is what caps the Windows laptops in Table II just
    below 1 kbps.  Because wakeups land *on* tick edges, consecutive
    sleep/compute cycles become phase-locked to the tick, which keeps
    the realised bit periods nearly deterministic - matching the low
    BERs the paper measures on the Windows machines despite their much
    coarser timer.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        time_scale: float = 1.0,
        tick_s: float = 0.5e-3,
        jitter_scale_s: float = 8e-6,
    ):
        super().__init__(rng, time_scale)
        self.tick_s = tick_s * time_scale
        self.jitter_scale_s = jitter_scale_s * time_scale

    @property
    def minimum_reliable_sleep_s(self) -> float:
        return self.tick_s

    def sleep(self, requested_s: float, now_s: float = 0.0) -> float:
        if requested_s < 0:
            raise ValueError("cannot sleep a negative duration")
        earliest = now_s + requested_s
        wake = float(np.ceil(earliest / self.tick_s)) * self.tick_s
        if wake <= earliest:
            wake += self.tick_s
        tail = float(self._rng.gamma(shape=1.2, scale=self.jitter_scale_s))
        return wake - now_s + tail


@dataclass(frozen=True)
class ComputeModel:
    """How long a busy-loop of N iterations takes on a given machine.

    ``seconds_for(iterations)`` includes a multiplicative noise term for
    microarchitectural variability (cache misses, SMIs) and a fixed
    per-call overhead term covering the transmitter's housekeeping (file
    read, loop setup) that the paper notes keeps the active period
    non-zero even when LOOP_PERIOD is 0.
    """

    seconds_per_iteration: float
    call_overhead_s: float
    noise_rel_std: float = 0.05

    def seconds_for(self, iterations: int, rng: np.random.Generator) -> float:
        if iterations < 0:
            raise ValueError("iteration count cannot be negative")
        base = self.call_overhead_s + iterations * self.seconds_per_iteration
        noise = 1.0 + self.noise_rel_std * float(rng.standard_normal())
        return base * max(noise, 0.2)

    def iterations_for(self, target_s: float) -> int:
        """Iterations needed for an active period of roughly ``target_s``."""
        remaining = max(target_s - self.call_overhead_s, 0.0)
        return int(round(remaining / self.seconds_per_iteration))

    def scaled(self, time_scale: float) -> "ComputeModel":
        """Return a copy with all durations dilated by ``time_scale``."""
        return ComputeModel(
            seconds_per_iteration=self.seconds_per_iteration * time_scale,
            call_overhead_s=self.call_overhead_s * time_scale,
            noise_rel_std=self.noise_rel_std,
        )
