"""Interrupts and other asynchronous system activity.

The paper's Section IV-B4 attributes bit insertions/deletions to
interrupts and microarchitectural events that wake the processor outside
the transmitter's control.  We model three populations:

* routine interrupts - frequent, very short bursts (timer ticks, device
  IRQs) that the detection algorithm mostly rides through;
* heavy events - rare, longer bursts (page-fault storms, kernel work)
  that can delete a bit edge or insert a spurious one;
* background load - a resource-intensive competing process, used for the
  Section IV-C2 degradation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import ActivityTrace


@dataclass(frozen=True)
class InterruptProfile:
    """Rates and durations for one machine's asynchronous activity.

    All durations/rates are in paper-scale seconds; callers dilate with a
    profile's ``time_scale`` via :func:`generate`.
    """

    routine_rate_hz: float = 250.0
    routine_duration_s: float = 15e-6
    heavy_rate_hz: float = 3.0
    heavy_duration_s: float = 400e-6

    def __post_init__(self) -> None:
        if self.routine_rate_hz < 0 or self.heavy_rate_hz < 0:
            raise ValueError("interrupt rates cannot be negative")


#: A quiet, well-behaved laptop (normal OS housekeeping only).
QUIET = InterruptProfile()

#: A noisier machine: more frequent housekeeping and heavy events.
NOISY = InterruptProfile(
    routine_rate_hz=600.0,
    routine_duration_s=25e-6,
    heavy_rate_hz=8.0,
    heavy_duration_s=600e-6,
)


def generate(
    profile: InterruptProfile,
    duration: float,
    rng: np.random.Generator,
    time_scale: float = 1.0,
) -> ActivityTrace:
    """Draw interrupt activity over ``[0, duration)``.

    Arrivals are Poisson; burst lengths are exponential around the
    profile's means.  The returned trace can be merged with a
    transmitter trace via :meth:`ActivityTrace.merged_with`.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    bursts = []
    lengths = []
    for rate, mean_len in (
        (profile.routine_rate_hz / time_scale, profile.routine_duration_s * time_scale),
        (profile.heavy_rate_hz / time_scale, profile.heavy_duration_s * time_scale),
    ):
        if rate <= 0:
            continue
        n = int(rng.poisson(rate * duration))
        times = rng.uniform(0.0, duration, size=n)
        durs = rng.exponential(mean_len, size=n)
        bursts.extend(times.tolist())
        lengths.extend(durs.tolist())
    if not bursts:
        return ActivityTrace([], duration)
    # burst_workload takes a single length; build per-burst traces by
    # merging two-point edge lists manually instead.
    order = np.argsort(bursts)
    edges = []
    for i in order:
        start = max(0.0, float(bursts[i]))
        end = min(duration, start + max(float(lengths[i]), 1e-9))
        if end <= start:
            continue
        if edges and start <= edges[-1][1]:
            edges[-1] = (edges[-1][0], max(edges[-1][1], end))
        else:
            edges.append((start, end))
    from ..types import Interval

    return ActivityTrace([Interval(a, b, 1.0) for a, b in edges], duration)


def background_load(
    duration: float,
    rng: np.random.Generator,
    *,
    short_burst_s: float = 35e-6,
    short_gap_s: float = 300e-6,
    medium_burst_s: float = 85e-6,
    medium_rate_hz: float = 15.0,
    time_scale: float = 1.0,
) -> ActivityTrace:
    """A resource-intensive competing process (Section IV-C2).

    The paper observes that the OS timeslices background work into
    *short* bursts - mostly smaller than one sleep/active period - which
    the per-bit power averaging rides through; occasional medium bursts
    (a sizeable fraction of a bit) are what force the ~15% rate
    reduction, because a slower bit dilutes a fixed-length burst below
    the labeling threshold.
    """
    if short_burst_s <= 0 or short_gap_s <= 0:
        raise ValueError("burst/gap scales must be positive")
    burst = short_burst_s * time_scale
    gap = short_gap_s * time_scale
    t = float(rng.uniform(0.0, gap))
    edges = []
    while t < duration:
        on = float(rng.exponential(burst))
        end = min(t + on, duration)
        if end > t:
            edges.append((t, end))
        t = end + float(rng.exponential(gap))
    n_medium = int(rng.poisson(medium_rate_hz / time_scale * duration))
    for start in rng.uniform(0.0, duration, size=n_medium):
        length = float(rng.exponential(medium_burst_s * time_scale))
        end = min(float(start) + length, duration)
        if end > start:
            edges.append((float(start), end))
    edges.sort()
    merged = []
    for a, b in edges:
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    from ..types import Interval

    return ActivityTrace([Interval(a, b, 1.0) for a, b in merged], duration)
