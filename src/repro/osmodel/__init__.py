"""OS timing substrate: sleep timers, interrupts, scheduler contention."""

from .interrupts import NOISY, QUIET, InterruptProfile, background_load, generate
from .scheduler import Scheduler, SchedulerConfig
from .timers import ComputeModel, SleepTimer, UnixUsleep, WindowsSleep

__all__ = [
    "ComputeModel",
    "InterruptProfile",
    "NOISY",
    "QUIET",
    "Scheduler",
    "SchedulerConfig",
    "SleepTimer",
    "UnixUsleep",
    "WindowsSleep",
    "background_load",
    "generate",
]
