"""Global simulation parameters and scaling profiles.

The paper's evaluation runs on physical laptops with a ~970 kHz VRM
switching frequency, captured by an RTL-SDR at 2.4 MS/s.  Simulating that
chain sample-accurately is expensive, so this module defines *profiles*
that scale the simulation while preserving the dimensionless dynamics the
side-channel depends on:

``freq_scale``
    Divides every frequency in the analog chain (VRM switching frequency,
    RF synthesis rate, SDR sample rate).  Used alone it leaves all timing
    untouched, which is appropriate for slow phenomena such as keystrokes
    (tens of milliseconds) that remain far above the STFT window length.

``time_scale``
    Multiplies every duration in the digital chain (sleep periods, timer
    jitter, interrupt lengths) *and* divides the frequencies by the same
    factor, so the number of carrier cycles and samples per transmitted
    bit is invariant.  A covert-channel link simulated with
    ``time_scale=100`` behaves identically to the paper-scale link; its
    measured transmission rate is multiplied back by ``time_scale`` when
    reporting paper-scale numbers.

Three stock profiles are provided:

* :data:`PAPER`   - full scale, matches the paper's measurement setup.
* :data:`REDUCED` - ``time_scale=10``; default for benchmark runs.
* :data:`TINY`    - ``time_scale=100``; default for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: VRM switching frequency observed on the paper's flagship laptop (Hz).
PAPER_VRM_FREQUENCY_HZ = 970e3

#: RTL-SDR v3 maximum stable sample rate used in the paper (samples/s).
PAPER_SDR_SAMPLE_RATE_HZ = 2.4e6

#: Rate at which the physical (real-valued) EM waveform is synthesised.
#: Chosen as 4x the SDR rate so decimation is a clean integer factor and
#: the VRM's first harmonic (2*f0 = 1.94 MHz) is well below Nyquist.
PAPER_RF_SAMPLE_RATE_HZ = 4 * PAPER_SDR_SAMPLE_RATE_HZ

#: FFT length used by the paper's receiver.
PAPER_FFT_SIZE = 1024

#: Paper transmitter defaults (seconds).
PAPER_SLEEP_PERIOD_UNIX_S = 100e-6
PAPER_SLEEP_PERIOD_WINDOWS_S = 1e-3

#: Speed of light (m/s), used by the near-field propagation model.
SPEED_OF_LIGHT_M_S = 299_792_458.0


@dataclass(frozen=True)
class SimProfile:
    """A self-consistent set of rates for one simulation run.

    Attributes
    ----------
    name:
        Human-readable profile label, echoed in experiment reports.
    time_scale:
        Dilation factor for all digital-side durations (>= 1).
    freq_scale:
        Extra division factor for analog-side frequencies, applied on top
        of ``time_scale``.  Keystroke experiments use ``freq_scale`` only.
    """

    name: str
    time_scale: float = 1.0
    freq_scale: float = 1.0

    @property
    def total_freq_divisor(self) -> float:
        """Combined divisor applied to every analog frequency."""
        return self.time_scale * self.freq_scale

    @property
    def vrm_frequency_hz(self) -> float:
        """VRM switching frequency for this profile."""
        return PAPER_VRM_FREQUENCY_HZ / self.total_freq_divisor

    @property
    def rf_sample_rate_hz(self) -> float:
        """Synthesis rate of the real-valued EM waveform."""
        return PAPER_RF_SAMPLE_RATE_HZ / self.total_freq_divisor

    @property
    def sdr_sample_rate_hz(self) -> float:
        """Complex baseband rate after SDR decimation."""
        return PAPER_SDR_SAMPLE_RATE_HZ / self.total_freq_divisor

    @property
    def decimation_factor(self) -> int:
        """Integer RF-to-SDR decimation factor (always 4 by construction)."""
        return int(round(PAPER_RF_SAMPLE_RATE_HZ / PAPER_SDR_SAMPLE_RATE_HZ))

    def dilate(self, duration_s: float) -> float:
        """Scale a paper-quoted duration into this profile's time base."""
        return duration_s * self.time_scale

    def paper_rate(self, simulated_rate: float) -> float:
        """Convert a rate measured in this profile back to paper scale."""
        return simulated_rate * self.time_scale

    def scaled(self, **changes) -> "SimProfile":
        """Return a copy of this profile with the given fields replaced."""
        return replace(self, **changes)


#: Full paper-scale profile (expensive; used by the CLI for final runs).
PAPER = SimProfile(name="paper", time_scale=1.0, freq_scale=1.0)

#: 10x time dilation; the default for benchmark runs.
REDUCED = SimProfile(name="reduced", time_scale=10.0, freq_scale=1.0)

#: 100x time dilation; the default for unit tests.
TINY = SimProfile(name="tiny", time_scale=100.0, freq_scale=1.0)

#: Frequency-scaled (but not time-dilated) profile for keystroke runs,
#: where event durations (>=30 ms) dwarf the STFT window even at a 100x
#: lower carrier frequency.
KEYLOG = SimProfile(name="keylog", time_scale=1.0, freq_scale=100.0)

_PROFILES = {p.name: p for p in (PAPER, REDUCED, TINY, KEYLOG)}


def get_profile(name: str) -> SimProfile:
    """Look up a stock profile by name.

    Raises
    ------
    KeyError
        If ``name`` does not match a stock profile.
    """
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown profile {name!r}; known profiles: {known}")
