"""Cycle-level buck converter with phase shedding.

The VRM replenishes its output capacitor once per switching period
(``T`` = 1-4 us on commodity parts) while the load is heavy; under light
load it *sheds* switching periods, skipping the replenishment of a
still-almost-full capacitor (paper Section II).  The burst train's rate
and per-burst charge therefore encode the load current:

* full load  -> one burst every period, charge ``I * T`` per burst
  -> a strong spectral line at ``f0 = 1/T`` and its harmonics;
* light load -> one burst every ``m`` periods, charge ``~ q_fire``
  -> the line at ``f0`` collapses to amplitude ``~ I_idle``.

The amplitude of the ``f0`` line is proportional to the load current in
both regimes, so the processor's active/idle alternation on-off-keys the
VRM's emission - the vulnerability this paper exploits.

The simulation is an integrate-and-fire model over the charge deficit of
the output capacitor, solved analytically per piecewise-constant load
segment so multi-second traces with ~10^6 switching periods run in
vectorised NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..types import BurstTrain, PiecewiseConstant


@dataclass(frozen=True)
class BuckDesign:
    """Electrical design of one VRM.

    Attributes
    ----------
    switching_frequency_hz:
        Nominal switching frequency ``f0 = 1/T``.
    max_load_a:
        Full-load design current; with the shed fraction this sets the
        phase-shedding threshold.
    shed_fraction:
        A burst fires only once the accumulated charge deficit reaches
        ``shed_fraction * max_load_a * T``.  Loads above that fraction of
        full scale switch every period; lighter loads shed.
    period_jitter_rel:
        Relative RMS jitter of the switching period (oscillator noise).
    nominal_voltage_v:
        Output voltage at which burst amplitudes are calibrated.
    """

    switching_frequency_hz: float
    max_load_a: float = 16.0
    shed_fraction: float = 0.12
    period_jitter_rel: float = 0.002
    nominal_voltage_v: float = 1.1

    def __post_init__(self) -> None:
        if self.switching_frequency_hz <= 0:
            raise ValueError("switching frequency must be positive")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        if self.max_load_a <= 0:
            raise ValueError("max load must be positive")

    @property
    def period_s(self) -> float:
        return 1.0 / self.switching_frequency_hz

    @property
    def fire_charge_c(self) -> float:
        """Charge deficit that triggers a replenishment burst."""
        return self.shed_fraction * self.max_load_a * self.period_s


class BuckConverter:
    """Simulate the burst train produced for a given load profile."""

    def __init__(self, design: BuckDesign, rng: Optional[np.random.Generator] = None):
        self.design = design
        self._rng = rng if rng is not None else np.random.default_rng(4)

    def simulate(
        self,
        load: PiecewiseConstant,
        voltage: Optional[PiecewiseConstant] = None,
    ) -> BurstTrain:
        """Produce the replenishment burst train for a load-current profile.

        Parameters
        ----------
        load:
            Load current in amps over time (from the power-state trace).
        voltage:
            Output voltage over time; defaults to the design's nominal.
        """
        d = self.design
        T = d.period_s
        q_fire = d.fire_charge_c
        times: List[np.ndarray] = []
        charges: List[np.ndarray] = []
        deficit = 0.0  # carry-over charge deficit between segments
        for start, end, current in load.segments():
            n_periods = int(np.floor((end - start) / T))
            if n_periods <= 0:
                deficit += current * (end - start)
                continue
            # Charge accrued in the fractional period past the last full
            # switching period; carried into the deficit so segment
            # boundaries that are not period-aligned do not leak charge.
            tail_charge = current * ((end - start) - n_periods * T)
            q_per = current * T
            if q_per <= 0.0:
                deficit += tail_charge
                continue
            # First firing period index (1-based): deficit + n*q_per >= q_fire
            n0 = int(np.ceil(max(q_fire - deficit, 0.0) / q_per))
            n0 = max(n0, 1)
            if n0 > n_periods:
                deficit += n_periods * q_per + tail_charge
                continue
            # Subsequent firings every m periods.
            m = max(int(np.ceil(q_fire / q_per)), 1)
            fire_idx = np.arange(n0, n_periods + 1, m)
            fire_times = start + fire_idx * T
            fire_charges = np.full(fire_idx.size, m * q_per)
            fire_charges[0] = deficit + n0 * q_per
            periods_after_last = n_periods - fire_idx[-1]
            deficit = periods_after_last * q_per + tail_charge
            times.append(fire_times)
            charges.append(fire_charges)
        if times:
            t = np.concatenate(times)
            q = np.concatenate(charges)
        else:
            t = np.empty(0)
            q = np.empty(0)
        order = np.argsort(t, kind="stable")
        t = t[order]
        q = q[order]
        if d.period_jitter_rel > 0 and t.size:
            t = t + self._rng.normal(0.0, d.period_jitter_rel * T, size=t.size)
            t = np.sort(np.clip(t, 0.0, load.duration))
        if voltage is not None and t.size:
            v = voltage.at(t)
        else:
            v = np.full(t.size, d.nominal_voltage_v)
        return BurstTrain(
            times=t,
            charges=q,
            voltages=v,
            duration=load.duration,
            switching_period=T,
        )
