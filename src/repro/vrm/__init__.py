"""Voltage regulator module substrate: buck converter, VID, emission."""

from .buck import BuckConverter, BuckDesign
from .emission import EmissionModel
from .vid import VidInterface

__all__ = ["BuckConverter", "BuckDesign", "EmissionModel", "VidInterface"]
