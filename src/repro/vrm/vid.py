"""Voltage Identification (VID) interface.

The processor tells the VRM which output voltage to produce through the
VID signals; the VRM slews to the new target at a finite rate.  The
requested voltage follows the active P-state (and drops to a retention
level in voltage-gating C-states), so the VID trace is itself a
power-state side channel, though a weaker one than the burst-rate
modulation this paper exploits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..types import PiecewiseConstant


class VidInterface:
    """Applies a slew-rate limit to requested voltage changes.

    Parameters
    ----------
    slew_v_per_s:
        Maximum voltage slew rate (typical parts manage ~10 mV/us).
    """

    def __init__(self, slew_v_per_s: float = 10e3):
        if slew_v_per_s <= 0:
            raise ValueError("slew rate must be positive")
        self.slew_v_per_s = slew_v_per_s

    def apply(self, requested: PiecewiseConstant) -> PiecewiseConstant:
        """Return the realised output voltage as a piecewise approximation.

        Each VID step is replaced by a short ramp approximated with a
        small number of sub-steps, so downstream consumers can keep using
        the piecewise-constant representation.
        """
        segs = requested.segments()
        if not segs:
            return requested
        starts: List[float] = []
        values: List[float] = []
        current_v = segs[0][2]
        for start, end, target in segs:
            if not starts:
                starts.append(0.0)
                values.append(current_v)
            if abs(target - current_v) < 1e-9:
                current_v = target
                continue
            ramp_time = abs(target - current_v) / self.slew_v_per_s
            ramp_time = min(ramp_time, max(end - start, 1e-12))
            n_sub = 4
            for i in range(1, n_sub + 1):
                t = start + ramp_time * i / n_sub
                v = current_v + (target - current_v) * i / n_sub
                starts.append(min(t, end))
                values.append(v)
            current_v = values[-1]
        return PiecewiseConstant(
            np.array(starts), np.array(values), requested.duration
        )
