"""EM emission synthesis: burst train -> real-valued RF waveform.

Each replenishment burst is a short, high-current pulse through the
buck's inductor loop; by Faraday's law the magnetic field near the VRM
tracks this current.  Because the bursts are square-ish rather than
sinusoidal, the emitted spectrum has strong lines at ``f0 = 1/T`` *and*
its harmonics (paper Section II), which is why the receiver can sum the
fundamental and first harmonic in Eq. 1.

Synthesis places each burst on the RF sample grid as a fractionally
delayed impulse scaled by the burst's peak current, then convolves with
the burst's pulse shape.  This keeps the cost linear in burst count and
reproduces the harmonic comb exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from ..types import BurstTrain


@dataclass(frozen=True)
class EmissionModel:
    """Converts a burst train to a sampled emission waveform.

    Attributes
    ----------
    pulse_width_fraction:
        Burst on-time as a fraction of the switching period.
    field_gain:
        Overall scale from peak burst current (amps) to emitted field
        amplitude (arbitrary units; absolute calibration is folded into
        the propagation model).
    """

    pulse_width_fraction: float = 0.2
    field_gain: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pulse_width_fraction < 1.0:
            raise ValueError("pulse width fraction must be in (0, 1)")

    def pulse_kernel(self, sample_rate: float, switching_period: float) -> np.ndarray:
        """The burst current shape, sampled at ``sample_rate``.

        A fast-attack / exponential-decay pulse: the inductor current
        ramps quickly when the high-side switch closes and decays as the
        capacitor recharges.  Normalised to unit area so an impulse of
        weight ``q/width`` yields peak current ~``q/width``.
        """
        width_s = self.pulse_width_fraction * switching_period
        n = max(int(round(width_s * sample_rate)), 1)
        t = np.arange(4 * n, dtype=float)
        attack = 1.0 - np.exp(-t / max(n / 4.0, 0.5))
        decay = np.exp(-t / n)
        kernel = attack * decay
        area = kernel.sum()
        if area <= 0:
            return np.ones(1)
        return kernel / area

    def synthesize(self, bursts: BurstTrain, sample_rate: float) -> np.ndarray:
        """Render the burst train as a real waveform at ``sample_rate``.

        The output length covers ``bursts.duration``; burst times are
        placed with linear fractional-delay interpolation to avoid
        timing quantisation artifacts in the harmonic lines.
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        n_samples = int(round(bursts.duration * sample_rate))
        wave = np.zeros(max(n_samples, 1))
        if bursts.count == 0:
            return wave
        width_s = self.pulse_width_fraction * bursts.switching_period
        # Impulse weight: peak current * field gain, modulated by the
        # output voltage (higher P-state voltage -> larger input charge).
        nominal_v = max(np.median(bursts.voltages), 1e-9)
        weights = (
            self.field_gain
            * (bursts.charges / width_s)
            * (bursts.voltages / nominal_v)
        )
        positions = bursts.times * sample_rate
        base = np.floor(positions).astype(np.int64)
        frac = positions - base
        interior = (base >= 0) & (base < n_samples - 1)
        # A burst landing on the final sample has no right-hand neighbour
        # for its fractional weight; deposit its full weight there rather
        # than dropping it.
        last = base == n_samples - 1
        # One bincount pass over (left, right, final-sample) deposits in
        # that order: np.add.at is notoriously slow on large scatter
        # sets, and bincount performs the identical in-order per-bin
        # accumulation (so the float sums are bit-identical) in one
        # C-level sweep.
        indices = np.concatenate(
            (base[interior], base[interior] + 1, base[last])
        )
        deposits = np.concatenate(
            (
                weights[interior] * (1.0 - frac[interior]),
                weights[interior] * frac[interior],
                weights[last],
            )
        )
        if indices.size:
            wave = np.bincount(indices, weights=deposits, minlength=wave.size)
        kernel = self.pulse_kernel(sample_rate, bursts.switching_period)
        if kernel.size > 1:
            wave = fftconvolve(wave, kernel)[: wave.size]
        return wave
