"""Receiver components for the related-attack scenarios.

Both receivers work on the Eq. 1 band-energy envelope of the capture
(:func:`repro.core.acquisition.acquire`) and assume a synchronised
transmitter (the scenario publishes the bit timing), which matches the
threat models of the source papers: the receiver knows the symbol
clock and decides per bit window.

* :class:`BitEnergyReceiver` - amplitude decision: per-bit mean band
  energy against the midpoint of the two dominant histogram modes
  (the paper's Figure 7 threshold rule).  Decodes the IChannels-style
  throttling transmitter, whose bits differ in average current draw.
* :class:`EnvelopeFskReceiver` - rate decision: per-bit Goertzel power
  of the *envelope* at two candidate modulation frequencies.  Decodes
  the clock-modulation transmitter, whose bits differ in the gating
  frequency of the activity, not its average level.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ...core.acquisition import AcquisitionConfig, acquire
from ...core.align import align_bits
from ...dsp.detection import histogram_modes
from ..component import Component, ScenarioContext


def _bits_digest(bits: np.ndarray) -> str:
    data = np.ascontiguousarray(np.asarray(bits), dtype=np.uint8)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def _bit_windows(envelope, timing, guard_fraction: float):
    """Yield ``(index, samples)`` of the envelope inside each bit's
    guarded window."""
    start = float(timing["start_s"])
    period = float(timing["bit_period_s"])
    guard = guard_fraction * period
    times = envelope.times
    for i in range(int(timing["n_bits"])):
        lo = start + i * period + guard
        hi = start + (i + 1) * period - guard
        mask = (times >= lo) & (times < hi)
        yield i, envelope.samples[mask]


def _tap_channel(ctx: ScenarioContext, label: str, tx_bits, decoded) -> None:
    """Score a decode and record the scenario's channel figures."""
    metrics = align_bits(np.asarray(tx_bits), np.asarray(decoded))
    ctx.gauge("channel.ber", metrics.ber)
    ctx.gauge("channel.bit_errors", metrics.bit_errors)
    ctx.gauge("channel.transmitted", metrics.transmitted)
    ctx.add_record(
        {
            "label": label,
            "digest": _bits_digest(decoded),
            "tx_digest": _bits_digest(tx_bits),
            "ber": float(metrics.ber),
            "bit_errors": int(metrics.bit_errors),
            "n_bits": int(np.asarray(decoded).size),
        }
    )
    ctx.add_row(
        {
            "label": label,
            "BER": float(metrics.ber),
            "bits": int(metrics.transmitted),
        }
    )


class BitEnergyReceiver(Component):
    """Per-bit mean band energy against a bimodal-histogram threshold."""

    slot = "receiver"
    name = "bit-energy-receiver"
    provides = ("attack.decoded",)
    requires = ("attack.capture", "attack.band", "attack.bits", "attack.timing")

    def __init__(
        self,
        guard_fraction: float = 0.15,
        acquisition: AcquisitionConfig = AcquisitionConfig(
            fft_size=256, hop=32
        ),
    ):
        self.guard_fraction = guard_fraction
        self.acquisition = acquisition

    def run(self, ctx: ScenarioContext) -> None:
        capture = ctx.get("attack.capture")
        band = ctx.get("attack.band")
        timing = ctx.get("attack.timing")
        tx_bits = ctx.get("attack.bits")
        envelope = acquire(
            capture, band["vrm_frequency_hz"], self.acquisition
        )
        means = np.array(
            [
                float(np.mean(samples)) if samples.size else 0.0
                for _, samples in _bit_windows(
                    envelope, timing, self.guard_fraction
                )
            ]
        )
        _, _, modes = histogram_modes(means)
        if modes.size >= 2:
            lo, hi = sorted(modes[:2])
            threshold = 0.5 * (lo + hi)
        else:
            threshold = float(np.mean(means))
        decoded = (means > threshold).astype(np.uint8)
        ctx.publish(self, "attack.decoded", decoded)
        ctx.gauge("receiver.threshold", threshold)
        _tap_channel(ctx, ctx.scenario, tx_bits, decoded)


class EnvelopeFskReceiver(Component):
    """Per-bit binary FSK decision on the envelope's modulation tone.

    For each bit window the detrended envelope is correlated against
    the two candidate gating frequencies (a two-point Goertzel bank);
    the stronger tone is the bit.  The decision is amplitude-blind by
    construction, so it survives level countermeasures that defeat the
    energy receiver.
    """

    slot = "receiver"
    name = "envelope-fsk-receiver"
    provides = ("attack.decoded",)
    requires = ("attack.capture", "attack.band", "attack.bits", "attack.timing")

    def __init__(
        self,
        guard_fraction: float = 0.1,
        acquisition: AcquisitionConfig = AcquisitionConfig(
            fft_size=128, hop=16
        ),
    ):
        self.guard_fraction = guard_fraction
        self.acquisition = acquisition

    @staticmethod
    def _tone_power(samples: np.ndarray, frame_rate: float, freq: float):
        if samples.size == 0:
            return 0.0
        detrended = samples - np.mean(samples)
        t = np.arange(samples.size) / frame_rate
        phasor = np.exp(-2j * np.pi * freq * t)
        return float(np.abs(np.dot(detrended, phasor)) ** 2) / samples.size

    def run(self, ctx: ScenarioContext) -> None:
        capture = ctx.get("attack.capture")
        band = ctx.get("attack.band")
        timing = ctx.get("attack.timing")
        tx_bits = ctx.get("attack.bits")
        f_zero = float(timing["mod_zero_hz"])
        f_one = float(timing["mod_one_hz"])
        envelope = acquire(
            capture, band["vrm_frequency_hz"], self.acquisition
        )
        decoded = np.zeros(int(timing["n_bits"]), dtype=np.uint8)
        contrasts = []
        for i, samples in _bit_windows(envelope, timing, self.guard_fraction):
            p_zero = self._tone_power(samples, envelope.frame_rate, f_zero)
            p_one = self._tone_power(samples, envelope.frame_rate, f_one)
            decoded[i] = 1 if p_one > p_zero else 0
            contrasts.append(
                np.log10(max(p_one, 1e-30) / max(p_zero, 1e-30))
            )
        ctx.publish(self, "attack.decoded", decoded)
        ctx.gauge(
            "receiver.fsk_contrast_db",
            10.0 * float(np.mean(np.abs(np.array(contrasts))))
            if contrasts
            else 0.0,
        )
        _tap_channel(ctx, ctx.scenario, tx_bits, decoded)
