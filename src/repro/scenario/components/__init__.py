"""Reusable scenario components shared by attacks and ports."""

from .chain import (
    ChainPowerModel,
    NearFieldChannel,
    NoCountermeasure,
    VrmDitherCountermeasure,
)
from .receivers import BitEnergyReceiver, EnvelopeFskReceiver

__all__ = [
    "ChainPowerModel",
    "NearFieldChannel",
    "NoCountermeasure",
    "VrmDitherCountermeasure",
    "BitEnergyReceiver",
    "EnvelopeFskReceiver",
]
