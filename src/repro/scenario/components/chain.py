"""Chain-facing components: power model, EM channel, countermeasures.

These bridge the component framework onto the shared five-stage chain
(:mod:`repro.chain`).  The power model owns the platform (machine +
profile + BIOS flags), fingerprints the trial's whole k_power ->
k_capture key chain before running anything, and then renders the
capture through the standard chain entry point - so every scenario
built from these components inherits the chain's cache-key discipline
and RNG entry/exit-state bit-identity for free.
"""

from __future__ import annotations

from typing import Optional

from ...chain import (
    capture_chain_keys,
    render_capture,
    tuned_frequency_hz,
)
from ...countermeasures import VrmDithering
from ...em.environment import Scenario, near_field_scenario
from ...params import SimProfile, TINY
from ...systems.laptops import DELL_INSPIRON, Machine
from ..component import Component, ScenarioContext


class ChainPowerModel(Component):
    """PMU/VRM power model on the standard chain.

    Consumes the transmitter's activity trace and the channel's EM
    scenario, publishes the platform description and band up front
    (setup), then fingerprints the chain-key DAG path and renders the
    capture (run).  All chain randomness comes from this component's
    own stream, so the analog chain is isolated from every other
    component's draws.
    """

    slot = "power"
    name = "pmu-vrm-chain"
    provides = ("attack.platform", "attack.band", "attack.capture")
    requires = ("attack.activity", "attack.scenario", "attack.dithering")

    def __init__(
        self,
        machine: Machine = DELL_INSPIRON,
        profile: SimProfile = TINY,
        allow_c_states: bool = True,
        allow_p_states: bool = True,
    ):
        self.machine = machine
        self.profile = profile
        self.allow_c_states = allow_c_states
        self.allow_p_states = allow_p_states

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(
            self,
            "attack.platform",
            {
                "machine": self.machine,
                "profile": self.profile,
                "allow_c_states": self.allow_c_states,
                "allow_p_states": self.allow_p_states,
            },
        )
        ctx.publish(
            self,
            "attack.band",
            {
                "vrm_frequency_hz": (
                    self.machine.vrm_frequency_hz
                    / self.profile.total_freq_divisor
                ),
                "tuned_frequency_hz": tuned_frequency_hz(
                    self.machine, self.profile
                ),
            },
        )

    def run(self, ctx: ScenarioContext) -> None:
        activity = ctx.get("attack.activity")
        scenario: Scenario = ctx.get("attack.scenario")
        dithering: Optional[VrmDithering] = ctx.get("attack.dithering")
        rng = ctx.rng(self)
        keys = capture_chain_keys(
            self.machine,
            activity,
            scenario,
            self.profile,
            rng,
            allow_c_states=self.allow_c_states,
            allow_p_states=self.allow_p_states,
            vrm_dithering=dithering,
        )
        ctx.add_chain_keys(keys)
        capture = render_capture(
            self.machine,
            activity,
            scenario,
            self.profile,
            rng,
            allow_c_states=self.allow_c_states,
            allow_p_states=self.allow_p_states,
            vrm_dithering=dithering,
        )
        ctx.publish(self, "attack.capture", capture)
        ctx.gauge("scenario.capture.samples", capture.samples.size)


class NearFieldChannel(Component):
    """The paper's near-field measurement setup, band-tuned for the
    platform at construction time (no resource cycle with the power
    model)."""

    slot = "channel"
    name = "em-near-field"
    provides = ("attack.scenario",)

    def __init__(
        self,
        machine: Machine = DELL_INSPIRON,
        profile: SimProfile = TINY,
    ):
        self.machine = machine
        self.profile = profile

    def setup(self, ctx: ScenarioContext) -> None:
        scenario = near_field_scenario(
            tuned_frequency_hz(self.machine, self.profile),
            physics_frequency_hz=1.5 * self.machine.vrm_frequency_hz,
        )
        ctx.publish(self, "attack.scenario", scenario)


class NoCountermeasure(Component):
    """The explicit absence of a countermeasure (the slot is always
    filled, so the power model's requires never go conditional)."""

    slot = "countermeasure"
    name = "no-countermeasure"
    provides = ("attack.dithering",)

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(self, "attack.dithering", None)


class VrmDitherCountermeasure(Component):
    """VRM frequency dithering (DESIGN.md countermeasures) as a
    pluggable component: spreads the switching tone to defeat
    band-energy receivers."""

    slot = "countermeasure"
    name = "vrm-dithering"
    provides = ("attack.dithering",)

    def __init__(self, spread_rel: float = 0.05, coherence_s: float = 1e-3):
        self.spread_rel = spread_rel
        self.coherence_s = coherence_s

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(
            self,
            "attack.dithering",
            VrmDithering(
                spread_rel=self.spread_rel, coherence_s=self.coherence_s
            ),
        )
