"""CPU clock-modulation covert channel (binary FSK over the envelope).

Models the transmitter of the CPU frequency/clock-modulation covert
channel of arXiv 2404.05823 on this repository's EM chain: the sender
gates its compute at one of two modulation frequencies - the effect of
duty-cycle clock modulation - so both symbols present the *same*
average load and the information rides only in the gating rate.  On
the air side the VRM's replenishment (and hence the radiated band
energy) follows the gating, putting a low-frequency tone on the Eq. 1
envelope; the receiver runs a two-tone Goertzel bank per bit window
and picks the stronger tone.

Because the symbols are amplitude-identical by construction, this
channel survives level-based defenses that would defeat the energy
receiver - which is why its receiver is the FSK one, and why the
countermeasure study pairs it with VRM dithering rather than level
normalisation.
"""

from __future__ import annotations

from typing import List

from ...types import ActivityTrace, Interval
from ..component import Component, ScenarioContext
from ..components import (
    ChainPowerModel,
    EnvelopeFskReceiver,
    NearFieldChannel,
    NoCountermeasure,
)
from ..registry import ScenarioSpec, register_scenario


class ClockModTransmitter(Component):
    """Encode bits as the gating frequency of a constant-duty load."""

    slot = "transmitter"
    name = "clockmod-fsk-tx"
    provides = ("attack.bits", "attack.activity", "attack.timing")

    def __init__(
        self,
        n_bits: int = 32,
        bit_period_s: float = 0.1,
        lead_in_s: float = 0.1,
        mod_zero_hz: float = 40.0,
        mod_one_hz: float = 80.0,
        duty: float = 0.5,
    ):
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if mod_zero_hz <= 0 or mod_one_hz <= 0:
            raise ValueError("modulation frequencies must be positive")
        if mod_zero_hz == mod_one_hz:
            raise ValueError("FSK needs two distinct modulation tones")
        self.n_bits = n_bits
        self.bit_period_s = bit_period_s
        self.lead_in_s = lead_in_s
        self.mod_zero_hz = mod_zero_hz
        self.mod_one_hz = mod_one_hz
        self.duty = duty

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(
            self,
            "attack.timing",
            {
                "n_bits": self.n_bits,
                "bit_period_s": self.bit_period_s,
                "start_s": self.lead_in_s,
                "mod_zero_hz": self.mod_zero_hz,
                "mod_one_hz": self.mod_one_hz,
                "duty": self.duty,
            },
        )

    def run(self, ctx: ScenarioContext) -> None:
        rng = ctx.rng(self)
        bits = rng.integers(0, 2, size=self.n_bits).astype("uint8")
        intervals: List[Interval] = []
        for i, bit in enumerate(bits):
            freq = self.mod_one_hz if bit else self.mod_zero_hz
            period = 1.0 / freq
            start = self.lead_in_s + i * self.bit_period_s
            end = start + self.bit_period_s
            t = start
            while t < end:
                active_end = min(t + self.duty * period, end)
                intervals.append(Interval(t, active_end, level=1.0))
                t += period
        duration = self.lead_in_s * 2 + self.n_bits * self.bit_period_s
        ctx.publish(self, "attack.bits", bits)
        ctx.publish(
            self, "attack.activity", ActivityTrace(intervals, duration)
        )
        ctx.gauge("transmitter.bits", self.n_bits)
        ctx.gauge(
            "transmitter.tone_ratio", self.mod_one_hz / self.mod_zero_hz
        )


SPEC = ScenarioSpec(
    name="clockmod-fsk",
    title=(
        "CPU clock-modulation covert channel (arXiv 2404.05823): "
        "envelope FSK over VRM EM emanations"
    ),
    slots=(
        ("transmitter", "clockmod-fsk-tx"),
        ("power", "pmu-vrm-chain"),
        ("channel", "em-near-field"),
        ("receiver", "envelope-fsk-receiver"),
        ("countermeasure", "no-countermeasure"),
    ),
    tags=("chain", "attack"),
    default_seed=11,
)


@register_scenario(SPEC)
def build(seed: int, quick: bool) -> List[Component]:
    n_bits = 32 if quick else 128
    return [
        ClockModTransmitter(n_bits=n_bits),
        ChainPowerModel(),
        NearFieldChannel(),
        EnvelopeFskReceiver(),
        NoCountermeasure(),
    ]
