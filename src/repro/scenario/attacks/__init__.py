"""Related-work attack scenarios on the shared chain (PAPERS.md)."""
