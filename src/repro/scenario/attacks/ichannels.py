"""IChannels-style current-management throttling covert channel.

Models the transmitter of *IChannels: Exploiting Current Management
Mechanisms to Create Covert Channels in Modern Processors* (arXiv
2106.05050) on this repository's EM chain: the sender modulates how
hard it drives the core's current-management machinery.  A ``1`` bit is
an unthrottled power virus (sustained maximum activity, the VRM
replenishes at full tilt); a ``0`` bit deliberately trips the current
limiter, which duty-cycles the core - here modeled as the activity
being gated at the throttle period with a reduced duty.  The two
symbols differ in *average current draw*, so the VRM burst charge - and
with it the radiated band energy - carries the bit, and the standard
per-bit energy receiver with the paper's bimodal threshold decodes it.

Unlike the paper's OOK transmitter (sleep-timer modulation inside one
process), nothing here sleeps: both symbols keep the core nominally
busy, which is exactly the IChannels trick - the covert state lives in
the *power-management response*, not in idle time.
"""

from __future__ import annotations

from typing import List

from ...types import ActivityTrace, Interval
from ..component import Component, ScenarioContext
from ..components import (
    BitEnergyReceiver,
    ChainPowerModel,
    NearFieldChannel,
    NoCountermeasure,
)
from ..registry import ScenarioSpec, register_scenario


class ThrottleTransmitter(Component):
    """Encode bits as throttled vs. unthrottled compute bursts."""

    slot = "transmitter"
    name = "ichannels-throttle-tx"
    provides = ("attack.bits", "attack.activity", "attack.timing")

    def __init__(
        self,
        n_bits: int = 48,
        bit_period_s: float = 0.05,
        lead_in_s: float = 0.1,
        throttle_period_s: float = 0.005,
        throttle_duty: float = 0.35,
        boundary_gap_s: float = 0.002,
    ):
        if not 0.0 < throttle_duty < 1.0:
            raise ValueError("throttle_duty must be in (0, 1)")
        self.n_bits = n_bits
        self.bit_period_s = bit_period_s
        self.lead_in_s = lead_in_s
        self.throttle_period_s = throttle_period_s
        self.throttle_duty = throttle_duty
        self.boundary_gap_s = boundary_gap_s

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(
            self,
            "attack.timing",
            {
                "n_bits": self.n_bits,
                "bit_period_s": self.bit_period_s,
                "start_s": self.lead_in_s,
                "throttle_period_s": self.throttle_period_s,
                "throttle_duty": self.throttle_duty,
            },
        )

    def run(self, ctx: ScenarioContext) -> None:
        rng = ctx.rng(self)
        bits = rng.integers(0, 2, size=self.n_bits).astype("uint8")
        intervals: List[Interval] = []
        for i, bit in enumerate(bits):
            start = self.lead_in_s + i * self.bit_period_s
            end = start + self.bit_period_s - self.boundary_gap_s
            if bit:
                # Unthrottled power virus: one sustained burst.
                intervals.append(Interval(start, end, level=1.0))
            else:
                # Current-limited: the limiter gates the core at the
                # throttle period; only the duty fraction executes.
                t = start
                while t < end:
                    active_end = min(
                        t + self.throttle_duty * self.throttle_period_s, end
                    )
                    intervals.append(Interval(t, active_end, level=1.0))
                    t += self.throttle_period_s
        duration = self.lead_in_s * 2 + self.n_bits * self.bit_period_s
        ctx.publish(self, "attack.bits", bits)
        ctx.publish(
            self, "attack.activity", ActivityTrace(intervals, duration)
        )
        ctx.gauge("transmitter.bits", self.n_bits)
        ctx.gauge(
            "transmitter.duty_contrast",
            1.0 - self.throttle_duty,
        )


SPEC = ScenarioSpec(
    name="ichannels-throttle",
    title=(
        "IChannels-style current-throttling covert channel "
        "(arXiv 2106.05050) over VRM EM emanations"
    ),
    slots=(
        ("transmitter", "ichannels-throttle-tx"),
        ("power", "pmu-vrm-chain"),
        ("channel", "em-near-field"),
        ("receiver", "bit-energy-receiver"),
        ("countermeasure", "no-countermeasure"),
    ),
    tags=("chain", "attack"),
    default_seed=7,
)


@register_scenario(SPEC)
def build(seed: int, quick: bool) -> List[Component]:
    n_bits = 48 if quick else 192
    return [
        ThrottleTransmitter(n_bits=n_bits),
        ChainPowerModel(),
        NearFieldChannel(),
        BitEnergyReceiver(),
        NoCountermeasure(),
    ]
