"""Inter-component dependency resolution.

The resolver turns a bag of components into the one canonical execution
order: consumers run after the providers of every resource they
require, and ties are broken by ``(slot order, name)`` - never by
registration order.  A scenario built from the same components in any
order therefore executes identically, which is half of the
order-invariance guarantee (the other half is name-derived randomness
streams).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .component import SLOTS, Component, check_component


class DependencyError(ValueError):
    """A scenario's component graph is unsatisfiable."""


def resolve_order(components: Sequence[Component]) -> List[Component]:
    """Canonical execution order for ``components``.

    Raises :class:`DependencyError` on duplicate names, duplicate
    providers, a required resource nobody provides, or a dependency
    cycle.
    """
    components = list(components)
    if not components:
        raise DependencyError("a scenario needs at least one component")
    for component in components:
        problem = check_component(component)
        if problem is not None:
            raise DependencyError(problem)
    names = [c.name for c in components]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise DependencyError(f"duplicate component names: {dupes}")

    provider: Dict[str, Component] = {}
    for component in components:
        for resource in component.provides:
            if resource in provider:
                raise DependencyError(
                    f"resource {resource!r} provided by both "
                    f"{provider[resource].name!r} and {component.name!r}"
                )
            provider[resource] = component
    for component in components:
        for resource in component.requires:
            if resource not in provider:
                raise DependencyError(
                    f"component {component.name!r} requires {resource!r} "
                    f"but no component provides it"
                )

    # Canonical base order: slot order, then name.  The topological
    # sort consumes candidates in this order, so the final order is a
    # pure function of the component *set*.
    base = sorted(components, key=lambda c: (SLOTS.index(c.slot), c.name))
    indegree: Dict[str, int] = {c.name: 0 for c in components}
    consumers: Dict[str, List[Component]] = {c.name: [] for c in components}
    for component in components:
        deps = {provider[r].name for r in component.requires}
        deps.discard(component.name)
        indegree[component.name] = len(deps)
        for dep in deps:
            consumers[dep].append(component)

    order: List[Component] = []
    ready = [c for c in base if indegree[c.name] == 0]
    while ready:
        current = ready.pop(0)
        order.append(current)
        released = []
        for consumer in consumers[current.name]:
            indegree[consumer.name] -= 1
            if indegree[consumer.name] == 0:
                released.append(consumer)
        if released:
            ready.extend(released)
            ready.sort(key=lambda c: (SLOTS.index(c.slot), c.name))
    if len(order) != len(components):
        stuck = sorted(n for n, d in indegree.items() if d > 0)
        raise DependencyError(
            f"dependency cycle among components: {stuck}"
        )
    return order
