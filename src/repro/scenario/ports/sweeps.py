"""Sweep-engine experiments as scenarios: Table II, Table III, Figure 7.

The port is bit-identical by construction: the transmitter component
publishes the *same* :class:`~repro.sweep.spec.SweepSpec` the
experiment harness builds, the power model plans it along the same
k_power -> k_capture key DAG, and the receiver executes it through
:func:`~repro.sweep.engine.run_sweep` - so every record (bits digests,
BER, RNG digests) matches the pre-framework harness exactly.  What the
framework adds is the declarative decomposition, the conformance
contract, and chain-key publication for the coherence checks.
"""

from __future__ import annotations

from typing import List

from ...params import SimProfile, TINY
from ...sweep import plan_sweep, run_sweep
from ...sweep.spec import SweepSpec
from ..component import Component, ScenarioContext
from ..registry import ScenarioSpec, register_scenario

#: The slot layout shared by every sweep-backed scenario.
SWEEP_SLOTS = (
    ("transmitter", "covert-sweep-source"),
    ("power", "sweep-key-dag"),
    ("channel", "sweep-em-audit"),
    ("receiver", "sweep-receiver"),
    ("countermeasure", "no-countermeasure"),
)


class SweepSource(Component):
    """Publishes the sweep spec - the digital/transmit description of
    every trial (machines, seeds, payloads, rates, framing)."""

    slot = "transmitter"
    name = "covert-sweep-source"
    provides = ("sweep.spec",)

    def __init__(self, spec: SweepSpec):
        self.spec = spec

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(self, "sweep.spec", self.spec)
        ctx.gauge("transmitter.trials", len(self.spec.trials()))


class SweepChainPlanner(Component):
    """The PMU/VRM power model through the key-DAG planner: fingerprints
    every trial's chain without running it and publishes the plan."""

    slot = "power"
    name = "sweep-key-dag"
    provides = ("sweep.plan",)
    requires = ("sweep.spec",)

    def run(self, ctx: ScenarioContext) -> None:
        plan = plan_sweep(ctx.get("sweep.spec"))
        ctx.publish(self, "sweep.plan", plan)
        for tp in plan.trials:
            ctx.add_chain_keys(tp.keys)
        ctx.gauge("sweep.plan.trials", plan.n_trials)
        ctx.gauge("sweep.plan.stage_runs", plan.planned_stage_runs)
        ctx.gauge("sweep.plan.sharing_factor", plan.sharing_factor)


class SweepChannelAudit(Component):
    """The EM-channel slot for sweep scenarios: audits the capture
    topology (how many distinct propagation environments the grid
    expands to) from the plan's capture nodes."""

    slot = "channel"
    name = "sweep-em-audit"
    provides = ("sweep.channel",)
    requires = ("sweep.plan",)

    def run(self, ctx: ScenarioContext) -> None:
        plan = ctx.get("sweep.plan")
        captures = [n for n in plan.nodes if n.stage == "capture"]
        summary = {
            "capture_nodes": len(captures),
            "max_fan_out": max(
                (len(n.children) for n in captures), default=0
            ),
        }
        ctx.publish(self, "sweep.channel", summary)
        ctx.gauge("channel.capture_nodes", summary["capture_nodes"])


class SweepReceiver(Component):
    """Executes the plan through the sweep engine and records every
    trial's deterministic result."""

    slot = "receiver"
    name = "sweep-receiver"
    provides = ("sweep.outcome",)
    requires = ("sweep.spec", "sweep.plan")

    def run(self, ctx: ScenarioContext) -> None:
        outcome = run_sweep(
            ctx.get("sweep.spec"),
            plan=ctx.get("sweep.plan"),
            batch=ctx.batch,
        )
        ctx.publish(self, "sweep.outcome", outcome)
        for record in outcome.records:
            ctx.add_record(
                {
                    "label": record["label"] or record["trial_id"][:12],
                    "digest": record["result"]["bits_sha"],
                    "rng": record["result"]["rng"],
                    "trial_id": record["trial_id"],
                    "trial": record["trial"],
                    "keys": record["keys"],
                    "result": record["result"],
                }
            )
        ctx.gauge("receiver.trials", len(outcome.records))


class SweepNoCountermeasure(Component):
    """Explicit empty countermeasure slot for sweep scenarios."""

    slot = "countermeasure"
    name = "no-countermeasure"
    provides = ("sweep.countermeasure",)

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(self, "sweep.countermeasure", None)


def sweep_components(spec: SweepSpec) -> List[Component]:
    """The standard component set around a ready sweep spec."""
    return [
        SweepSource(spec),
        SweepChainPlanner(),
        SweepChannelAudit(),
        SweepReceiver(),
        SweepNoCountermeasure(),
    ]


def table2_components(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> List[Component]:
    from ...experiments.table2_near_field import sweep_spec

    return sweep_components(sweep_spec(profile, quick, seed))


def table3_components(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> List[Component]:
    from ...experiments.table3_distance import sweep_spec

    return sweep_components(sweep_spec(profile, quick, seed))


def fig7_components(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> List[Component]:
    from ...experiments.fig7_threshold import sweep_spec

    return sweep_components(sweep_spec(profile, quick, seed))


@register_scenario(
    ScenarioSpec(
        name="table2",
        title="Table II: near-field covert channel on the six laptops",
        slots=SWEEP_SLOTS,
        tags=("chain", "sweep", "port"),
        default_seed=0,
    )
)
def build_table2(seed: int, quick: bool) -> List[Component]:
    return table2_components(TINY, quick, seed)


@register_scenario(
    ScenarioSpec(
        name="table3",
        title="Table III: covert channel vs distance, incl. through-wall",
        slots=SWEEP_SLOTS,
        tags=("chain", "sweep", "port"),
        default_seed=0,
    )
)
def build_table3(seed: int, quick: bool) -> List[Component]:
    return table3_components(TINY, quick, seed)


@register_scenario(
    ScenarioSpec(
        name="fig7",
        title="Figure 7: threshold selection across receiver variants",
        slots=SWEEP_SLOTS,
        tags=("chain", "sweep", "port"),
        default_seed=0,
    )
)
def build_fig7(seed: int, quick: bool) -> List[Component]:
    return fig7_components(TINY, quick, seed)
