"""The streaming covert receiver as a scenario.

Bit-identical port of the ``stream-covert-tiny`` baseline path: the
reference near-field link (Dell Inspiron, TINY profile, seed 5, the
conftest 100-bit payload) replayed chunk-by-chunk through the
streaming receiver under a deliberately slow drop-oldest service, so
the scenario pins chunk/lag/drop accounting and the lossy finalised
decode alongside the clean batch bits.
"""

from __future__ import annotations

import warnings
from typing import List

import numpy as np

from ...chain import capture_chain_keys
from ...core.align import align_bits
from ...covert.link import CovertLink
from ...params import TINY
from ...systems.laptops import DELL_INSPIRON
from ..component import Component, ScenarioContext
from ..registry import ScenarioSpec, register_scenario

PAYLOAD_SEED = 99
PAYLOAD_BITS = 100
CHUNK_SIZE = 4096
JITTER_REL = 0.05
BUFFER_CAPACITY = 8
SERVICE_RATE_FACTOR = 0.4


class StreamLinkSource(Component):
    """The reference covert link's digital half: framing + activity."""

    slot = "transmitter"
    name = "stream-link-source"
    provides = ("stream.link", "stream.payload", "stream.prepared")

    def __init__(self, link: CovertLink):
        self.link = link

    def run(self, ctx: ScenarioContext) -> None:
        payload = np.random.default_rng(PAYLOAD_SEED).integers(
            0, 2, size=PAYLOAD_BITS
        )
        prepared = self.link.prepare(payload)
        ctx.publish(self, "stream.link", self.link)
        ctx.publish(self, "stream.payload", payload)
        ctx.publish(self, "stream.prepared", prepared)
        ctx.gauge("transmitter.bits", len(prepared.tx_bits))


class StreamChainRenderer(Component):
    """The analog chain plus the clean batch decode for reference."""

    slot = "power"
    name = "stream-chain"
    provides = ("stream.batch",)
    requires = ("stream.link", "stream.prepared")

    def run(self, ctx: ScenarioContext) -> None:
        link = ctx.get("stream.link")
        prepared = ctx.get("stream.prepared")
        keys = capture_chain_keys(
            link.machine,
            prepared.activity,
            link.scenario,
            link.profile,
            prepared.rng,
            allow_c_states=link.allow_c_states,
            allow_p_states=link.allow_p_states,
            vrm_dithering=link.vrm_dithering,
        )
        ctx.add_chain_keys(keys)
        batch = link.run_prepared(prepared)
        ctx.publish(self, "stream.batch", batch)
        ctx.gauge("scenario.capture.samples", batch.capture.samples.size)
        ctx.gauge("channel.batch_ber", batch.metrics.ber)


class StreamChunkChannel(Component):
    """The air-to-receiver transport: jittered chunked replay."""

    slot = "channel"
    name = "stream-chunk-transport"
    provides = ("stream.source",)
    requires = ("stream.batch",)

    def run(self, ctx: ScenarioContext) -> None:
        from ...stream import CaptureChunkSource

        source = CaptureChunkSource(
            ctx.get("stream.batch").capture,
            chunk_size=CHUNK_SIZE,
            jitter_rel=JITTER_REL,
        )
        ctx.publish(self, "stream.source", source)
        ctx.gauge("channel.chunk_size", CHUNK_SIZE)


class StreamReceiverRunner(Component):
    """The streaming receiver under a slow drop-oldest service."""

    slot = "receiver"
    name = "streaming-receiver"
    provides = ("stream.outcome",)
    requires = ("stream.link", "stream.batch", "stream.source")

    def run(self, ctx: ScenarioContext) -> None:
        from ...stream import StreamingReceiver, StreamRunner

        link = ctx.get("stream.link")
        batch = ctx.get("stream.batch")
        source = ctx.get("stream.source")
        bit_period = link.transmitter(
            np.random.default_rng(link.seed)
        ).nominal_bit_duration_s()
        receiver = StreamingReceiver(
            source.meta,
            link.vrm_frequency_hz,
            expected_bit_period_s=bit_period,
            config=link.decoder_config,
            frame_format=link.frame_format,
        )
        runner = StreamRunner(
            source,
            receiver,
            buffer_capacity=BUFFER_CAPACITY,
            policy="drop-oldest",
            service_rate_sps=batch.capture.sample_rate * SERVICE_RATE_FACTOR,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = runner.run()
        final = receiver.finalize()
        lossy = align_bits(batch.tx_bits, final.bits)
        stats = run.stats
        ctx.publish(
            self,
            "stream.outcome",
            {"run": run, "final": final, "lossy": lossy},
        )
        ctx.gauge("stream.run.chunks_dropped", stats.chunks_dropped)
        ctx.gauge("stream.run.chunks_shed", stats.chunks_shed)
        ctx.gauge("stream.run.gap_samples", stats.gap_samples)
        ctx.gauge("stream.run.max_lag_s", stats.max_lag_s)
        ctx.gauge("stream.run.synchronized", float(receiver.synchronized))
        ctx.gauge("stream.run.lossy_ber", lossy.ber)
        ctx.add_record(
            {
                "label": "stream-covert",
                "digest": _bits_digest(final.bits),
                "tx_digest": _bits_digest(batch.tx_bits),
                "lossy_ber": lossy.ber,
                "chunks_dropped": stats.chunks_dropped,
                "chunks_shed": stats.chunks_shed,
                "gap_samples": stats.gap_samples,
            }
        )
        ctx.add_row(
            {
                "label": "stream-covert",
                "lossy_BER": lossy.ber,
                "dropped": stats.chunks_dropped,
            }
        )


class StreamNoCountermeasure(Component):
    """Explicit empty countermeasure slot."""

    slot = "countermeasure"
    name = "no-countermeasure"
    provides = ("stream.countermeasure",)

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(self, "stream.countermeasure", None)


def _bits_digest(bits) -> str:
    import hashlib

    data = np.asarray(bits, dtype=np.uint8).tobytes()
    return hashlib.sha256(data).hexdigest()[:16]


def stream_components(link: CovertLink) -> List[Component]:
    return [
        StreamLinkSource(link),
        StreamChainRenderer(),
        StreamChunkChannel(),
        StreamReceiverRunner(),
        StreamNoCountermeasure(),
    ]


@register_scenario(
    ScenarioSpec(
        name="stream-covert",
        title="Streaming receiver over the reference covert link",
        slots=(
            ("transmitter", "stream-link-source"),
            ("power", "stream-chain"),
            ("channel", "stream-chunk-transport"),
            ("receiver", "streaming-receiver"),
            ("countermeasure", "no-countermeasure"),
        ),
        tags=("chain", "port"),
        default_seed=5,
    )
)
def build_stream(seed: int, quick: bool) -> List[Component]:
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=seed)
    return stream_components(link)
