"""The Table IV keylogging attack as a scenario.

Bit-identical port: the transmitter component runs the typing /
interrupt simulation via :meth:`KeylogExperiment.prepare` (one RNG,
same draw order as the monolithic harness), the power model renders
the capture with that RNG, and the receiver scores detection with the
same detector - so TPR/FPR/word scores match
``KeylogExperiment.run()`` exactly for the same seed and text.
"""

from __future__ import annotations

from typing import List, Optional

from ...chain import capture_chain_keys, render_capture
from ...keylog.detector import KeystrokeDetector
from ...keylog.evaluate import KeylogExperiment, _score_detection
from ..component import Component, ScenarioContext
from ..registry import ScenarioSpec, register_scenario

QUICK_TEXT = "the quick brown fox"


class KeylogTypist(Component):
    """Types the text: keystroke stream -> CPU activity trace."""

    slot = "transmitter"
    name = "keylog-typist"
    provides = (
        "keylog.text",
        "keylog.keystrokes",
        "keylog.activity",
        "keylog.rng",
    )

    def __init__(self, experiment: KeylogExperiment, text: Optional[str]):
        self.experiment = experiment
        self.text = text

    def run(self, ctx: ScenarioContext) -> None:
        text = self.text
        if text is None:
            import numpy as np

            from ...keylog.typing_model import random_words

            text = random_words(
                50, np.random.default_rng(self.experiment.seed + 77)
            )
        keystrokes, activity, scenario, rng = self.experiment.prepare(text)
        ctx.publish(self, "keylog.text", text)
        ctx.publish(self, "keylog.keystrokes", keystrokes)
        ctx.publish(self, "keylog.activity", activity)
        ctx.publish(self, "keylog.rng", rng)
        ctx.gauge("transmitter.keystrokes", len(keystrokes))


class KeylogChannel(Component):
    """Names the measurement setup the experiment resolved."""

    slot = "channel"
    name = "keylog-environment"
    provides = ("keylog.scenario",)

    def __init__(self, experiment: KeylogExperiment):
        self.experiment = experiment

    def run(self, ctx: ScenarioContext) -> None:
        # Resolution draws nothing, so re-deriving it here matches the
        # scenario the typist's prepare() resolved.
        scenario = self.experiment.scenario
        if scenario is None:
            from ...chain import tuned_frequency_hz
            from ...em.environment import near_field_scenario

            scenario = near_field_scenario(
                tuned_frequency_hz(
                    self.experiment.machine, self.experiment.profile
                ),
                physics_frequency_hz=(
                    1.5 * self.experiment.machine.vrm_frequency_hz
                ),
            )
        ctx.publish(self, "keylog.scenario", scenario)


class KeylogChainRenderer(Component):
    """PMU -> VRM -> emission -> SDR capture of the typing session."""

    slot = "power"
    name = "keylog-chain"
    provides = ("keylog.capture",)
    requires = ("keylog.activity", "keylog.scenario", "keylog.rng")

    def __init__(self, experiment: KeylogExperiment):
        self.experiment = experiment

    def run(self, ctx: ScenarioContext) -> None:
        activity = ctx.get("keylog.activity")
        scenario = ctx.get("keylog.scenario")
        rng = ctx.get("keylog.rng")
        keys = capture_chain_keys(
            self.experiment.machine,
            activity,
            scenario,
            self.experiment.profile,
            rng,
        )
        ctx.add_chain_keys(keys)
        capture = render_capture(
            self.experiment.machine,
            activity,
            scenario,
            self.experiment.profile,
            rng,
        )
        ctx.publish(self, "keylog.capture", capture)
        ctx.gauge("scenario.capture.samples", capture.samples.size)


class KeylogScorer(Component):
    """Keystroke detection and Table IV scoring."""

    slot = "receiver"
    name = "keylog-detector"
    provides = ("keylog.result",)
    requires = ("keylog.capture", "keylog.keystrokes", "keylog.text")

    def __init__(self, experiment: KeylogExperiment):
        self.experiment = experiment

    def run(self, ctx: ScenarioContext) -> None:
        experiment = self.experiment
        detector = KeystrokeDetector(
            experiment.machine.vrm_frequency_hz
            / experiment.profile.total_freq_divisor,
            experiment.detector_config,
        )
        detection = detector.detect(ctx.get("keylog.capture"))
        result = _score_detection(
            experiment,
            detection,
            ctx.get("keylog.keystrokes"),
            ctx.get("keylog.text"),
        )
        ctx.publish(self, "keylog.result", result)
        # receiver.* names: _score_detection already observes the
        # keylog.* histograms on the active registry, and a histogram
        # shadows a same-named gauge in the snapshot.
        ctx.gauge("receiver.true_positive_rate", result.true_positive_rate)
        ctx.gauge("receiver.false_positive_rate", result.false_positive_rate)
        ctx.gauge("receiver.n_detected", result.n_detected)
        ctx.add_record(
            {
                "label": result.label,
                "digest": f"tpr={result.true_positive_rate:.9f}"
                f";fpr={result.false_positive_rate:.9f}"
                f";detected={result.n_detected}",
                "row": result.row(),
                "n_keystrokes": result.n_keystrokes,
                "n_detected": result.n_detected,
            }
        )
        ctx.add_row(result.row())


class KeylogNoCountermeasure(Component):
    """Explicit empty countermeasure slot."""

    slot = "countermeasure"
    name = "no-countermeasure"
    provides = ("keylog.countermeasure",)

    def setup(self, ctx: ScenarioContext) -> None:
        ctx.publish(self, "keylog.countermeasure", None)


def keylog_components(
    experiment: KeylogExperiment, text: Optional[str]
) -> List[Component]:
    return [
        KeylogTypist(experiment, text),
        KeylogChannel(experiment),
        KeylogChainRenderer(experiment),
        KeylogScorer(experiment),
        KeylogNoCountermeasure(),
    ]


@register_scenario(
    ScenarioSpec(
        name="keylog",
        title="Table IV: keylogging a typed phrase via PMU emanations",
        slots=(
            ("transmitter", "keylog-typist"),
            ("power", "keylog-chain"),
            ("channel", "keylog-environment"),
            ("receiver", "keylog-detector"),
            ("countermeasure", "no-countermeasure"),
        ),
        tags=("chain", "port"),
        default_seed=2,
    )
)
def build_keylog(seed: int, quick: bool) -> List[Component]:
    text = QUICK_TEXT if quick else None
    return keylog_components(KeylogExperiment(seed=seed), text)
