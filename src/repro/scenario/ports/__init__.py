"""Paper experiments re-expressed as scenarios (bit-identical ports)."""
