"""Declarative scenario plugin framework (DESIGN.md section 15).

A *scenario* is a named configuration of components - transmitter,
power-model, channel, receiver, countermeasure - with a managed
lifecycle (setup -> run -> teardown), explicit inter-component
dependency resolution over published resources, and per-component
randomness streams derived deterministically from the scenario seed.

The framework exists so a new attack from the related literature costs
one transmitter plus one receiver component on the shared chain, not a
bespoke harness: the ports under :mod:`repro.scenario.ports` re-express
the paper experiments (Table II/III, Figure 7, keylogging, streaming
covert) bit-identically, and :mod:`repro.scenario.attacks` adds the
IChannels-style throttling channel and the clock-modulation channel.
Every registered scenario is additionally subject to the conformance
suite (:mod:`repro.scenario.conformance`) by registration alone.
"""

from .component import SLOTS, Component, ScenarioContext
from .dependency import DependencyError, resolve_order
from .engine import ScenarioOutcome, run_components
from .lifecycle import Lifecycle, LifecycleError
from .randomness import RandomnessStreams, derive_seed
from .registry import (
    SCENARIO_SCHEMA,
    ScenarioInfo,
    ScenarioSpec,
    build_components,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_registered,
    scenario_id,
)

__all__ = [
    "SLOTS",
    "Component",
    "ScenarioContext",
    "DependencyError",
    "resolve_order",
    "ScenarioOutcome",
    "run_components",
    "Lifecycle",
    "LifecycleError",
    "RandomnessStreams",
    "derive_seed",
    "SCENARIO_SCHEMA",
    "ScenarioInfo",
    "ScenarioSpec",
    "build_components",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_registered",
    "scenario_id",
]


def load_builtin_scenarios() -> None:
    """Import every built-in scenario module, populating the registry.

    Idempotent (registration is keyed by name and re-imports are no-ops
    under Python's module cache), so callers - the CLI, the baseline
    gate, the conformance suite - can call it unconditionally.
    """
    from .attacks import clockmod, ichannels  # noqa: F401
    from .ports import keylog, stream, sweeps  # noqa: F401
