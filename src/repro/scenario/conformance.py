"""The scenario conformance contract, as reusable check functions.

Every registered scenario must pass every applicable check; the pytest
harness (``tests/scenario/test_conformance.py``) is a thin parametrized
shim over ``list_scenarios() x CONFORMANCE_CHECKS``, so registering a
scenario is all it takes to put it under test.

To bound runtime the checks share a small set of runs per scenario
(:func:`execute_runs`): a *reference* run instrumented with tracing and
metrics, a *repeat* run (same seed), a run over a *permuted* component
list, and - for sweep-backed scenarios - a run with the batch kernels
forced on.  All runs execute serially under a scenario-private chain
cache, so the analog stages compute once and the later runs certify
cache transparency for free.

Checks raise :class:`ConformanceError` with a scenario-prefixed message
on violation and return ``None`` on success.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exec.context import execution_scope
from ..obs.metrics import flatten, metrics_scope
from ..obs.trace import REGISTERED_SPANS, collect_events
from .component import SLOTS, check_component
from .engine import ScenarioOutcome, run_components
from .registry import build_components, get_scenario, scenario_id

#: Stage names a published chain-key path may use, in chain order.
STAGE_ORDER = ("pmu", "vrm", "dither", "emission", "capture")

#: Chain stages whose key is a pure function of the previous stage's
#: key (no extra inputs), so the parent -> child mapping must be
#: functional across every path a scenario publishes.
FUNCTIONAL_EDGES = (("pmu", "vrm"), ("dither", "emission"))


class ConformanceError(AssertionError):
    """A scenario violated the conformance contract."""


@dataclass
class ScenarioRuns:
    """The shared run set the checks operate on."""

    name: str
    seed: int
    ref: ScenarioOutcome
    repeat: ScenarioOutcome
    permuted: ScenarioOutcome
    batch_on: Optional[ScenarioOutcome]
    events: List[dict] = field(default_factory=list)
    registry_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def spec(self):
        return get_scenario(self.name).spec


def execute_runs(name: str) -> ScenarioRuns:
    """Run one scenario the handful of ways the checks need.

    Everything runs serially under a temporary scenario-private chain
    cache: the reference run warms it, the repeat / permuted / batch
    runs certify that cached replays stay bit-identical.
    """
    info = get_scenario(name)
    seed = info.spec.default_seed
    with tempfile.TemporaryDirectory(prefix=f"conformance-{name}-") as tmp:
        with execution_scope(jobs=1, cache_enabled=True, cache_dir=tmp):
            with metrics_scope() as registry:
                with collect_events() as events:
                    ref = _run(name, seed)
                registry_metrics = flatten(registry.snapshot())
            repeat = _run(name, seed)
            components = build_components(name, seed, quick=True)
            permuted = run_components(
                name, list(reversed(components)), seed=seed, quick=True
            )
            batch_on = None
            if "sweep" in info.spec.tags:
                batch_on = _run(name, seed, batch="on")
    return ScenarioRuns(
        name=name,
        seed=seed,
        ref=ref,
        repeat=repeat,
        permuted=permuted,
        batch_on=batch_on,
        events=list(events),
        registry_metrics=registry_metrics,
    )


def _run(name: str, seed: int, batch: str = "auto") -> ScenarioOutcome:
    components = build_components(name, seed, quick=True)
    return run_components(
        name, components, seed=seed, quick=True, batch=batch
    )


def _fail(name: str, message: str) -> None:
    raise ConformanceError(f"scenario {name!r}: {message}")


# ---------------------------------------------------------------------------
# Checks


def check_static_contract(runs: ScenarioRuns) -> None:
    """Spec and component declarations are well-formed and agree."""
    spec = runs.spec
    if not spec.title:
        _fail(runs.name, "spec has an empty title")
    sid = scenario_id(spec)
    if len(sid) != 64 or set(sid) - set("0123456789abcdef"):
        _fail(runs.name, f"scenario_id is not a sha256 hex digest: {sid!r}")
    components = build_components(runs.name, runs.seed, quick=True)
    filled = [slot for slot, _ in spec.slots]
    if sorted(set(filled)) != sorted(filled):
        _fail(runs.name, f"spec fills a slot twice: {filled}")
    for slot in filled:
        if slot not in SLOTS:
            _fail(runs.name, f"spec names unknown slot {slot!r}")
    for component in components:
        problem = check_component(component)
        if problem is not None:
            _fail(runs.name, problem)


def check_determinism(runs: ScenarioRuns) -> None:
    """Same seed, same everything: records, rows, metrics, chain keys."""
    if runs.ref.comparable() != runs.repeat.comparable():
        diff = _first_difference(
            runs.ref.comparable(), runs.repeat.comparable()
        )
        _fail(runs.name, f"seed replay diverged: {diff}")


def check_order_invariance(runs: ScenarioRuns) -> None:
    """Permuting component registration order changes nothing: the
    resolver's canonical order (and per-component RNG streams keyed by
    name, not position) make construction order irrelevant."""
    if runs.ref.comparable() != runs.permuted.comparable():
        diff = _first_difference(
            runs.ref.comparable(), runs.permuted.comparable()
        )
        _fail(runs.name, f"component order leaked into the outcome: {diff}")


def check_batch_equivalence(runs: ScenarioRuns) -> None:
    """Sweep-backed scenarios decode bit-identically with the batched
    trial kernels forced on (``--batch on`` vs the default auto)."""
    if runs.batch_on is None:
        return
    if runs.ref.comparable() != runs.batch_on.comparable():
        diff = _first_difference(
            runs.ref.comparable(), runs.batch_on.comparable()
        )
        _fail(runs.name, f"batch=on diverged from batch=auto: {diff}")


def check_records_contract(runs: ScenarioRuns) -> None:
    """Every record carries a label and a digest and is plain JSON -
    no numpy scalars, no timings, nothing non-deterministic."""
    if not runs.ref.records:
        _fail(runs.name, "scenario produced no records")
    for i, record in enumerate(runs.ref.records):
        for key in ("label", "digest"):
            if not isinstance(record.get(key), str) or not record[key]:
                _fail(
                    runs.name,
                    f"record {i} has no usable {key!r}: {record.get(key)!r}",
                )
        try:
            json.dumps(record, allow_nan=False, sort_keys=True)
        except (TypeError, ValueError) as exc:
            _fail(runs.name, f"record {i} is not plain JSON: {exc}")


def check_metrics_contract(runs: ScenarioRuns) -> None:
    """Outcome metrics are floats and mirror into an active metrics
    registry as same-named gauges with equal values."""
    if not runs.ref.metrics:
        _fail(runs.name, "scenario produced no metrics")
    for name, value in runs.ref.metrics.items():
        if not isinstance(value, float):
            _fail(runs.name, f"metric {name!r} is not a float: {value!r}")
        mirrored = runs.registry_metrics.get(name)
        if mirrored is None:
            _fail(runs.name, f"metric {name!r} missing from the registry")
        if mirrored != value:
            _fail(
                runs.name,
                f"metric {name!r} registry mirror {mirrored!r} != "
                f"outcome value {value!r}",
            )


def check_trace_contract(runs: ScenarioRuns) -> None:
    """The run emits the scenario span family, every span name is
    registered (TRACE001's runtime face), and each component appears in
    a setup, run, and teardown component span."""
    spans = [e for e in runs.events if e.get("event") == "span"]
    names = {e["name"] for e in spans}
    for required in (
        "scenario",
        "scenario.setup",
        "scenario.run",
        "scenario.teardown",
    ):
        if required not in names:
            _fail(runs.name, f"missing span {required!r}")
    unregistered = sorted(names - REGISTERED_SPANS)
    if unregistered:
        _fail(runs.name, f"unregistered span names: {unregistered}")
    for phase in ("setup", "run", "teardown"):
        seen = {
            e["component"]
            for e in spans
            if e["name"] == "scenario.component" and e.get("phase") == phase
        }
        missing = sorted(set(runs.ref.order) - seen)
        if missing:
            _fail(
                runs.name,
                f"components missing a {phase} span: {missing}",
            )


def check_chain_key_coherence(runs: ScenarioRuns) -> None:
    """Chain-tagged scenarios publish their trials' key paths, each
    path walks the k_power -> k_capture DAG in stage order, and the
    derivation-only edges stay functional across paths."""
    if "chain" not in runs.spec.tags:
        return
    paths = runs.ref.chain_keys
    if not paths:
        _fail(runs.name, "chain-tagged scenario published no chain keys")
    edge_map: Dict[Tuple[str, str], str] = {}
    for path in paths:
        positions = []
        for stage, key in path:
            if stage not in STAGE_ORDER:
                _fail(runs.name, f"unknown chain stage {stage!r}")
            if len(key) != 64 or set(key) - set("0123456789abcdef"):
                _fail(
                    runs.name,
                    f"stage {stage!r} key is not a sha256 digest: {key!r}",
                )
            positions.append(STAGE_ORDER.index(stage))
        if positions != sorted(positions) or len(set(positions)) != len(
            positions
        ):
            _fail(
                runs.name,
                f"chain path out of stage order: {[s for s, _ in path]}",
            )
        stages = dict(path)
        for parent, child in FUNCTIONAL_EDGES:
            if parent in stages and child in stages:
                seen = edge_map.setdefault(
                    (parent, stages[parent]), stages[child]
                )
                if seen != stages[child]:
                    _fail(
                        runs.name,
                        f"incoherent DAG: {parent} key "
                        f"{stages[parent][:12]} maps to two different "
                        f"{child} keys",
                    )


def check_rng_stream_isolation(runs: ScenarioRuns) -> None:
    """Each component's stream is derived from (seed, component name)
    alone: rebuilding any single stream standalone reproduces the draws
    it would see inside the full scenario, so no component can perturb
    another's randomness."""
    from .randomness import RandomnessStreams

    solo = RandomnessStreams(runs.seed)
    joint = RandomnessStreams(runs.seed)
    for component in runs.ref.order:
        joint.stream(component)
    for component in runs.ref.order:
        a = solo.stream(component).integers(0, 2**32, size=4)
        b = joint.stream(component).integers(0, 2**32, size=4)
        if list(a) != list(b):
            _fail(
                runs.name,
                f"stream {component!r} depends on which other streams "
                "exist",
            )


def _first_difference(a: dict, b: dict) -> str:
    """Human-oriented pointer at the first differing comparable field."""
    for key in a:
        if a[key] != b.get(key):
            return (
                f"field {key!r} differs: {_clip(a[key])} vs "
                f"{_clip(b.get(key))}"
            )
    return "dicts differ"


def _clip(value, limit: int = 200) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


#: The conformance contract, name -> check.  The pytest harness
#: parametrizes over this mapping crossed with ``list_scenarios()``.
CONFORMANCE_CHECKS: Dict[str, Callable[[ScenarioRuns], None]] = {
    "static_contract": check_static_contract,
    "determinism": check_determinism,
    "order_invariance": check_order_invariance,
    "batch_equivalence": check_batch_equivalence,
    "records_contract": check_records_contract,
    "metrics_contract": check_metrics_contract,
    "trace_contract": check_trace_contract,
    "chain_key_coherence": check_chain_key_coherence,
    "rng_stream_isolation": check_rng_stream_isolation,
}
