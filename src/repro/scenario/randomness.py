"""Per-component randomness streams, derived from the scenario seed.

Every component draws from its *own* named stream, and a stream's
state is a pure function of ``(schema tag, scenario seed, stream
name)`` - not of which other streams exist or the order they were
first touched.  That is the property the conformance suite leans on:
permuting component registration order can never change any stream's
draws, and adding a component can never perturb an existing one.

Derivation: the ``(schema, seed, name)`` triple is hashed with SHA-256
and the digest's eight 32-bit words seed a :class:`numpy.random.
SeedSequence`.  The hash keeps adjacent seeds far apart in state space
(no stream aliasing between ``seed`` and ``seed+1``) and makes the
mapping stable across platforms and numpy versions that keep
SeedSequence stable.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Tuple

import numpy as np

#: Bump when the stream derivation changes: recorded scenario baselines
#: depend on it.
RNG_SCHEMA = "scenario-rng-v1"


def _digest_words(seed: int, name: str) -> Tuple[int, ...]:
    material = f"{RNG_SCHEMA}\x1f{int(seed)}\x1f{name}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 32, 4)
    )


def derive_seed(seed: int, name: str) -> int:
    """A derived 63-bit integer seed for sub-harnesses that take a plain
    seed (e.g. a ported experiment), with the same independence
    guarantees as :meth:`RandomnessStreams.stream`."""
    material = f"{RNG_SCHEMA}\x1fseed\x1f{int(seed)}\x1f{name}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class RandomnessStreams:
    """The scenario's stream table: one generator per stream name.

    Streams are created lazily and cached, so two ``stream(name)`` calls
    return the *same* generator (a component's draws advance its own
    stream, and only its own).
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            sequence = np.random.SeedSequence(_digest_words(self.seed, name))
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def derive_seed(self, name: str) -> int:
        """Integer-seed form of :meth:`stream` (see :func:`derive_seed`)."""
        return derive_seed(self.seed, name)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._streams))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
