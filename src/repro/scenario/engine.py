"""The scenario engine: resolve, then drive the lifecycle.

``run_components`` is the one execution path every scenario takes -
the CLI, the baseline gate, the ported experiments and the conformance
suite all funnel through it - so its guarantees hold everywhere:
canonical component order (:mod:`.dependency`), strict phase order
(:mod:`.lifecycle`), per-component randomness streams
(:mod:`.randomness`), and an outcome whose ``records`` / ``metrics`` /
``chain_keys`` are deterministic functions of ``(components, seed,
quick)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import span
from .component import Component, ScenarioContext
from .dependency import resolve_order
from .lifecycle import Lifecycle


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    ``records`` / ``rows`` / ``metrics`` / ``chain_keys`` are
    deterministic under a fixed seed; ``elapsed_s`` is the only
    wall-clock field and is excluded from :meth:`comparable`.
    """

    name: str
    seed: int
    quick: bool
    records: List[Dict[str, Any]]
    rows: List[Dict[str, Any]]
    metrics: Dict[str, float]
    chain_keys: List[Tuple[Tuple[str, str], ...]]
    order: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    def comparable(self) -> Dict[str, Any]:
        """The deterministic projection two equal-seed runs must share
        exactly (the conformance suite's equality surface)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "quick": self.quick,
            "records": self.records,
            "rows": self.rows,
            "metrics": self.metrics,
            "chain_keys": self.chain_keys,
            "order": self.order,
        }

    def record_for(self, label: str) -> Optional[Dict[str, Any]]:
        for record in self.records:
            if record["label"] == label:
                return record
        return None


def run_components(
    name: str,
    components: Sequence[Component],
    *,
    seed: int = 0,
    quick: bool = True,
    batch: str = "auto",
) -> ScenarioOutcome:
    """Execute one scenario: resolve the order, then setup -> run ->
    teardown every component under the scenario spans.

    ``teardown`` runs in reverse dependency order, and runs even when a
    ``run`` hook raises (components that ran their ``setup`` get their
    ``teardown``), so a failing scenario never leaks held state into
    the next one.
    """
    started = time.perf_counter()
    order = resolve_order(components)
    ctx = ScenarioContext(name, seed=seed, quick=quick, batch=batch)
    lifecycle = Lifecycle()
    info = {
        "scenario": name,
        "seed": int(seed),
        "components": len(order),
    }
    with span("scenario", info):
        lifecycle.advance("setup")
        entered: List[Component] = []
        try:
            with span("scenario.setup", {"scenario": name}):
                for component in order:
                    with span(
                        "scenario.component",
                        {"phase": "setup", "component": component.name},
                    ):
                        component.setup(ctx)
                    entered.append(component)
            lifecycle.advance("run")
            with span("scenario.run", {"scenario": name}):
                for component in order:
                    with span(
                        "scenario.component",
                        {"phase": "run", "component": component.name},
                    ):
                        component.run(ctx)
        finally:
            _teardown(name, ctx, lifecycle, entered)
    ctx.gauge("scenario.components", len(order))
    ctx.gauge("scenario.records", len(ctx.records))
    return ScenarioOutcome(
        name=name,
        seed=int(seed),
        quick=bool(quick),
        records=ctx.records,
        rows=ctx.rows,
        metrics=ctx.metrics,
        chain_keys=ctx.chain_keys,
        order=[c.name for c in order],
        elapsed_s=time.perf_counter() - started,
    )


def _teardown(
    name: str,
    ctx: ScenarioContext,
    lifecycle: Lifecycle,
    entered: List[Component],
) -> None:
    """Advance through teardown for every component whose setup ran."""
    while lifecycle.phase not in ("teardown", "complete"):
        lifecycle.advance(
            "run" if lifecycle.phase == "setup" else "teardown"
        )
    with span("scenario.teardown", {"scenario": name}):
        for component in reversed(entered):
            with span(
                "scenario.component",
                {"phase": "teardown", "component": component.name},
            ):
                component.teardown(ctx)
    lifecycle.advance("complete")
