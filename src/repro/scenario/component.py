"""The component contract and the context components share.

A :class:`Component` fills one *slot* of a scenario (transmitter,
power-model, channel, receiver, countermeasure), declares the resources
it ``provides`` and ``requires``, and implements up to three lifecycle
hooks - ``setup`` (publish configuration), ``run`` (do the work),
``teardown`` (release anything held).  Components never talk to each
other directly: everything flows through resources published on the
:class:`ScenarioContext`, which is what makes the dependency graph
explicit and the execution order canonical.

Randomness discipline: a component draws only from ``ctx.rng(self)`` -
its own named stream, derived from the scenario seed
(:mod:`repro.scenario.randomness`) - so no component's draws can
perturb another's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import get_metrics
from .randomness import RandomnessStreams

#: The scenario slots, in presentation (and canonical ordering) order.
SLOTS = ("transmitter", "power", "channel", "receiver", "countermeasure")


class Component:
    """Base class for scenario components.

    Subclasses set ``slot`` / ``name`` / ``provides`` / ``requires`` as
    class attributes (or per instance) and override the hooks they
    need.  ``name`` doubles as the component's randomness-stream name,
    so it must be unique within a scenario.
    """

    slot: str = "transmitter"
    name: str = "component"
    provides: Tuple[str, ...] = ()
    requires: Tuple[str, ...] = ()

    def setup(self, ctx: "ScenarioContext") -> None:
        """Publish configuration resources; no heavy work."""

    def run(self, ctx: "ScenarioContext") -> None:
        """Do the component's work; every ``requires`` is available."""

    def teardown(self, ctx: "ScenarioContext") -> None:
        """Release held state (runs in reverse dependency order)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.slot}/{self.name}>"


class ScenarioContext:
    """Everything a scenario run shares between its components.

    Resources are write-once: a component may publish only names it
    declared in ``provides``, and no name twice - so the dependency
    resolver's picture of the graph is always the truth.
    """

    def __init__(
        self,
        scenario: str,
        seed: int,
        quick: bool = True,
        batch: str = "auto",
    ):
        self.scenario = scenario
        self.seed = int(seed)
        self.quick = bool(quick)
        self.batch = batch
        self.streams = RandomnessStreams(seed)
        self.records: List[Dict[str, Any]] = []
        self.rows: List[Dict[str, Any]] = []
        self.metrics: Dict[str, float] = {}
        self.chain_keys: List[Tuple[Tuple[str, str], ...]] = []
        self._resources: Dict[str, Any] = {}
        self._owners: Dict[str, str] = {}

    # -- randomness --------------------------------------------------------

    def rng(self, component: Component) -> np.random.Generator:
        """The component's own randomness stream (named by the component)."""
        return self.streams.stream(component.name)

    def derive_seed(self, component: Component, purpose: str = "") -> int:
        """A derived integer seed for sub-harnesses the component drives."""
        name = f"{component.name}.{purpose}" if purpose else component.name
        return self.streams.derive_seed(name)

    # -- resources ---------------------------------------------------------

    def publish(self, component: Component, name: str, value: Any) -> None:
        if name not in component.provides:
            raise ValueError(
                f"component {component.name!r} tried to publish {name!r} "
                f"but declares provides={component.provides!r}"
            )
        if name in self._resources:
            raise ValueError(
                f"resource {name!r} already published by "
                f"{self._owners[name]!r}; resources are write-once"
            )
        self._resources[name] = value
        self._owners[name] = component.name

    def get(self, name: str) -> Any:
        try:
            return self._resources[name]
        except KeyError:
            known = ", ".join(sorted(self._resources)) or "(none)"
            raise KeyError(
                f"resource {name!r} not published (available: {known})"
            )

    def has(self, name: str) -> bool:
        return name in self._resources

    def resources(self) -> Dict[str, Any]:
        return dict(self._resources)

    # -- outputs -----------------------------------------------------------

    def add_record(self, record: Dict[str, Any]) -> None:
        """Append one deterministic result record.

        Records are the conformance suite's equality surface: they must
        contain a ``label`` and a ``digest`` and nothing
        non-deterministic (no timings, no ids).
        """
        for field in ("label", "digest"):
            if field not in record:
                raise ValueError(f"scenario record missing {field!r}: {record}")
        self.records.append(record)

    def add_row(self, row: Dict[str, Any]) -> None:
        self.rows.append(row)

    def add_chain_keys(self, keys: Any) -> None:
        """Register one trial's chain-key DAG path (a ``ChainKeys`` or an
        explicit ``((stage, key), ...)`` sequence)."""
        if hasattr(keys, "stages"):
            stages: Sequence[Tuple[str, str]] = keys.stages()
        else:
            stages = keys
        self.chain_keys.append(tuple((str(s), str(k)) for s, k in stages))

    def gauge(self, name: str, value: float) -> None:
        """Record a scalar metric (and mirror it to any active registry)."""
        self.metrics[name] = float(value)
        registry = get_metrics()
        if registry is not None:
            registry.gauge(name).set(float(value))


def check_component(component: Component) -> Optional[str]:
    """Validate a component's static declaration; returns the problem or
    ``None``.  Used by the resolver and the conformance suite."""
    if component.slot not in SLOTS:
        return (
            f"component {component.name!r} has unknown slot "
            f"{component.slot!r}; known slots: {', '.join(SLOTS)}"
        )
    if not component.name:
        return "component has an empty name"
    overlap = set(component.provides) & set(component.requires)
    if overlap:
        return (
            f"component {component.name!r} both provides and requires "
            f"{sorted(overlap)}"
        )
    return None
