"""The scenario registry: name -> (spec, component factory).

Registration is the whole integration surface: a registered scenario is
runnable from the CLI (``repro scenario NAME``), eligible for a
baseline under ``make regress``, and *automatically* covered by the
conformance suite (``tests/scenario/test_conformance.py`` parametrizes
over :func:`list_scenarios`), so a new plugin is tested by registration
alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exec.cache import fingerprint
from .component import Component
from .engine import ScenarioOutcome, run_components

#: Bump when the meaning of a scenario spec changes: ``scenario_id``
#: fingerprints carry it, so ids can never alias across semantics.
SCENARIO_SCHEMA = "scenario-v1"


@dataclass(frozen=True)
class ScenarioSpec:
    """The declarative face of a scenario: which component fills each
    slot, plus registry metadata.

    ``slots`` is ``((slot, component name), ...)`` - documentation the
    resolver cross-checks at build time, so the spec can never drift
    from the factory's actual components.  ``tags`` drive conditional
    conformance checks (``"chain"``: publishes chain keys along the
    k_power -> k_capture DAG; ``"sweep"``: backed by the sweep engine,
    so ``--batch on/off`` equivalence is exercised for real).
    """

    name: str
    title: str
    slots: Tuple[Tuple[str, str], ...]
    tags: Tuple[str, ...] = ()
    default_seed: int = 0


def scenario_id(spec: ScenarioSpec) -> str:
    """Content-addressed identity of a scenario configuration."""
    return fingerprint(
        SCENARIO_SCHEMA, "scenario", dataclasses.asdict(spec)
    )


@dataclass(frozen=True)
class ScenarioInfo:
    """One registry entry."""

    spec: ScenarioSpec
    factory: Callable[[int, bool], Sequence[Component]]

    @property
    def name(self) -> str:
        return self.spec.name


_REGISTRY: Dict[str, ScenarioInfo] = {}


def register_scenario(
    spec: ScenarioSpec,
) -> Callable[[Callable[[int, bool], Sequence[Component]]], Callable]:
    """Decorator: register ``factory(seed, quick) -> components``.

    Re-registering the same name with an identical spec is a no-op
    (module re-imports are harmless); a conflicting spec is an error.
    """

    def decorate(factory: Callable[[int, bool], Sequence[Component]]):
        existing = _REGISTRY.get(spec.name)
        if existing is not None and existing.spec != spec:
            raise ValueError(
                f"scenario {spec.name!r} already registered with a "
                f"different spec"
            )
        _REGISTRY[spec.name] = ScenarioInfo(spec=spec, factory=factory)
        return factory

    return decorate


def get_scenario(name: str) -> ScenarioInfo:
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; known: {known}")


def list_scenarios() -> List[str]:
    _load_builtins()
    return sorted(_REGISTRY)


def build_components(
    name: str, seed: int, quick: bool = True
) -> List[Component]:
    """Instantiate a registered scenario's components and cross-check
    them against the spec's declared slots."""
    info = get_scenario(name)
    components = list(info.factory(seed, quick))
    declared = sorted(info.spec.slots)
    actual = sorted((c.slot, c.name) for c in components)
    if declared != actual:
        raise ValueError(
            f"scenario {name!r} factory built components {actual} but "
            f"the spec declares {declared}"
        )
    return components


def run_registered(
    name: str,
    *,
    seed: Optional[int] = None,
    quick: bool = True,
    batch: str = "auto",
) -> ScenarioOutcome:
    """Build and execute a registered scenario."""
    info = get_scenario(name)
    if seed is None:
        seed = info.spec.default_seed
    components = build_components(name, seed, quick)
    return run_components(
        name, components, seed=seed, quick=quick, batch=batch
    )


def _load_builtins() -> None:
    from . import load_builtin_scenarios

    load_builtin_scenarios()
