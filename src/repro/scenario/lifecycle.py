"""The scenario lifecycle state machine.

A scenario advances strictly through ``configured -> setup -> run ->
teardown -> complete``; skipping or revisiting a phase is a
:class:`LifecycleError`.  The engine owns the transitions; components
can assert their expectations with :meth:`Lifecycle.require`.
"""

from __future__ import annotations

PHASES = ("configured", "setup", "run", "teardown", "complete")


class LifecycleError(RuntimeError):
    """An illegal lifecycle transition or phase assertion."""


class Lifecycle:
    """Tracks the current phase and enforces the legal order."""

    def __init__(self) -> None:
        self._index = 0

    @property
    def phase(self) -> str:
        return PHASES[self._index]

    def advance(self, phase: str) -> None:
        """Move to ``phase``, which must be the immediate successor."""
        if phase not in PHASES:
            raise LifecycleError(
                f"unknown phase {phase!r}; phases: {', '.join(PHASES)}"
            )
        expected = self._index + 1
        if PHASES.index(phase) != expected:
            raise LifecycleError(
                f"cannot advance from {self.phase!r} to {phase!r}; "
                f"next phase is {PHASES[expected]!r}"
                if expected < len(PHASES)
                else f"lifecycle already complete, cannot enter {phase!r}"
            )
        self._index = expected

    def require(self, phase: str) -> None:
        """Assert the current phase (component-side sanity check)."""
        if self.phase != phase:
            raise LifecycleError(
                f"expected phase {phase!r}, but lifecycle is in "
                f"{self.phase!r}"
            )

    @property
    def complete(self) -> bool:
        return self.phase == "complete"
