"""Countermeasures from the paper's Section VI, modeled and measurable.

The paper proposes several mitigations; three are implementable inside
this simulation and evaluated by the ``countermeasures`` experiment:

* **Disabling P/C-states** during sensitive computation - already a
  first-class knob (``CovertLink(allow_c_states=False,
  allow_p_states=False)``); Section III shows it kills the modulation
  at a significant energy cost.
* **Randomising the VRM** (circuit-level): dithering the switching
  clock spreads the spectral lines the receiver integrates, lowering
  the per-bin SNR.  Modeled as frequency modulation of the burst train
  by a bounded random walk.
* **EMI shielding**: a broadband attenuation of the emitted field,
  which reduces SNR "with its own limitations/overheads".

Each countermeasure degrades the attacker gracefully rather than
absolutely - matching the paper's framing of them as mitigations, not
fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .em.environment import Scenario
from .types import BurstTrain


@dataclass(frozen=True)
class VrmDithering:
    """Spread-spectrum dithering of the VRM switching clock.

    ``spread_rel`` bounds the instantaneous frequency deviation (e.g.
    0.03 = +/-3 %); ``coherence_s`` is the timescale over which the
    dithered clock wanders, chosen far below the receiver's STFT frame
    so the line is smeared *within* each analysis window.
    """

    spread_rel: float = 0.03
    coherence_s: float = 200e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.spread_rel < 0.5:
            raise ValueError("spread must be in (0, 0.5)")
        if self.coherence_s <= 0:
            raise ValueError("coherence must be positive")

    def apply(
        self,
        bursts: BurstTrain,
        rng: np.random.Generator,
        time_scale: float = 1.0,
    ) -> BurstTrain:
        """Frequency-modulate the burst train.

        Burst times are warped by ``t' = t + integral(dev(t)) `` where
        ``dev`` is a bounded random modulation of the clock rate.  This
        shifts every spectral line by the same *relative* amount, i.e.
        true clock dithering.
        """
        if bursts.count == 0:
            return bursts
        coherence = self.coherence_s * time_scale
        # Piecewise-constant rate deviation over coherence blocks.
        n_blocks = max(int(np.ceil(bursts.duration / coherence)), 1)
        deviations = rng.uniform(-self.spread_rel, self.spread_rel, n_blocks)
        block_edges = np.arange(n_blocks + 1) * coherence
        # Cumulative warp at block edges.
        warp_at_edges = np.concatenate(
            [[0.0], np.cumsum(deviations * coherence)]
        )
        idx = np.clip(
            (bursts.times / coherence).astype(int), 0, n_blocks - 1
        )
        warped = (
            bursts.times
            + warp_at_edges[idx]
            + deviations[idx] * (bursts.times - block_edges[idx])
        )
        order = np.argsort(warped, kind="stable")
        return BurstTrain(
            times=np.clip(warped[order], 0.0, None),
            charges=bursts.charges[order],
            voltages=bursts.voltages[order],
            duration=bursts.duration * (1 + self.spread_rel),
            switching_period=bursts.switching_period,
        )


def shielded_scenario(scenario: Scenario, shielding_db: float) -> Scenario:
    """Wrap a scenario with EMI shielding of the given insertion loss.

    Implemented as extra path loss: a shield attenuates the emitted
    field before it ever reaches the environment, so the same linear
    factor applies at any distance.
    """
    if shielding_db < 0:
        raise ValueError("shielding loss cannot be negative")
    factor = 10.0 ** (-shielding_db / 20.0)
    shielded = replace(
        scenario,
        name=f"{scenario.name}+shield{shielding_db:g}dB",
        antenna=replace(
            scenario.antenna,
            orientation_efficiency=min(
                scenario.antenna.orientation_efficiency * factor, 1.0
            ),
        ),
    )
    return shielded
