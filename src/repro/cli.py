"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``list``
    Show the available experiments (one per paper table/figure).
``run <id> [<id> ...]``
    Regenerate specific tables/figures; ``run all`` runs everything.
``send <text>``
    Demo: transmit a string over the simulated covert channel and
    print what the receiver recovered.
``keylog <text>``
    Demo: type a string and print the detected keystroke timeline
    (``--stream`` replays the capture through the live detector and
    reports per-keystroke detection latency).
``stream <text>``
    Demo: decode a covert transmission *as it arrives* - chunked
    replay through the streaming receiver with a ring buffer,
    backpressure, and an equivalence check against the batch decoder.
    ``--scenario NAME`` streams any registered scenario's capture
    (``ichannels-throttle``, ``clockmod-fsk``, ``keylog``, ...)
    instead of a text transmission.
``mux [--fleet SCENARIO=COUNT ...]``
    Demo: a fleet of concurrent receivers through the streaming
    multiplexer - shared chunk pool, per-stream backpressure, one
    batched cross-stream DSP tick per config group (``--check``
    verifies every finalised decode against the per-stream path).
``regress [--record]``
    Compare (or re-record) the fixed-seed metric baselines in
    ``baselines/`` - the signal-quality regression gate.
``sweep <name|spec.json>``
    Run a parameter sweep through the cache-topology-aware engine:
    plan the grid along the chain-cache key DAG (``--plan`` prints the
    plan and stops), compute each shared analog prefix exactly once,
    and fan the per-trial tails over the process pool, with resumable
    JSONL results.  ``sweep list`` shows the named presets.
``scenario <name>``
    Run a registered scenario plugin (transmitter / power-model /
    channel / receiver / countermeasure components through the managed
    lifecycle) and print its records and metrics.  ``scenario list``
    shows the registry, including the related-attack ports
    (``ichannels-throttle``, ``clockmod-fsk``).
``lint``
    Static determinism & cache-coherence analysis (``repro.lint``):
    seed provenance, wall-clock containment, cache-schema drift, raw
    store writes, span discipline, float equality.  Non-zero exit on
    any unsuppressed, unbaselined finding; part of ``make lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .params import get_profile


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the HPCA 2020 PMU electromagnetic "
            "side-channel study (simulated end to end)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="regenerate paper tables/figures")
    run_p.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run_p.add_argument(
        "--profile",
        default=None,
        help="simulation profile (paper, reduced, tiny, keylog); "
        "default: per-experiment choice",
    )
    run_p.add_argument(
        "--full",
        action="store_true",
        help="paper-weight statistics (slower); default is quick mode",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--output",
        default=None,
        help="also write the results as a Markdown report to this path",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent trials (0 = all CPUs); "
        "results are bit-identical at any worker count",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the content-addressed chain cache to this "
        "directory (shared across runs and workers)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed chain cache",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write structured stage/cache/pool events as JSONL to FILE",
    )
    run_p.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write per-experiment run manifests to DIR "
        "(default: alongside --output when given)",
    )

    regress_p = sub.add_parser(
        "regress",
        help="signal-quality regression gate against recorded baselines",
    )
    regress_p.add_argument(
        "--record",
        action="store_true",
        help="re-record the baselines instead of comparing against them",
    )
    regress_p.add_argument(
        "--baseline-dir",
        default=None,
        metavar="DIR",
        help="baseline directory (default: ./baselines)",
    )
    regress_p.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to one scenario (repeatable; default: all)",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="cache-topology-aware parameter sweep (plan + execute)",
    )
    sweep_p.add_argument(
        "spec",
        help="preset name (see 'sweep list'), or a SweepSpec JSON file",
    )
    sweep_p.add_argument(
        "--plan",
        action="store_true",
        help="print the key-DAG plan (sharing, warm groups) and exit",
    )
    sweep_p.add_argument(
        "--results",
        default=None,
        metavar="FILE",
        help="append per-trial records to this JSONL file; trials whose "
        "records are already present are skipped (resume)",
    )
    sweep_p.add_argument(
        "--fresh",
        action="store_true",
        help="ignore existing records in --results (no resume)",
    )
    sweep_p.add_argument(
        "--naive",
        action="store_true",
        help="reference path: run every trial independently with the "
        "chain cache disabled",
    )
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--full",
        action="store_true",
        help="paper-weight preset sizes (slower); default is quick mode",
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (0 = all CPUs); results are "
        "bit-identical at any worker count",
    )
    sweep_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the chain cache to this directory (shared across "
        "runs and workers)",
    )
    sweep_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed chain cache",
    )
    sweep_p.add_argument(
        "--batch",
        choices=("auto", "on", "off"),
        default="auto",
        help="trial-major batched execution: 'auto' (default) lets the "
        "adaptive executor engage it when one process should do all "
        "the work, 'on'/'off' force it; records are bit-identical "
        "either way",
    )
    sweep_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write sweep.plan/sweep.group/stage/cache events as JSONL",
    )

    scenario_p = sub.add_parser(
        "scenario",
        help="run a registered scenario plugin ('scenario list' to "
        "enumerate)",
    )
    scenario_p.add_argument(
        "name",
        help="registered scenario name, or 'list'",
    )
    scenario_p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario's default seed",
    )
    scenario_p.add_argument(
        "--full",
        action="store_true",
        help="paper-weight sizing (slower); default is quick mode",
    )
    scenario_p.add_argument(
        "--batch",
        choices=("auto", "on", "off"),
        default="auto",
        help="batched execution policy for sweep-backed scenarios",
    )
    scenario_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (0 = all CPUs)",
    )
    scenario_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the chain cache to this directory",
    )
    scenario_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed chain cache",
    )
    scenario_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write scenario/component span events as JSONL",
    )

    lint_p = sub.add_parser(
        "lint",
        help="determinism & cache-coherence static analysis",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint_p)

    send_p = sub.add_parser("send", help="covert-channel demo")
    send_p.add_argument("text", help="ASCII text to exfiltrate")
    send_p.add_argument("--machine", default="Inspiron")
    send_p.add_argument("--profile", default="tiny")
    send_p.add_argument("--seed", type=int, default=0)

    key_p = sub.add_parser("keylog", help="keylogging demo")
    key_p.add_argument("text", help="text the victim types")
    key_p.add_argument("--seed", type=int, default=0)
    key_p.add_argument(
        "--stream",
        action="store_true",
        help="live mode: replay the capture through the streaming "
        "detector and report per-keystroke detection latency",
    )
    key_p.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        metavar="N",
        help="samples per stream chunk (with --stream)",
    )

    stream_p = sub.add_parser(
        "stream", help="streaming covert-channel receiver demo"
    )
    stream_p.add_argument(
        "text",
        nargs="?",
        default=None,
        help="ASCII text to exfiltrate (omit with --scenario)",
    )
    stream_p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="stream a registered scenario's capture instead of a text "
        "transmission (any scenario that renders IQ: stream-covert, "
        "ichannels-throttle, clockmod-fsk, keylog, ...)",
    )
    stream_p.add_argument("--machine", default="Inspiron")
    stream_p.add_argument("--profile", default="tiny")
    stream_p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="default: 0, or the scenario's registered seed with "
        "--scenario",
    )
    stream_p.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        metavar="N",
        help="samples per stream chunk",
    )
    stream_p.add_argument(
        "--buffer-capacity",
        type=int,
        default=64,
        metavar="N",
        help="ring buffer capacity in chunks",
    )
    stream_p.add_argument(
        "--policy",
        choices=("block", "drop-oldest"),
        default="block",
        help="ring buffer overflow policy",
    )
    stream_p.add_argument(
        "--jitter",
        type=float,
        default=0.1,
        metavar="REL",
        help="chunk arrival jitter as a fraction of the chunk duration",
    )
    stream_p.add_argument(
        "--service-rate",
        type=float,
        default=None,
        metavar="SPS",
        help="simulated receiver throughput in samples/s "
        "(default: infinitely fast, lossless)",
    )
    stream_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write per-chunk spans and stream events as JSONL to FILE",
    )
    stream_p.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write a run manifest (stats + metrics) to DIR",
    )

    mux_p = sub.add_parser(
        "mux",
        help="fleet streaming demo: many receivers, one batched DSP tick",
    )
    mux_p.add_argument(
        "--fleet",
        action="append",
        default=None,
        metavar="SCENARIO[=COUNT]",
        help="add COUNT streams replaying SCENARIO's capture "
        "(repeatable; default stream-covert=32)",
    )
    mux_p.add_argument("--chunk-size", type=int, default=512, metavar="N")
    mux_p.add_argument(
        "--tick-chunks",
        type=int,
        default=16,
        metavar="N",
        help="chunks per stream per scheduler tick",
    )
    mux_p.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="replay only the first S seconds of each capture",
    )
    mux_p.add_argument("--jitter", type=float, default=0.05, metavar="REL")
    mux_p.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="per-stream queue capacity in chunks "
        "(default: two ticks' arrivals, drop-free)",
    )
    mux_p.add_argument(
        "--policy", choices=("block", "drop-oldest"), default="drop-oldest"
    )
    mux_p.add_argument(
        "--service-rate-factor",
        type=float,
        default=None,
        metavar="X",
        help="per-stream service budget as a multiple of the capture "
        "sample rate (default: unlimited, lossless)",
    )
    mux_p.add_argument(
        "--check",
        action="store_true",
        help="verify every finalised decode against the per-stream "
        "golden path (requires a drop-free run; exits non-zero on "
        "divergence)",
    )
    mux_p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the fleet summary as JSON to FILE",
    )
    mux_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write mux spans (tick/group/run) as JSONL to FILE",
    )
    return parser


def _cmd_list() -> int:
    from .experiments import list_experiments

    for eid in list_experiments():
        print(eid)
    return 0


def _cmd_run(args) -> int:
    from .exec.pool import default_jobs
    from .experiments.runner import run_experiments

    ids = None if args.ids == ["all"] else args.ids
    profile = get_profile(args.profile) if args.profile else None
    jobs = args.jobs
    if jobs is not None and jobs < 0:
        print(f"error: --jobs must be >= 0, got {jobs}", file=sys.stderr)
        return 2
    if jobs == 0:
        jobs = default_jobs()
    if args.cache_dir is not None:
        cache_path = Path(args.cache_dir)
        if cache_path.exists() and not cache_path.is_dir():
            print(
                f"error: --cache-dir {args.cache_dir} exists and is not "
                "a directory",
                file=sys.stderr,
            )
            return 2
    manifest_dir = args.manifest_dir
    if manifest_dir is None and args.output:
        manifest_dir = str(Path(args.output).resolve().parent)
    results = run_experiments(
        ids,
        profile=profile,
        quick=not args.full,
        seed=args.seed,
        jobs=jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        trace=args.trace,
        manifest_dir=manifest_dir,
    )
    if args.output:
        from .reporting import write_report

        write_report(
            results,
            args.output,
            preamble=(
                f"Profile: {args.profile or 'per-experiment default'}; "
                f"quick={not args.full}; seed={args.seed}."
            ),
        )
        print(f"report written to {args.output}")
    return 0


def _cmd_regress(args) -> int:
    from .obs.baseline import DEFAULT_BASELINE_DIR, compare, record

    directory = args.baseline_dir or DEFAULT_BASELINE_DIR
    if args.record:
        for path in record(directory, scenarios=args.scenario):
            print(f"baseline recorded: {path}")
        return 0
    report = compare(directory, scenarios=args.scenario)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    import contextlib
    import json

    from .exec.context import execution_scope
    from .exec.pool import default_jobs
    from .obs.trace import tracing_scope
    from .sweep import SweepSpec, get_preset, plan_sweep, run_sweep
    from .sweep.presets import PRESETS

    if args.spec == "list":
        for name in sorted(PRESETS):
            print(name)
        return 0
    spec_path = Path(args.spec)
    if spec_path.exists():
        try:
            with spec_path.open("r", encoding="utf-8") as fh:
                spec = SweepSpec.from_mapping(json.load(fh))
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"error: bad sweep spec {args.spec}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            spec = get_preset(args.spec, seed=args.seed, quick=not args.full)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    jobs = args.jobs
    if jobs is not None and jobs < 0:
        print(f"error: --jobs must be >= 0, got {jobs}", file=sys.stderr)
        return 2
    if jobs == 0:
        jobs = default_jobs()
    with contextlib.ExitStack() as stack:
        overrides = {}
        if jobs is not None:
            overrides["jobs"] = jobs
        if args.no_cache:
            overrides["cache_enabled"] = False
        if args.cache_dir is not None:
            overrides["cache_dir"] = args.cache_dir
        if overrides:
            stack.enter_context(execution_scope(**overrides))
        if args.trace:
            stack.enter_context(tracing_scope(args.trace))
        plan = plan_sweep(spec)
        print(plan.describe())
        if args.plan:
            return 0
        outcome = run_sweep(
            spec,
            plan=plan,
            results_path=args.results,
            resume=not args.fresh,
            naive=args.naive,
            batch=args.batch,
        )
        width = max(
            [len(r["label"] or r["trial_id"][:12]) for r in outcome.records]
            + [len("trial")]
        )
        print(f"{'trial':<{width}}  {'BER':>8}  {'IP':>8}  {'DP':>8}  "
              f"{'TR_bps':>8}")
        for record in outcome.records:
            name = record["label"] or record["trial_id"][:12]
            r = record["result"]
            print(
                f"{name:<{width}}  {r['ber']:>8.4f}  {r['ip']:>8.4f}  "
                f"{r['dp']:>8.4f}  {r['tr_bps']:>8.0f}"
            )
        if outcome.naive:
            mode = "naive"
        elif outcome.stats.get("batch"):
            mode = "engine+batch"
        else:
            mode = "engine"
        print(
            f"{mode}: {outcome.executed} executed, {outcome.resumed} "
            f"resumed in {outcome.elapsed_s:.2f}s; plan shared "
            f"{plan.stages_saved} of {plan.naive_stage_runs} stage runs "
            f"({plan.sharing_factor:.2f}x)"
        )
    return 0


def _cmd_scenario(args) -> int:
    import contextlib

    from .exec.context import execution_scope
    from .exec.pool import default_jobs
    from .obs.trace import tracing_scope
    from .scenario import get_scenario, list_scenarios, run_registered
    from .scenario.registry import scenario_id

    if args.name == "list":
        for name in list_scenarios():
            spec = get_scenario(name).spec
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{name:<20} {spec.title}{tags}")
        return 0
    try:
        info = get_scenario(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    jobs = args.jobs
    if jobs is not None and jobs < 0:
        print(f"error: --jobs must be >= 0, got {jobs}", file=sys.stderr)
        return 2
    if jobs == 0:
        jobs = default_jobs()
    with contextlib.ExitStack() as stack:
        overrides = {}
        if jobs is not None:
            overrides["jobs"] = jobs
        if args.no_cache:
            overrides["cache_enabled"] = False
        if args.cache_dir is not None:
            overrides["cache_dir"] = args.cache_dir
        if overrides:
            stack.enter_context(execution_scope(**overrides))
        if args.trace:
            stack.enter_context(tracing_scope(args.trace))
        outcome = run_registered(
            args.name,
            seed=args.seed,
            quick=not args.full,
            batch=args.batch,
        )
    spec = info.spec
    print(f"scenario {spec.name!r}: {spec.title}")
    print(f"  id {scenario_id(spec)[:16]}  seed {outcome.seed}  "
          f"components: {' -> '.join(outcome.order)}")
    for record in outcome.records:
        print(f"  record {record['label']}: digest {record['digest']}")
    for name in sorted(outcome.metrics):
        print(f"  {name} = {outcome.metrics[name]:g}")
    print(f"done in {outcome.elapsed_s:.2f}s")
    return 0


def _cmd_send(args) -> int:
    from .core.coding import bits_to_bytes, bytes_to_bits, hamming_decode
    from .core.sync import strip_header
    from .covert.link import CovertLink
    from .systems.laptops import by_name

    link = CovertLink(
        machine=by_name(args.machine),
        profile=get_profile(args.profile),
        seed=args.seed,
        use_ecc=True,
    )
    payload = bytes_to_bits(args.text.encode("ascii"))
    print(f"transmitting {payload.size} bits on {link.machine.name} ...")
    result = link.run(payload)
    m = result.metrics
    print(
        f"raw channel: BER={m.ber:.4f} IP={m.insertion_probability:.4f} "
        f"DP={m.deletion_probability:.4f} "
        f"TR={result.transmission_rate_bps:.0f} bps (paper scale)"
    )
    recovered = strip_header(result.decode.bits, link.frame_format)
    if recovered is None:
        print("receiver failed to synchronize")
        return 1
    data, corrected = hamming_decode(recovered)
    text = bits_to_bytes(data[: payload.size]).decode("ascii", errors="replace")
    print(f"ECC corrected {corrected} bit(s)")
    print(f"received: {text!r}")
    return 0


def _cmd_keylog(args) -> int:
    from .keylog.evaluate import KeylogExperiment

    exp = KeylogExperiment(seed=args.seed)
    if args.stream:
        if args.chunk_size < 1:
            print(
                f"error: --chunk-size must be >= 1, got {args.chunk_size}",
                file=sys.stderr,
            )
            return 2
        live = exp.run_streaming(text=args.text, chunk_size=args.chunk_size)
        result = live.result
    else:
        result = exp.run(text=args.text)
    print(
        f"typed {result.n_keystrokes} keystrokes; detected "
        f"{result.n_detected} "
        f"(TPR={result.true_positive_rate:.2f}, "
        f"FPR={result.false_positive_rate:.2f})"
    )
    for ev in result.detection.events:
        print(f"  keystroke at {ev.start:7.3f}s  ({ev.duration * 1e3:5.1f} ms)")
    if args.stream:
        print(
            f"live mode: {len(live.events)} online event(s), detection "
            f"latency mean={live.mean_detection_latency_s * 1e3:.1f} ms "
            f"max={live.max_detection_latency_s * 1e3:.1f} ms"
        )
    return 0


def _cmd_stream(args) -> int:
    import contextlib

    import numpy as np

    from .core.coding import bytes_to_bits
    from .covert.link import CovertLink
    from .obs.manifest import build_manifest, write_manifest
    from .obs.metrics import metrics_scope
    from .obs.trace import tracing_scope
    from .stream import CaptureChunkSource, StreamingReceiver, StreamRunner
    from .systems.laptops import by_name

    if args.chunk_size < 1:
        print(
            f"error: --chunk-size must be >= 1, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    if args.buffer_capacity < 1:
        print(
            "error: --buffer-capacity must be >= 1, got "
            f"{args.buffer_capacity}",
            file=sys.stderr,
        )
        return 2
    if args.jitter < 0:
        print(f"error: --jitter cannot be negative, got {args.jitter}",
              file=sys.stderr)
        return 2
    if args.service_rate is not None and args.service_rate <= 0:
        print(
            f"error: --service-rate must be positive, got {args.service_rate}",
            file=sys.stderr,
        )
        return 2
    if args.scenario is not None:
        if args.text is not None:
            print(
                "error: give either TEXT or --scenario, not both",
                file=sys.stderr,
            )
            return 2
        return _cmd_stream_scenario(args)
    if args.text is None:
        print("error: TEXT is required without --scenario", file=sys.stderr)
        return 2

    seed = 0 if args.seed is None else args.seed
    link = CovertLink(
        machine=by_name(args.machine),
        profile=get_profile(args.profile),
        seed=seed,
    )
    payload = bytes_to_bits(args.text.encode("ascii"))
    print(f"transmitting {payload.size} bits on {link.machine.name} ...")
    batch = link.run(payload)
    bit_period = link.transmitter(
        np.random.default_rng(link.seed)
    ).nominal_bit_duration_s()

    with contextlib.ExitStack() as stack:
        registry = stack.enter_context(metrics_scope())
        if args.trace:
            stack.enter_context(tracing_scope(args.trace))
        source = CaptureChunkSource(
            batch.capture, args.chunk_size, jitter_rel=args.jitter
        )
        receiver = StreamingReceiver(
            source.meta,
            link.vrm_frequency_hz,
            expected_bit_period_s=bit_period,
            config=link.decoder_config,
            frame_format=link.frame_format,
        )
        runner = StreamRunner(
            source,
            receiver,
            buffer_capacity=args.buffer_capacity,
            policy=args.policy,
            service_rate_sps=args.service_rate,
        )
        run = runner.run()
        final = receiver.finalize()

    stats = run.stats
    print(
        f"streamed {stats.chunks_total} chunk(s) of {args.chunk_size}: "
        f"{stats.chunks_processed} processed, {stats.chunks_dropped} "
        f"dropped, {stats.chunks_shed} shed "
        f"(policy={stats.policy}, capacity={stats.buffer_capacity})"
    )
    print(
        f"lag mean={stats.mean_lag_s * 1e3:.1f} ms "
        f"max={stats.max_lag_s * 1e3:.1f} ms; buffer high watermark "
        f"{stats.high_watermark}; {run.n_events} online event(s) "
        f"({stats.events_per_s:.1f}/s); sync="
        f"{'locked' if receiver.synchronized else 'none'}"
    )
    if stats.lossless:
        exact = final.bits.size == batch.decode.bits.size and bool(
            np.array_equal(final.bits, batch.decode.bits)
        )
        print(
            f"finalised {final.bits.size} bit(s): "
            f"{'bit-exact with' if exact else 'DIVERGED from'} the batch "
            "decoder"
        )
        if not exact:
            return 1
    else:
        diff = int(
            np.count_nonzero(
                final.bits[: batch.decode.bits.size]
                != batch.decode.bits[: final.bits.size]
            )
        )
        print(
            f"finalised {final.bits.size} bit(s) from a lossy stream "
            f"({stats.samples_dropped + stats.samples_shed} sample(s) "
            f"lost); {diff} bit(s) differ from the batch decode"
        )
    if args.manifest_dir:
        manifest = build_manifest(
            experiment_id="stream-demo",
            title="streaming covert receiver demo",
            profile=link.profile,
            seed=seed,
            metrics_snapshot=registry.snapshot(),
        )
        manifest["stream"] = stats.as_dict()
        path = write_manifest(
            manifest, Path(args.manifest_dir) / "stream-demo.json"
        )
        print(f"manifest written to {path}")
    return 0


def _cmd_stream_scenario(args) -> int:
    """``repro stream --scenario NAME``: stream any registered scenario."""
    import contextlib

    import numpy as np

    from .core.align import align_bits
    from .mux.fleet import stream_spec_from_scenario
    from .obs.metrics import metrics_scope
    from .obs.trace import tracing_scope
    from .stream import StreamRunner

    try:
        spec = stream_spec_from_scenario(args.scenario, seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    capture = spec.capture
    print(
        f"streaming scenario {spec.scenario!r} (seed {spec.seed}, "
        f"{spec.kind}): {capture.samples.size} samples at "
        f"{capture.sample_rate:.0f} S/s, band {spec.vrm_frequency_hz:.0f} Hz"
    )

    with contextlib.ExitStack() as stack:
        stack.enter_context(metrics_scope())
        if args.trace:
            stack.enter_context(tracing_scope(args.trace))
        source = spec.make_source(args.chunk_size, args.jitter, spec.seed)
        receiver = spec.make_receiver(online=True)
        runner = StreamRunner(
            source,
            receiver,
            buffer_capacity=args.buffer_capacity,
            policy=args.policy,
            service_rate_sps=args.service_rate,
        )
        run = runner.run()
        final = receiver.finalize()

    stats = run.stats
    print(
        f"streamed {stats.chunks_total} chunk(s) of {args.chunk_size}: "
        f"{stats.chunks_processed} processed, {stats.chunks_dropped} "
        f"dropped, {stats.chunks_shed} shed "
        f"(policy={stats.policy}, capacity={stats.buffer_capacity})"
    )
    if spec.kind == "keylog":
        print(
            f"finalised {len(final.events)} keystroke event(s); "
            f"{run.n_events} online event(s)"
        )
        return 0
    line = f"finalised {final.bits.size} bit(s)"
    if spec.tx_bits is not None and final.bits.size:
        ber = align_bits(np.asarray(spec.tx_bits), final.bits).ber
        line += f"; BER vs transmitted: {ber:.3f}"
    print(line + f"; sync={'locked' if receiver.synchronized else 'none'}")
    return 0


def _cmd_mux(args) -> int:
    import contextlib
    import json
    import time

    from .mux import FleetStreamSpec, build_multiplexer, finalized_digests
    from .mux.fleet import golden_digest
    from .obs.metrics import metrics_scope
    from .obs.trace import tracing_scope

    entries = args.fleet if args.fleet else ["stream-covert=32"]
    fleet = []
    for entry in entries:
        name, _, count = entry.partition("=")
        try:
            n = int(count) if count else 1
        except ValueError:
            print(
                f"error: bad --fleet entry {entry!r} "
                "(expected SCENARIO[=COUNT])",
                file=sys.stderr,
            )
            return 2
        if n < 1 or not name:
            print(f"error: bad --fleet entry {entry!r}", file=sys.stderr)
            return 2
        fleet.append(
            FleetStreamSpec(
                name,
                count=n,
                capacity=args.capacity,
                policy=args.policy,
                service_rate_factor=args.service_rate_factor,
                jitter_rel=args.jitter,
                duration_s=args.duration,
            )
        )

    with contextlib.ExitStack() as stack:
        stack.enter_context(metrics_scope())
        if args.trace:
            stack.enter_context(tracing_scope(args.trace))
        try:
            mux, by_stream = build_multiplexer(
                fleet,
                chunk_size=args.chunk_size,
                tick_chunks=args.tick_chunks,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        mux.run()
        elapsed = time.perf_counter() - t0
        mux.check_conservation()

    totals = mux.totals()
    print(
        f"multiplexed {mux.n_streams} stream(s) over {mux.ticks} tick(s) "
        f"in {elapsed:.2f} s: {totals['delivered_chunks']} delivered, "
        f"{totals['dropped_chunks']} dropped, {totals['shed_chunks']} "
        f"shed (shed fraction {mux.shed_fraction():.3f})"
    )
    print(
        f"aggregate {totals['delivered_samples'] / max(elapsed, 1e-9) / 1e6:.2f} "
        f"Msamples/s; pool high watermark {mux.pool.high_watermark}/"
        f"{mux.pool.n_slabs} slab(s); {totals['events']} online event(s)"
    )
    digests = finalized_digests(mux, by_stream)

    summary = {
        "streams": mux.n_streams,
        "ticks": mux.ticks,
        "elapsed_s": round(elapsed, 3),
        "shed_fraction": mux.shed_fraction(),
        "totals": totals,
        "pool_high_watermark": mux.pool.high_watermark,
        "digests": digests,
    }
    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"summary written to {path}")

    if args.check:
        lossy = totals["dropped_chunks"] + totals["shed_chunks"]
        if lossy:
            print(
                f"error: --check needs a drop-free run but {lossy} "
                "chunk(s) were lost; raise --capacity or drop "
                "--service-rate-factor",
                file=sys.stderr,
            )
            return 2
        goldens: dict = {}
        diverged = 0
        for stream_id, spec in by_stream.items():
            key = (spec.scenario, spec.seed, spec.capture.samples.size)
            if key not in goldens:
                goldens[key] = golden_digest(spec, args.chunk_size)
            if digests[stream_id] != goldens[key]:
                diverged += 1
                print(
                    f"DIVERGED {stream_id}: {digests[stream_id]} != "
                    f"{goldens[key]}",
                    file=sys.stderr,
                )
        if diverged:
            print(
                f"check FAILED: {diverged}/{mux.n_streams} stream(s) "
                "diverged from the per-stream golden path",
                file=sys.stderr,
            )
            return 1
        print(
            f"check OK: all {mux.n_streams} finalised decode(s) "
            "bit-identical to the per-stream golden path"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "regress":
        return _cmd_regress(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "lint":
        from .lint.cli import cmd_lint

        return cmd_lint(args)
    if args.command == "send":
        return _cmd_send(args)
    if args.command == "keylog":
        return _cmd_keylog(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "mux":
        return _cmd_mux(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
