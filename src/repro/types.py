"""Shared value types used across the simulation chain.

Every stage of the pipeline communicates through a small number of
explicit types:

* :class:`Interval` / :class:`ActivityTrace` - what the *software* did
  (active vs. idle periods on the processor).
* :class:`PowerStateTrace` - what the *PMU* did (P/C-state residencies).
* :class:`BurstTrain` - what the *VRM* did (replenishment bursts).
* :class:`IQCapture` - what the *SDR* saw (complex baseband samples).

Keeping these as plain dataclasses over NumPy arrays keeps each substrate
independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Activity levels for software intervals.
IDLE = 0.0
ACTIVE = 1.0


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)`` with an activity level.

    ``level`` is a utilisation in ``[0, 1]``: 0 means the processor has
    nothing to run, 1 means a core is fully busy.  Fractional levels model
    partially loaded periods (e.g. background activity).
    """

    start: float
    end: float
    level: float = ACTIVE

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"activity level outside [0, 1]: {self.level}")

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


@dataclass
class ActivityTrace:
    """A time-ordered, non-overlapping sequence of activity intervals.

    Gaps between intervals are implicitly idle.  ``duration`` is the total
    simulated time, which may extend past the last interval.
    """

    intervals: List[Interval]
    duration: float

    def __post_init__(self) -> None:
        prev_end = 0.0
        for iv in self.intervals:
            if iv.start < prev_end - 1e-12:
                raise ValueError(
                    f"intervals overlap or are unsorted near t={iv.start}"
                )
            prev_end = iv.end
        if self.intervals and self.duration < self.intervals[-1].end - 1e-9:
            raise ValueError("trace duration shorter than last interval")

    def levels_at(self, times: np.ndarray) -> np.ndarray:
        """Sample the activity level at each of ``times`` (vectorised)."""
        times = np.asarray(times, dtype=float)
        levels = np.zeros_like(times)
        if not self.intervals:
            return levels
        starts = np.array([iv.start for iv in self.intervals])
        ends = np.array([iv.end for iv in self.intervals])
        vals = np.array([iv.level for iv in self.intervals])
        idx = np.searchsorted(starts, times, side="right") - 1
        valid = idx >= 0
        inside = np.zeros_like(valid)
        inside[valid] = times[valid] < ends[idx[valid]]
        levels[inside] = vals[idx[inside]]
        return levels

    def merged_with(self, other: "ActivityTrace") -> "ActivityTrace":
        """Combine two traces by summing activity (clipped to 1.0).

        Used to mix transmitter activity with background/system activity.
        The result is re-segmented at every boundary of either trace.
        """
        duration = max(self.duration, other.duration)
        edges = {0.0, duration}
        for trace in (self, other):
            for iv in trace.intervals:
                edges.add(iv.start)
                edges.add(iv.end)
        cuts = sorted(edges)
        mids = np.array([(a + b) / 2 for a, b in zip(cuts[:-1], cuts[1:])])
        if mids.size == 0:
            return ActivityTrace([], duration)
        combined = np.clip(self.levels_at(mids) + other.levels_at(mids), 0, 1)
        intervals = [
            Interval(a, b, float(level))
            for a, b, level in zip(cuts[:-1], cuts[1:], combined)
            if level > 0.0 and b > a
        ]
        return ActivityTrace(intervals, duration)

    @property
    def busy_time(self) -> float:
        """Total level-weighted active time in seconds."""
        return sum(iv.duration * iv.level for iv in self.intervals)


@dataclass(frozen=True)
class StateResidency:
    """One residency in a (P-state, C-state) pair over ``[start, end)``."""

    start: float
    end: float
    p_state: int
    c_state: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PowerStateTrace:
    """Sequence of power-state residencies covering ``[0, duration)``."""

    residencies: List[StateResidency]
    duration: float

    def current_draw(self, current_table) -> "PiecewiseConstant":
        """Map residencies to load current using a per-state lookup.

        ``current_table`` is a callable ``(p_state, c_state) -> amps``.
        """
        starts = np.array([r.start for r in self.residencies])
        values = np.array(
            [current_table(r.p_state, r.c_state) for r in self.residencies]
        )
        return PiecewiseConstant(starts, values, self.duration)

    def voltage(self, voltage_table) -> "PiecewiseConstant":
        """Map residencies to requested VID voltage."""
        starts = np.array([r.start for r in self.residencies])
        values = np.array(
            [voltage_table(r.p_state, r.c_state) for r in self.residencies]
        )
        return PiecewiseConstant(starts, values, self.duration)

    def time_in_c_state(self, c_state: int) -> float:
        """Total time spent in the given C-state."""
        return sum(r.duration for r in self.residencies if r.c_state == c_state)


@dataclass
class PiecewiseConstant:
    """A piecewise-constant function of time.

    ``starts`` must be sorted ascending and begin at 0.0; segment ``i``
    holds ``values[i]`` from ``starts[i]`` until ``starts[i + 1]`` (or
    ``duration`` for the last segment).
    """

    starts: np.ndarray
    values: np.ndarray
    duration: float

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.starts.size != self.values.size:
            raise ValueError("starts and values must have equal length")
        if self.starts.size and self.starts[0] > 1e-12:
            raise ValueError("first segment must start at t=0")
        if np.any(np.diff(self.starts) < 0):
            raise ValueError("segment starts must be sorted")

    def at(self, times: np.ndarray) -> np.ndarray:
        """Sample the function at each of ``times``."""
        times = np.asarray(times, dtype=float)
        if self.starts.size == 0:
            return np.zeros_like(times)
        idx = np.clip(
            np.searchsorted(self.starts, times, side="right") - 1,
            0,
            self.starts.size - 1,
        )
        return self.values[idx]

    def segments(self) -> List[Tuple[float, float, float]]:
        """Return ``(start, end, value)`` triples for every segment."""
        out = []
        for i in range(self.starts.size):
            end = self.starts[i + 1] if i + 1 < self.starts.size else self.duration
            out.append((float(self.starts[i]), float(end), float(self.values[i])))
        return out


@dataclass
class BurstTrain:
    """The VRM's replenishment bursts: times, charge, and output voltage.

    Attributes
    ----------
    times:
        Burst centre times in seconds, sorted ascending.
    charges:
        Charge replenished by each burst (coulombs).  Proportional to the
        burst's peak current and hence to its EM field contribution.
    voltages:
        VRM output voltage during each burst (volts); P-state dependent.
    duration:
        Total simulated time in seconds.
    switching_period:
        The VRM's nominal switching period ``T`` in seconds.
    """

    times: np.ndarray
    charges: np.ndarray
    voltages: np.ndarray
    duration: float
    switching_period: float

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.charges = np.asarray(self.charges, dtype=float)
        self.voltages = np.asarray(self.voltages, dtype=float)
        if not (self.times.size == self.charges.size == self.voltages.size):
            raise ValueError("times, charges, voltages must align")
        if np.any(np.diff(self.times) < 0):
            raise ValueError("burst times must be sorted")

    @property
    def count(self) -> int:
        return int(self.times.size)


@dataclass
class IQCapture:
    """Complex baseband samples out of the SDR front end.

    Attributes
    ----------
    samples:
        Complex64 array of IQ samples.
    sample_rate:
        Samples per second.
    center_frequency:
        RF frequency the SDR was tuned to (Hz).
    """

    samples: np.ndarray
    sample_rate: float
    center_frequency: float

    @property
    def duration(self) -> float:
        """Capture length in seconds."""
        return self.samples.size / self.sample_rate

    def baseband_offset(self, rf_frequency: float) -> float:
        """Where an RF tone lands in baseband (Hz, signed)."""
        return rf_frequency - self.center_frequency


@dataclass(frozen=True)
class Keystroke:
    """One keystroke event: press time, release time, and the key."""

    press_time: float
    release_time: float
    key: str

    def __post_init__(self) -> None:
        if self.release_time < self.press_time:
            raise ValueError("key released before it was pressed")

    @property
    def dwell(self) -> float:
        """How long the key was held down, in seconds."""
        return self.release_time - self.press_time
