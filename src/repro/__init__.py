"""repro: reproduction of the HPCA 2020 PMU EM side-channel study.

The paper ("A New Side-Channel Vulnerability on Modern Computers by
Exploiting Electromagnetic Emanations from the Power Management Unit",
Sehatbakhsh et al., HPCA 2020) shows that processor power-state
switching amplitude-modulates the EM emission of the voltage regulator
module, creating a covert channel (up to 3.7 kbps from an air-gapped
laptop) and a keylogging side channel that work at a distance and
through walls.

This package reproduces the full system as an end-to-end simulation:

* :mod:`repro.power`    - P/C-states, DVFS and idle governors, the PMU
* :mod:`repro.osmodel`  - sleep timers, interrupts, scheduler contention
* :mod:`repro.vrm`      - buck converter with phase shedding, emission
* :mod:`repro.em`       - near-field propagation, antennas, noise
* :mod:`repro.sdr`      - RTL-SDR receiver model
* :mod:`repro.dsp`      - STFT, detection and filtering utilities
* :mod:`repro.core`     - the paper's receiver pipeline (the contribution)
* :mod:`repro.covert`   - covert-channel transmitter and link evaluation
* :mod:`repro.keylog`   - typing model, keystroke detection, words
* :mod:`repro.baselines` - Figure 9 comparator channels
* :mod:`repro.systems`  - the Table I laptops
* :mod:`repro.experiments` - regeneration of every table and figure

Quickstart::

    from repro.covert import CovertLink
    from repro.core.coding import bytes_to_bits

    link = CovertLink()                       # Dell Inspiron, 10 cm probe
    result = link.run(bytes_to_bits(b"hi"))
    print(result.metrics.ber, result.transmission_rate_bps)
"""

from . import params, types
from .params import KEYLOG, PAPER, REDUCED, TINY, SimProfile, get_profile

__version__ = "1.0.0"

__all__ = [
    "KEYLOG",
    "PAPER",
    "REDUCED",
    "SimProfile",
    "TINY",
    "get_profile",
    "params",
    "types",
]
