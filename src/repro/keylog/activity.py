"""Keystrokes -> processor activity.

Pressing a key on an otherwise idle machine produces a burst of
processor activity (interrupt handler, input stack, the focused
application redrawing - the paper types into Chrome).  Each press and
release contributes a burst; the press burst dominates.  On top of
that, the browser produces unrelated short bursts (network, timers)
that are the main source of keylogging false positives in Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..types import ActivityTrace, Interval, Keystroke


@dataclass(frozen=True)
class KeystrokeActivityModel:
    """How much CPU work one keystroke causes.

    Attributes
    ----------
    press_burst_s:
        Mean burst duration for a key press (input path + application
        handling + rendering).  The paper's detector requires bursts
        >= 30 ms for a valid keystroke, so real presses must exceed that.
    release_burst_s:
        Mean burst for the key release (shorter).
    burst_jitter_rel:
        Relative spread of burst durations.
    browser_burst_rate_hz:
        Rate of unrelated application bursts (false-positive source).
    browser_burst_s:
        Mean duration of unrelated bursts; "typically much shorter"
        than keystroke handling per the paper.
    """

    press_burst_s: float = 0.042
    release_burst_s: float = 0.018
    burst_jitter_rel: float = 0.12
    browser_burst_rate_hz: float = 1.2
    browser_burst_s: float = 0.012

    def __post_init__(self) -> None:
        if self.press_burst_s <= 0 or self.release_burst_s <= 0:
            raise ValueError("burst durations must be positive")


def keystrokes_to_activity(
    keystrokes: Sequence[Keystroke],
    duration: float,
    model: KeystrokeActivityModel = KeystrokeActivityModel(),
    rng: Optional[np.random.Generator] = None,
    time_scale: float = 1.0,
) -> ActivityTrace:
    """Build the package activity trace for a typing session.

    ``time_scale`` dilates burst durations to match a simulation
    profile (keystroke runs normally use frequency scaling only, so the
    default of 1.0 applies).
    """
    rng = rng if rng is not None else np.random.default_rng(9)
    edges: List[tuple] = []

    def add_burst(t: float, mean_len: float) -> None:
        if t < 0 or t >= duration:
            return
        length = mean_len * time_scale * (
            1.0 + model.burst_jitter_rel * float(rng.standard_normal())
        )
        length = max(length, 0.2 * mean_len * time_scale)
        edges.append((t, min(t + length, duration)))

    for ks in keystrokes:
        add_burst(ks.press_time, model.press_burst_s)
        add_burst(ks.release_time, model.release_burst_s)
    # Unrelated application activity (browser housekeeping).  Durations
    # are exponential: mostly well under the detector's 30 ms validity
    # floor, with an occasional long burst - the paper's main source of
    # keylogging false positives.
    n_bg = int(rng.poisson(model.browser_burst_rate_hz / time_scale * duration))
    for t in rng.uniform(0.0, duration, size=n_bg):
        length = float(rng.exponential(model.browser_burst_s)) * time_scale
        if t < duration and length > 0:
            edges.append((float(t), min(float(t) + length, duration)))

    edges.sort()
    merged: List[tuple] = []
    for start, end in edges:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    intervals = [Interval(a, b, 1.0) for a, b in merged]
    return ActivityTrace(intervals, duration)
