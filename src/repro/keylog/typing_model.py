"""Keystroke timing generation.

Simulates a human transcription typist, reproducing the empirical
regularities the paper leans on (Salthouse [78], Feit et al. [79]):

* (i) physically distant key pairs are typed in *quicker* succession
  than same-hand/same-finger neighbours (alternating hands overlap
  their movements),
* (ii) frequent digraphs ("th", "he", "in", ...) are faster than rare
  ones,
* (iii) practice shortens inter-key intervals (warm-up effect within a
  session).

The output is a list of :class:`~repro.types.Keystroke` events whose
press/release times drive the CPU-burst activity model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..types import Keystroke

#: QWERTY key positions (row, column), used for the distance effect.
_QWERTY_LAYOUT = {}
for row, keys in enumerate(["qwertyuiop", "asdfghjkl", "zxcvbnm"]):
    for col, key in enumerate(keys):
        _QWERTY_LAYOUT[key] = (row, col + 0.5 * row)
_QWERTY_LAYOUT[" "] = (3, 4.5)

#: The most frequent English digraphs; typed measurably faster.
_FREQUENT_DIGRAPHS = {
    "th", "he", "in", "er", "an", "re", "on", "at", "en", "nd",
    "ti", "es", "or", "te", "of", "ed", "is", "it", "al", "ar",
    "st", "to", "nt", "ng", "se", "ha", "as", "ou", "io", "le",
}


def key_distance(a: str, b: str) -> float:
    """Euclidean distance between two keys on the QWERTY grid."""
    pa = _QWERTY_LAYOUT.get(a.lower())
    pb = _QWERTY_LAYOUT.get(b.lower())
    if pa is None or pb is None:
        return 3.0  # unknown keys: assume mid-board distance
    return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))


@dataclass(frozen=True)
class TypistProfile:
    """Parameters of one simulated typist.

    ``base_interval_s`` is the mean inter-key interval for an average
    digraph; 0.20 s corresponds to ~60 words/min transcription typing.
    """

    base_interval_s: float = 0.20
    interval_jitter_rel: float = 0.22
    dwell_mean_s: float = 0.085
    dwell_jitter_rel: float = 0.18
    distance_effect: float = 0.035
    digraph_effect: float = 0.8
    practice_effect: float = 0.9
    practice_keys: int = 200
    word_boundary_factor: float = 2.1

    def __post_init__(self) -> None:
        if self.base_interval_s <= 0:
            raise ValueError("base interval must be positive")


class TypingModel:
    """Generates keystroke event sequences for arbitrary text."""

    def __init__(
        self,
        profile: TypistProfile = TypistProfile(),
        rng: Optional[np.random.Generator] = None,
    ):
        self.profile = profile
        self._rng = rng if rng is not None else np.random.default_rng(7)

    def interval_for(self, prev: str, key: str, keys_typed: int) -> float:
        """Inter-key interval from ``prev`` to ``key`` (seconds)."""
        p = self.profile
        interval = p.base_interval_s
        # (i) distance effect: *far* keys (usually alternating hands) are
        # faster; near keys (same finger) slower.
        dist = key_distance(prev, key)
        interval *= 1.0 + p.distance_effect * (3.5 - dist)
        # (ii) frequent digraphs are faster.
        if (prev + key).lower() in _FREQUENT_DIGRAPHS:
            interval *= p.digraph_effect
        # (iii) practice: intervals shrink toward an asymptote.
        warmup = min(keys_typed / max(self.profile.practice_keys, 1), 1.0)
        interval *= 1.0 - (1.0 - p.practice_effect) * warmup
        # Word boundaries: typists pause around the space bar (planning
        # the next word), which is what lets the attacker group spikes
        # into words in Figure 11.
        if prev == " " or key == " ":
            interval *= p.word_boundary_factor
        jitter = 1.0 + p.interval_jitter_rel * float(self._rng.standard_normal())
        return max(interval * jitter, 0.085)

    def type_text(self, text: str, start_time: float = 0.0) -> List[Keystroke]:
        """Produce the keystroke stream for ``text``."""
        if not text:
            return []
        p = self.profile
        events: List[Keystroke] = []
        t = start_time
        prev = None
        for i, ch in enumerate(text):
            if prev is not None:
                t += self.interval_for(prev, ch, i)
            dwell = p.dwell_mean_s * (
                1.0 + p.dwell_jitter_rel * float(self._rng.standard_normal())
            )
            dwell = max(dwell, 0.02)
            events.append(Keystroke(press_time=t, release_time=t + dwell, key=ch))
            prev = ch
        return events


def random_words(
    n_words: int,
    rng: Optional[np.random.Generator] = None,
    mean_length: float = 4.7,
) -> str:
    """A random text like the paper's typing-test corpus.

    Word lengths follow the English distribution (mean ~4.7 letters);
    letters are drawn with English frequency so digraph effects engage.
    """
    if n_words < 1:
        raise ValueError("need at least one word")
    rng = rng if rng is not None else np.random.default_rng(8)
    letters = np.array(list("etaoinshrdlcumwfgypbvkjxqz"))
    freq = np.array(
        [12.7, 9.1, 8.2, 7.5, 7.0, 6.7, 6.3, 6.1, 6.0, 4.3, 4.0, 2.8,
         2.8, 2.4, 2.4, 2.2, 2.0, 2.0, 1.9, 1.5, 1.0, 0.8, 0.15, 0.15,
         0.10, 0.07]
    )
    freq = freq / freq.sum()
    words = []
    for _ in range(n_words):
        length = max(int(rng.poisson(mean_length - 1)) + 1, 1)
        words.append("".join(rng.choice(letters, size=length, p=freq)))
    return " ".join(words)
