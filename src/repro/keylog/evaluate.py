"""Keylogging evaluation harness (Table IV).

Runs the full pipeline for one scenario: generate a typing session,
render the emission capture, detect keystrokes, and score character
TPR/FPR plus word precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..chain import render_capture, tuned_frequency_hz
from ..em.environment import Scenario
from ..exec.pool import parallel_map
from ..obs.metrics import get_metrics
from ..osmodel import interrupts as irq
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION, Machine
from ..types import Keystroke
from .activity import KeystrokeActivityModel, keystrokes_to_activity
from .detector import (
    KeylogDetection,
    KeylogDetectorConfig,
    KeystrokeDetector,
    match_events,
)
from .typing_model import TypingModel, TypistProfile, random_words
from .words import segment_words, word_accuracy


@dataclass
class KeylogResult:
    """Scores for one keylogging run (one Table IV row)."""

    label: str
    true_positive_rate: float
    false_positive_rate: float
    word_precision: float
    word_recall: float
    n_keystrokes: int
    n_detected: int
    detection: KeylogDetection

    def row(self) -> dict:
        return {
            "label": self.label,
            "TPR": self.true_positive_rate,
            "FPR": self.false_positive_rate,
            "word_precision": self.word_precision,
            "word_recall": self.word_recall,
        }


@dataclass
class KeylogExperiment:
    """A configured keylogging attack simulation.

    Parameters
    ----------
    machine:
        Target laptop (the paper uses the Dell Precision).
    scenario:
        Measurement setup; callers build near-field / distance / wall
        scenarios with the machine's tuned frequency.
    profile:
        Simulation profile - keystroke runs use frequency scaling only
        (:data:`repro.params.KEYLOG`) because keystroke timescales stay
        far above the STFT window at reduced carrier frequencies.
    typist:
        Typing-behaviour parameters.
    """

    machine: Machine = DELL_PRECISION
    scenario: Optional[Scenario] = None
    profile: SimProfile = KEYLOG
    typist: TypistProfile = field(default_factory=TypistProfile)
    activity_model: KeystrokeActivityModel = field(
        default_factory=KeystrokeActivityModel
    )
    detector_config: KeylogDetectorConfig = field(
        default_factory=KeylogDetectorConfig
    )
    seed: int = 0

    def prepare(self, text: str):
        """Simulate typing ``text`` up to (but not including) the
        analog chain; returns (keystrokes, activity, scenario, rng).

        The returned ``rng`` is positioned exactly where the chain
        render expects it, so ``render_capture(machine, activity,
        scenario, profile, rng)`` reproduces :meth:`type_and_capture`
        bit for bit.  Scenario resolution draws nothing, so splitting
        here is draw-order neutral.
        """
        rng = np.random.default_rng(self.seed)
        model = TypingModel(self.typist, rng)
        keystrokes = model.type_text(text, start_time=0.3)
        duration = keystrokes[-1].release_time + 0.5 if keystrokes else 1.0
        activity = keystrokes_to_activity(
            keystrokes,
            duration,
            self.activity_model,
            rng,
            time_scale=self.profile.time_scale,
        )
        system = irq.generate(
            self.machine.interrupt_profile,
            duration,
            rng,
            time_scale=self.profile.time_scale,
        )
        activity = activity.merged_with(system)
        scenario = self.scenario
        if scenario is None:
            from ..em.environment import near_field_scenario

            scenario = near_field_scenario(
                tuned_frequency_hz(self.machine, self.profile),
                physics_frequency_hz=1.5 * self.machine.vrm_frequency_hz,
            )
        return keystrokes, activity, scenario, rng

    def type_and_capture(self, text: str):
        """Simulate typing ``text``; returns (keystrokes, capture)."""
        keystrokes, activity, scenario, rng = self.prepare(text)
        capture = render_capture(
            self.machine, activity, scenario, self.profile, rng
        )
        return keystrokes, capture

    def run(self, text: Optional[str] = None, n_words: int = 50) -> KeylogResult:
        """Full attack: type, capture, detect, score."""
        if text is None:
            text = random_words(n_words, np.random.default_rng(self.seed + 77))
        keystrokes, capture = self.type_and_capture(text)
        detector = KeystrokeDetector(
            self.machine.vrm_frequency_hz / self.profile.total_freq_divisor,
            self.detector_config,
        )
        detection = detector.detect(capture)
        return _score_detection(self, detection, keystrokes, text)

    def run_streaming(
        self,
        text: Optional[str] = None,
        n_words: int = 50,
        *,
        chunk_size: int = 4096,
        buffer_capacity: int = 64,
        policy: str = "block",
        service_rate_sps: Optional[float] = None,
        jitter_rel: float = 0.0,
    ) -> KeylogStreamResult:
        """Live-mode attack: the capture is replayed through the
        streaming detector chunk by chunk (:mod:`repro.stream`).

        The finalised scores match :meth:`run` on a lossless replay up
        to the batch path's pre-FFT normalisation (same events;
        floating-point threshold differences at the ulp level), and the
        online events carry per-keystroke detection latencies.
        """
        from ..stream import (
            CaptureChunkSource,
            StreamingKeystrokeDetector,
            StreamRunner,
        )

        if text is None:
            text = random_words(n_words, np.random.default_rng(self.seed + 77))
        keystrokes, capture = self.type_and_capture(text)
        source = CaptureChunkSource(capture, chunk_size, jitter_rel=jitter_rel)
        streaming = StreamingKeystrokeDetector(
            source.meta,
            self.machine.vrm_frequency_hz / self.profile.total_freq_divisor,
            self.detector_config,
        )
        runner = StreamRunner(
            source,
            streaming,
            buffer_capacity=buffer_capacity,
            policy=policy,
            service_rate_sps=service_rate_sps,
        )
        run = runner.run()
        detection = streaming.finalize()
        result = _score_detection(self, detection, keystrokes, text)
        return KeylogStreamResult(
            result=result, events=run.events, stats=run.stats
        )


@dataclass
class KeylogStreamResult:
    """A streaming keylogging run: batch-grade scores plus live events.

    ``result`` scores the *finalised* detection (batch-equivalent pass
    over the accumulated band energy); ``events`` are the online
    detections, each stamped with the latency between the keystroke's
    end on the air and the moment the receiver reported it.
    """

    result: KeylogResult
    events: List  # List[repro.stream.receiver.KeystrokeEvent]
    stats: object  # repro.stream.runner.StreamStats

    @property
    def detection_latencies_s(self) -> List[float]:
        return [e.latency_s for e in self.events]

    @property
    def mean_detection_latency_s(self) -> float:
        lat = self.detection_latencies_s
        return float(np.mean(lat)) if lat else 0.0

    @property
    def max_detection_latency_s(self) -> float:
        lat = self.detection_latencies_s
        return float(np.max(lat)) if lat else 0.0


def _score_detection(
    experiment: "KeylogExperiment",
    detection: KeylogDetection,
    keystrokes: List[Keystroke],
    text: str,
) -> KeylogResult:
    """Shared Table IV scoring for a detection, batch or finalised."""
    tp, fp, fn = match_events(detection.events, keystrokes)
    tpr = tp / max(len(keystrokes), 1)
    fpr = fp / max(len(detection.events), 1)
    seg = segment_words(detection.events)
    true_lengths = [len(w) for w in text.split(" ") if w]
    precision, recall = word_accuracy(seg.word_lengths, true_lengths)
    label = (
        experiment.scenario.name
        if experiment.scenario is not None
        else "near-field"
    )
    registry = get_metrics()
    if registry is not None:
        registry.histogram("keylog.true_positive_rate").observe(tpr)
        registry.histogram("keylog.false_positive_rate").observe(fpr)
    return KeylogResult(
        label=label,
        true_positive_rate=tpr,
        false_positive_rate=fpr,
        word_precision=precision,
        word_recall=recall,
        n_keystrokes=len(keystrokes),
        n_detected=detection.count,
        detection=detection,
    )


def _execute_session(
    task: Tuple[KeylogExperiment, Optional[str], int]
) -> KeylogResult:
    """One typing session; module-level so it crosses process boundaries."""
    experiment, text, n_words = task
    return experiment.run(text=text, n_words=n_words)


def run_sessions(
    experiments: Sequence[KeylogExperiment],
    *,
    text: Optional[str] = None,
    n_words: int = 50,
    jobs: Optional[int] = None,
) -> List[KeylogResult]:
    """Run several independent keylogging sessions, fanned out.

    Each experiment carries its own seed (and scenario), so the
    sessions are independent trials: results come back in input order
    and are bit-identical at any worker count.  Used by the Table IV
    harness to spread its (distance x session) grid over workers.
    """
    tasks = [(experiment, text, n_words) for experiment in experiments]
    return parallel_map(_execute_session, tasks, jobs=jobs)
