"""Word reconstruction from detected keystrokes (paper Section V-C).

Once individual keystrokes are detected, the stream is segmented into
words by identifying which keystrokes are the space bar.  Following the
dictionary-attack approach of Berger et al. [75] that the paper uses,
spaces are identified from *timing*: a typist pauses longer around the
space than within a word, so inter-keystroke gaps are classified
bimodally and long gaps become word boundaries.

The output is a sequence of word lengths, which the paper evaluates as
a multi-class classification (Table IV's precision/recall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..dsp.detection import bimodal_threshold
from .detector import DetectedEvent


@dataclass
class WordSegmentation:
    """Recovered word structure."""

    word_lengths: List[int]
    boundary_gaps: np.ndarray
    gap_threshold: float

    @property
    def word_count(self) -> int:
        return len(self.word_lengths)


def segment_words(
    events: Sequence[DetectedEvent],
    min_gap_ratio: float = 1.55,
) -> WordSegmentation:
    """Group detected keystrokes into words by inter-event gaps.

    The threshold between intra-word and boundary gaps is chosen from
    the gap distribution itself (bimodal split), clamped to at least
    ``min_gap_ratio`` times the median gap so uniform typists do not
    fragment into single-character words.

    Note the space bar itself is a keystroke: a word boundary consumes
    one detected event (the space), which is excluded from both
    adjacent words - mirroring how the paper counts characters (spaces
    are detected) but reports *word lengths* without them.
    """
    events = list(events)
    if not events:
        return WordSegmentation([], np.empty(0), 0.0)
    if len(events) == 1:
        return WordSegmentation([1], np.empty(0), 0.0)
    starts = np.array([ev.start for ev in events])
    gaps = np.diff(starts)
    # Score each interior event by the sum of its flanking gaps: the
    # space keystroke is flanked by *two* elongated gaps, so its score
    # separates from regular characters by twice the boundary pause
    # while averaging two jitter draws.
    scores = gaps[:-1] + gaps[1:]
    # The intra-word score level anchors the threshold.  Only characters
    # not adjacent to a space score at the intra-word level, and for
    # short-word text those can be as rare as ~20% of interior events,
    # so anchor on a low percentile.
    intra_level = float(np.percentile(scores, 15)) if scores.size else 0.0
    clamp = min_gap_ratio * intra_level
    if scores.size >= 24:
        # Enough samples for the histogram-mode split to be meaningful.
        threshold = max(min(bimodal_threshold(scores), 2.2 * intra_level), clamp)
    elif scores.size >= 8:
        threshold = clamp
    else:
        # Too few interior events for score statistics: classify on the
        # raw gaps instead (a space is flanked by two elongated gaps,
        # each above the median gap).
        threshold = 2.0 * 1.3 * float(np.median(gaps))
    is_space = np.zeros(len(events), dtype=bool)
    is_space[1:-1] = scores > threshold
    # Characters adjacent to a space also see one elongated gap and can
    # cross the threshold, producing runs of adjacent classifications.
    # Within a run, true spaces occupy every other position (a space
    # cannot neighbour a space), so keep the alternating subset with the
    # larger total score.
    i = 1
    while i < len(events) - 1:
        if not is_space[i]:
            i += 1
            continue
        j = i
        while j + 1 < len(events) - 1 and is_space[j + 1]:
            j += 1
        run = list(range(i, j + 1))
        even = run[0::2]
        odd = run[1::2]

        def mean_score(ks):
            return float(np.mean([scores[k - 1] for k in ks])) if ks else -1.0

        even_mean, odd_mean = mean_score(even), mean_score(odd)
        if odd and abs(even_mean - odd_mean) < 0.05 * max(even_mean, odd_mean):
            # Near-tie (e.g. space-'a'-space): prefer the parity with
            # more members - two boundaries beat one.
            keep = set(even if len(even) >= len(odd) else odd)
        else:
            keep = set(even if even_mean >= odd_mean else odd)
        for k in run:
            is_space[k] = k in keep
        i = j + 1
    word_lengths: List[int] = []
    current = 0
    for i in range(len(events)):
        if is_space[i]:
            if current > 0:
                word_lengths.append(current)
            current = 0
        else:
            current += 1
    if current > 0:
        word_lengths.append(current)
    boundary_gaps = gaps[np.nonzero(is_space[1:-1])[0]] if gaps.size else gaps
    return WordSegmentation(
        word_lengths=word_lengths,
        boundary_gaps=boundary_gaps,
        gap_threshold=float(threshold),
    )


def word_accuracy(
    predicted_lengths: Sequence[int], true_lengths: Sequence[int]
) -> Tuple[float, float]:
    """Table IV word metrics: ``(precision, recall)``.

    Predicted and true word sequences are aligned with edit-distance
    (words can be dropped or split); precision is the fraction of
    retrieved words whose length is correct, recall the fraction of
    true words that were retrieved at all.
    """
    pred = list(predicted_lengths)
    true = list(true_lengths)
    if not pred:
        return 0.0, 0.0
    n, m = len(true), len(pred)
    dp = np.zeros((n + 1, m + 1), dtype=np.int32)
    dp[0, :] = np.arange(m + 1)
    dp[:, 0] = np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if true[i - 1] == pred[j - 1] else 1
            dp[i, j] = min(
                dp[i - 1, j - 1] + cost, dp[i - 1, j] + 1, dp[i, j - 1] + 1
            )
    # Backtrack: count matched pairs and exact-length matches.
    i, j = n, m
    matched = 0
    correct = 0
    while i > 0 and j > 0:
        cost = 0 if true[i - 1] == pred[j - 1] else 1
        if dp[i, j] == dp[i - 1, j - 1] + cost:
            matched += 1
            if cost == 0:
                correct += 1
            i -= 1
            j -= 1
        elif dp[i, j] == dp[i - 1, j] + 1:
            i -= 1
        else:
            j -= 1
    precision = correct / len(pred)
    recall = matched / len(true)
    return float(precision), float(recall)
