"""Keylogging application: typing model, keystroke detection, words."""

from .activity import KeystrokeActivityModel, keystrokes_to_activity
from .detector import (
    DetectedEvent,
    KeylogDetection,
    KeylogDetectorConfig,
    KeystrokeDetector,
    match_events,
)
from .evaluate import KeylogExperiment, KeylogResult
from .interkey import (
    IntervalProfile,
    TimingAnalysis,
    analyze_timing,
    dictionary_reduction_factor,
    intervals_from_events,
)
from .typing_model import TypingModel, TypistProfile, key_distance, random_words
from .words import WordSegmentation, segment_words, word_accuracy

__all__ = [
    "DetectedEvent",
    "KeylogDetection",
    "KeylogDetectorConfig",
    "IntervalProfile",
    "KeylogExperiment",
    "KeylogResult",
    "TimingAnalysis",
    "KeystrokeActivityModel",
    "KeystrokeDetector",
    "TypingModel",
    "TypistProfile",
    "WordSegmentation",
    "analyze_timing",
    "dictionary_reduction_factor",
    "intervals_from_events",
    "key_distance",
    "keystrokes_to_activity",
    "match_events",
    "random_words",
    "segment_words",
    "word_accuracy",
]
