"""Inter-key timing analysis for key identification (paper Section V-B).

After keystroke *detection*, the paper points at prior work showing the
timing between keystrokes constrains *which* keys were pressed:

* (i) far-apart key pairs are typed faster than close pairs,
* (ii) frequent digraphs are typed faster than rare ones,
* (iii) practice shrinks specific sequences.

This module quantifies how much a passive observer learns from timing
alone: each detected inter-key interval is classified against the
population statistics, and the resulting constraint is expressed as a
search-space (entropy) reduction for a dictionary attack - the metric
Section V-B's brute-force framing cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .detector import DetectedEvent

#: Interval classes, slowest to fastest.
INTERVAL_CLASSES = ("slow", "medium", "fast")


@dataclass
class IntervalProfile:
    """Population statistics of a victim's inter-key intervals."""

    tercile_edges: Tuple[float, float]
    median: float

    @classmethod
    def from_intervals(cls, intervals: np.ndarray) -> "IntervalProfile":
        intervals = np.asarray(intervals, dtype=float)
        if intervals.size < 3:
            raise ValueError("need at least 3 intervals to profile")
        lo, hi = np.percentile(intervals, [33.3, 66.7])
        return cls(tercile_edges=(float(lo), float(hi)),
                   median=float(np.median(intervals)))

    def classify(self, interval: float) -> str:
        lo, hi = self.tercile_edges
        if interval <= lo:
            return "fast"
        if interval >= hi:
            return "slow"
        return "medium"


def intervals_from_events(events: Sequence[DetectedEvent]) -> np.ndarray:
    """Inter-keystroke intervals (start to start) from detections."""
    starts = np.array([ev.start for ev in events])
    return np.diff(starts) if starts.size > 1 else np.empty(0)


@dataclass
class TimingAnalysis:
    """What timing reveals about a detected keystroke sequence."""

    classes: List[str]
    profile: IntervalProfile
    search_space_reduction_bits: float

    @property
    def n_intervals(self) -> int:
        return len(self.classes)


def analyze_timing(
    events: Sequence[DetectedEvent],
    digraph_class_fractions: Dict[str, float] = None,
) -> TimingAnalysis:
    """Classify each interval and estimate the entropy reduction.

    ``digraph_class_fractions`` gives, for each timing class, the
    fraction of all digraphs consistent with it.  The defaults reflect
    the Salthouse-style structure the typing model implements: fast
    intervals are dominated by frequent and/or cross-hand digraphs
    (~30 % of pairs), slow intervals by same-finger/word-boundary pairs
    (~25 %), medium by the rest.

    The reduction is reported in bits per keystroke pair: an attacker's
    dictionary search over N candidate digraphs shrinks by
    ``2**reduction`` on average.
    """
    if digraph_class_fractions is None:
        digraph_class_fractions = {"fast": 0.30, "medium": 0.45, "slow": 0.25}
    intervals = intervals_from_events(events)
    if intervals.size < 3:
        raise ValueError("need at least 4 detected keystrokes")
    profile = IntervalProfile.from_intervals(intervals)
    classes = [profile.classify(float(v)) for v in intervals]
    # Average entropy reduction: -log2 of the consistent fraction,
    # weighted by how often each class occurs.
    total = 0.0
    for cls in classes:
        fraction = digraph_class_fractions.get(cls, 1.0)
        total += -np.log2(max(fraction, 1e-9))
    reduction = total / len(classes)
    return TimingAnalysis(
        classes=classes,
        profile=profile,
        search_space_reduction_bits=float(reduction),
    )


def dictionary_reduction_factor(
    analysis: TimingAnalysis, word_length: int
) -> float:
    """Search-space shrink factor for one word of the given length.

    A word of L characters has L-1 internal intervals; each contributes
    its per-pair reduction, so the candidate set shrinks by roughly
    ``2**(bits * (L-1))``.
    """
    if word_length < 2:
        return 1.0
    return float(
        2.0 ** (analysis.search_space_reduction_bits * (word_length - 1))
    )
