"""Keystroke detection from the PMU emission (paper Section V-C).

The detector follows the paper's recipe exactly:

1. normalise the capture and compute an STFT with *non-overlapping*
   5 ms windows,
2. select the frequency band containing the PMU's spectral spikes
   (known per device, or found with peak detection),
3. threshold each window's band energy (the same bimodal threshold the
   covert receiver uses, cf. Section IV-B3),
4. filter out detections shorter than 30 ms - a real keystroke's burst
   of processing is longer than that, while browser housekeeping
   bursts are "typically much shorter".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..dsp.detection import bimodal_threshold
from ..dsp.stft import stft
from ..types import IQCapture, Keystroke


@dataclass(frozen=True)
class KeylogDetectorConfig:
    """Detector parameters, mirroring Section V-C.

    Attributes
    ----------
    window_s:
        STFT window length (paper: 5 ms, non-overlapping).
    min_event_s:
        Minimum duration of a valid keystroke (paper: 30 ms).
    band_halfwidth_hz:
        Half-width of the band taken around each PMU spectral line.
    merge_gap_s:
        Detections separated by gaps shorter than this are merged (a
        key press and its release burst belong to one keystroke).
    """

    window_s: float = 5e-3
    min_event_s: float = 30e-3
    band_halfwidth_hz_rel: float = 0.02
    merge_gap_s: float = 15e-3

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.min_event_s <= 0:
            raise ValueError("durations must be positive")


@dataclass
class DetectedEvent:
    """One detected keystroke event ``[start, end)`` in seconds."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class KeylogDetection:
    """Full detector output: events plus the diagnostics Figure 11 shows."""

    events: List[DetectedEvent]
    band_energy: np.ndarray
    window_times: np.ndarray
    threshold: float

    @property
    def count(self) -> int:
        return len(self.events)


class KeystrokeDetector:
    """STFT + threshold keystroke detector."""

    def __init__(
        self,
        vrm_frequency_hz: float,
        config: KeylogDetectorConfig = KeylogDetectorConfig(),
    ):
        if vrm_frequency_hz <= 0:
            raise ValueError("VRM frequency must be positive")
        self.vrm_frequency_hz = vrm_frequency_hz
        self.config = config

    def detect(self, capture: IQCapture) -> KeylogDetection:
        """Run the Section V-C pipeline on a capture."""
        cfg = self.config
        window = max(int(cfg.window_s * capture.sample_rate), 8)
        # Normalise (paper: "we first normalized ... the signal").
        samples = capture.samples / max(
            float(np.sqrt(np.mean(np.abs(capture.samples) ** 2))), 1e-12
        )
        spec = stft(
            samples,
            capture.sample_rate,
            fft_size=window,
            hop=window,  # non-overlapping windows
            window="rect",
        )
        bins = self._pmu_bins(spec, capture)
        energy = spec.band_energy(bins)
        threshold = bimodal_threshold(energy)
        active = energy > threshold
        events = self._group_events(active, spec.times, cfg)
        return KeylogDetection(
            events=events,
            band_energy=energy,
            window_times=spec.times,
            threshold=threshold,
        )

    def _pmu_bins(self, spec, capture: IQCapture) -> np.ndarray:
        """Bins of the PMU's fundamental and first harmonic."""
        bins: List[int] = []
        halfwidth_hz = self.config.band_halfwidth_hz_rel * self.vrm_frequency_hz
        for harmonic in (1, 2):
            offset = capture.baseband_offset(harmonic * self.vrm_frequency_hz)
            if abs(offset) >= capture.sample_rate / 2:
                continue
            band = spec.band_indices(offset - halfwidth_hz, offset + halfwidth_hz)
            if band.size == 0:
                band = np.array([spec.nearest_bin(offset)])
            bins.extend(band.tolist())
        if not bins:
            raise ValueError("PMU band outside the capture bandwidth")
        return np.unique(np.array(bins, dtype=int))

    def _group_events(
        self, active: np.ndarray, times: np.ndarray, cfg: KeylogDetectorConfig
    ) -> List[DetectedEvent]:
        return group_events(active, times, cfg)


def group_events(
    active: np.ndarray, times: np.ndarray, cfg: KeylogDetectorConfig
) -> List[DetectedEvent]:
    """Runs of active windows -> events; merge near, drop short.

    Module-level so the streaming detector's finalisation pass
    (:class:`repro.stream.receiver.StreamingKeystrokeDetector`) applies
    the identical grouping to its accumulated band energy.
    """
    window_s = times[1] - times[0] if times.size > 1 else cfg.window_s
    raw: List[DetectedEvent] = []
    start = None
    for i, a in enumerate(active):
        if a and start is None:
            start = times[i] - window_s / 2
        elif not a and start is not None:
            raw.append(DetectedEvent(start, times[i] - window_s / 2))
            start = None
    if start is not None:
        raw.append(DetectedEvent(start, times[-1] + window_s / 2))
    merged: List[DetectedEvent] = []
    for ev in raw:
        if merged and ev.start - merged[-1].end <= cfg.merge_gap_s:
            merged[-1] = DetectedEvent(merged[-1].start, ev.end)
        else:
            merged.append(ev)
    return [ev for ev in merged if ev.duration >= cfg.min_event_s]


def match_events(
    detected: Sequence[DetectedEvent],
    truth: Sequence[Keystroke],
    tolerance_s: float = 0.06,
) -> Tuple[int, int, int]:
    """Greedy one-to-one matching of detections to true keystrokes.

    Returns ``(true_positives, false_positives, false_negatives)``.  A
    detection matches a keystroke when the press time falls within
    ``tolerance_s`` of the event (or inside it).
    """
    used = [False] * len(detected)
    tp = 0
    for ks in truth:
        best = None
        for i, ev in enumerate(detected):
            if used[i]:
                continue
            if ev.start - tolerance_s <= ks.press_time <= ev.end + tolerance_s:
                if best is None or abs(ev.start - ks.press_time) < abs(
                    detected[best].start - ks.press_time
                ):
                    best = i
        if best is not None:
            used[best] = True
            tp += 1
    fp = used.count(False)
    fn = len(truth) - tp
    return tp, fp, fn
