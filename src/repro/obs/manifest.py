"""Per-run manifests: make every table/figure reproducible-by-record.

A manifest captures everything needed to re-run (and trust) one
experiment: the configuration fingerprint, seeds, the simulation
profile snapshot, execution settings, stage timings, the signal-quality
metrics collected during the run, library versions, and schema tags.
The experiment runner attaches one to every :class:`ExperimentResult`
and writes it as JSON next to the experiment's output, so a reviewer
holding a regenerated Table II also holds the exact recipe - and the
signal conditions - that produced it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..exec.cache import CHAIN_SCHEMA, fingerprint
from ..exec.context import get_execution_config
from .metrics import flatten

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = "run-manifest-v1"


def _versions() -> Dict[str, str]:
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }


def config_fingerprint(
    experiment_id: str, profile, seed: int, quick: bool
) -> str:
    """Stable digest of everything that determines an experiment's rows.

    Profile ``None`` (per-experiment default) hashes as None, which is
    correct: the default choice is a function of the experiment id.
    """
    return fingerprint(CHAIN_SCHEMA, experiment_id, profile, seed, quick)


def build_manifest(
    *,
    experiment_id: str,
    title: str = "",
    profile=None,
    seed: int = 0,
    quick: bool = True,
    rows=None,
    timings: Optional[Dict[str, float]] = None,
    metrics_snapshot: Optional[Dict[str, dict]] = None,
    elapsed_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one experiment run."""
    config = get_execution_config()
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "chain_schema": CHAIN_SCHEMA,
        "experiment": experiment_id,
        "title": title,
        "seed": seed,
        "quick": quick,
        "profile": dataclasses.asdict(profile) if profile is not None else None,
        "execution": {
            "jobs": config.jobs,
            "cache_enabled": config.cache_enabled,
            "cache_dir": config.cache_dir,
        },
        "config_fingerprint": config_fingerprint(
            experiment_id, profile, seed, quick
        )[:16],
        "generated_unix": round(time.time(), 3),
        "versions": _versions(),
    }
    if rows is not None:
        manifest["result_fingerprint"] = fingerprint(rows)[:16]
        manifest["n_rows"] = len(rows)
    if elapsed_s is not None:
        manifest["elapsed_s"] = round(elapsed_s, 3)
    if timings:
        manifest["timings_s"] = {
            name: round(seconds, 4) for name, seconds in sorted(timings.items())
        }
    if metrics_snapshot:
        manifest["metrics"] = flatten(metrics_snapshot)
    return manifest


def manifest_path(directory, experiment_id: str) -> Path:
    """Canonical manifest location for one experiment's output."""
    return Path(directory) / f"{experiment_id}.manifest.json"


def write_manifest(manifest: Dict[str, Any], path) -> Path:
    """Write a manifest as pretty JSON, atomically (rename into place)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-manifest-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
    return path


def read_manifest(path) -> Dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: manifest schema {manifest.get('schema')!r} != "
            f"{MANIFEST_SCHEMA!r}"
        )
    return manifest
