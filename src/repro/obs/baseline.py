"""Metric baselines: record once, compare on every ``make regress``.

The gate runs a small set of fixed-seed tier-1 scenarios through the
instrumented chain, flattens the collected signal-quality metrics, and
either records them to ``baselines/*.json`` or compares them against
the committed record with per-metric tolerances.  Any drift - a changed
burst rate, a shifted emission RMS, a lost dB of SNR - fails with a
per-metric diff, so an emission-path bug becomes red CI instead of a
silently wrong Table II/III/IV number.

Scenarios run serially with the chain cache disabled, so the recorded
numbers never depend on ambient execution state.  (The sweep-engine
scenario deliberately re-enables the cache over a fresh instance - the
engine's cache transparency is the property it pins.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..exec.cache import CHAIN_SCHEMA
from ..exec.context import execution_scope
from .metrics import flatten, metrics_scope

BASELINE_SCHEMA = "baseline-v1"

#: Default relative tolerance.  The scenarios are fully deterministic
#: under a fixed seed, but summary floats may wobble in the last ulps
#: across BLAS/FFT builds; 1e-6 absorbs that while catching any real
#: change (the acceptance bar is a 1% emission perturbation).
DEFAULT_REL_TOLERANCE = 1e-6
DEFAULT_ABS_TOLERANCE = 1e-12

#: Default location of the committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = "baselines"


# ---------------------------------------------------------------------------
# Scenarios


def _chain_emission_tiny() -> Dict[str, float]:
    """Activity -> emission only: the cheapest end-to-end physics probe."""
    from ..chain import render_emission
    from ..params import TINY
    from ..systems.laptops import DELL_INSPIRON
    from ..types import ActivityTrace, Interval

    activity = ActivityTrace(
        [
            Interval(0.001, 0.004),
            Interval(0.006, 0.0085),
            Interval(0.010, 0.011, level=0.5),
        ],
        duration=0.012,
    )
    with metrics_scope() as registry:
        rng = np.random.default_rng(3)
        wave = render_emission(DELL_INSPIRON, activity, TINY, rng)
        registry.gauge("wave.samples").set(wave.size)
        registry.gauge("wave.abs_sum").set(float(np.abs(wave).sum()))
        return flatten(registry.snapshot())


def _covert_inspiron_tiny() -> Dict[str, float]:
    """One decoded near-field covert run (the conftest reference link)."""
    from ..covert.link import CovertLink
    from ..params import TINY
    from ..systems.laptops import DELL_INSPIRON

    payload = np.random.default_rng(99).integers(0, 2, size=100)
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=5)
    with metrics_scope() as registry:
        result = link.run(payload)
        m = result.metrics
        registry.gauge("channel.ber").set(m.ber)
        registry.gauge("channel.insertion_probability").set(
            m.insertion_probability
        )
        registry.gauge("channel.deletion_probability").set(
            m.deletion_probability
        )
        registry.gauge("channel.transmission_rate_bps").set(
            result.transmission_rate_bps
        )
        return flatten(registry.snapshot())


def _keylog_quick_fox() -> Dict[str, float]:
    """One typed session through detection and scoring (Table IV path)."""
    from ..keylog.evaluate import KeylogExperiment

    with metrics_scope() as registry:
        result = KeylogExperiment(seed=2).run(text="the quick brown fox")
        registry.gauge("keylog.true_positive_rate").set(
            result.true_positive_rate
        )
        registry.gauge("keylog.false_positive_rate").set(
            result.false_positive_rate
        )
        registry.gauge("keylog.n_detected").set(result.n_detected)
        return flatten(registry.snapshot())


def _stream_covert_tiny() -> Dict[str, float]:
    """The reference link replayed through the streaming receiver.

    Runs an intentionally slow service rate under drop-oldest, so the
    recorded numbers pin the whole streaming surface: chunk/lag/drop
    accounting, degradation shedding, online event flow, and the
    divergence of the lossy finalised decode from the clean batch bits.
    """
    from ..core.align import align_bits
    from ..covert.link import CovertLink
    from ..params import TINY
    from ..stream import CaptureChunkSource, StreamingReceiver, StreamRunner
    from ..systems.laptops import DELL_INSPIRON

    payload = np.random.default_rng(99).integers(0, 2, size=100)
    link = CovertLink(machine=DELL_INSPIRON, profile=TINY, seed=5)
    with metrics_scope() as registry:
        batch = link.run(payload)
        bit_period = link.transmitter(
            np.random.default_rng(link.seed)
        ).nominal_bit_duration_s()
        source = CaptureChunkSource(
            batch.capture, chunk_size=4096, jitter_rel=0.05
        )
        receiver = StreamingReceiver(
            source.meta,
            link.vrm_frequency_hz,
            expected_bit_period_s=bit_period,
            config=link.decoder_config,
            frame_format=link.frame_format,
        )
        runner = StreamRunner(
            source,
            receiver,
            buffer_capacity=8,
            policy="drop-oldest",
            service_rate_sps=batch.capture.sample_rate * 0.4,
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = runner.run()
        final = receiver.finalize()
        stats = run.stats
        registry.gauge("stream.run.chunks_dropped").set(stats.chunks_dropped)
        registry.gauge("stream.run.chunks_shed").set(stats.chunks_shed)
        registry.gauge("stream.run.gap_samples").set(stats.gap_samples)
        registry.gauge("stream.run.max_lag_s").set(stats.max_lag_s)
        registry.gauge("stream.run.synchronized").set(
            float(receiver.synchronized)
        )
        registry.gauge("stream.run.lossy_ber").set(
            align_bits(batch.tx_bits, final.bits).ber
        )
        return flatten(registry.snapshot())


def _mux_mixed_tiny() -> Dict[str, float]:
    """A tiny mixed fleet through the streaming multiplexer.

    Six streams - covert, keylog, and clockmod slices with fixed seeds -
    run through the batched cross-stream DSP path.  One slice is
    deliberately under-budgeted (jitter-free, so the shed pattern is
    exact), pinning the drop/shed/gap ledger alongside the lossless
    slices' finalised decodes.  The decode digests are folded into
    gauges (first 8 hex digits as an integer), so any bit-level
    divergence between the batched path and the per-stream reference
    fails the gate, not just throughput-shaped drift.
    """
    from ..mux import (
        FleetStreamSpec,
        build_multiplexer,
        finalized_digests,
    )

    fleet = [
        FleetStreamSpec("stream-covert", count=2, duration_s=0.4),
        FleetStreamSpec("keylog", count=2, duration_s=0.4),
        FleetStreamSpec(
            "clockmod-fsk",
            count=2,
            duration_s=0.4,
            capacity=4,
            service_rate_factor=0.5,
            jitter_rel=0.0,
        ),
    ]
    with metrics_scope() as registry:
        mux, by_stream = build_multiplexer(
            fleet, chunk_size=512, tick_chunks=4
        )
        mux.run()
        mux.check_conservation()
        totals = mux.totals()
        for key in (
            "produced_chunks",
            "delivered_chunks",
            "dropped_chunks",
            "shed_chunks",
            "delivered_samples",
            "gap_samples",
        ):
            registry.gauge(f"mux.totals.{key}").set(totals[key])
        registry.gauge("mux.ticks").set(mux.ticks)
        registry.gauge("mux.shed_fraction").set(mux.shed_fraction())
        registry.gauge("mux.pool.high_watermark").set(
            mux.pool.high_watermark
        )
        for stream_id, digest in finalized_digests(mux, by_stream).items():
            registry.gauge(f"mux.digest.{stream_id}").set(
                int(digest[:8], 16)
            )
        return flatten(registry.snapshot())


def _sweep_table2_tiny() -> Dict[str, float]:
    """The Table II sweep through the key-DAG engine.

    Pins both the physics (pooled channel figures per machine) and the
    engine's topology accounting (trial count, stage dedup ratio), so a
    planner or scheduler change that perturbs any trial's bits - or
    silently stops sharing prefixes - fails the gate.  Unlike the other
    scenarios this one runs with the cache *enabled* (nested scope):
    cache transparency under the engine is exactly what it certifies.
    The cache is reset around the run so the recorded stage taps always
    reflect a cold start, independent of ambient cache state.
    """
    from ..exec.cache import reset_chain_cache
    from ..experiments.table2_near_field import sweep_spec
    from ..sweep import run_sweep

    with metrics_scope() as registry:
        reset_chain_cache()
        try:
            with execution_scope(cache_enabled=True):
                outcome = run_sweep(sweep_spec())
        finally:
            reset_chain_cache()
        for i, record in enumerate(outcome.records):
            r = record["result"]
            registry.gauge(f"sweep.trial{i}.bit_errors").set(r["bit_errors"])
            registry.gauge(f"sweep.trial{i}.received").set(r["received"])
            registry.gauge(f"sweep.trial{i}.tr_bps").set(r["tr_bps"])
        registry.gauge("sweep.plan.trials").set(outcome.plan.n_trials)
        registry.gauge("sweep.plan.stage_runs").set(
            outcome.plan.planned_stage_runs
        )
        registry.gauge("sweep.plan.sharing_factor").set(
            outcome.plan.sharing_factor
        )
        return flatten(registry.snapshot())


def _scenario_registry_run(name: str, seed: int) -> Dict[str, float]:
    """One registered scenario plugin at quick sizing.

    ``run_registered`` executes under the ambient (serial, uncached)
    config; every ``ctx.gauge`` a component records mirrors into the
    active registry, so the flattened snapshot pins the scenario's full
    metric surface - channel quality, receiver internals, and the
    engine's own component/record accounting.
    """
    from ..scenario import run_registered

    with metrics_scope() as registry:
        run_registered(name, seed=seed, quick=True)
        return flatten(registry.snapshot())


def _scenario_ichannels_tiny() -> Dict[str, float]:
    """IChannels-style throttling covert channel (arXiv 2106.05050)."""
    return _scenario_registry_run("ichannels-throttle", seed=7)


def _scenario_clockmod_tiny() -> Dict[str, float]:
    """Clock-modulation FSK covert channel (arXiv 2404.05823)."""
    return _scenario_registry_run("clockmod-fsk", seed=11)


SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    "chain-emission-tiny": _chain_emission_tiny,
    "covert-inspiron-tiny": _covert_inspiron_tiny,
    "keylog-quick-fox": _keylog_quick_fox,
    "mux-mixed-tiny": _mux_mixed_tiny,
    "scenario-clockmod-tiny": _scenario_clockmod_tiny,
    "scenario-ichannels-tiny": _scenario_ichannels_tiny,
    "stream-covert-tiny": _stream_covert_tiny,
    "sweep-table2-tiny": _sweep_table2_tiny,
}


def run_scenario(name: str) -> Dict[str, float]:
    """Execute one scenario under a pinned (serial, uncached) config."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown baseline scenario {name!r}; known: {known}")
    with execution_scope(jobs=1, cache_enabled=False):
        return fn()


# ---------------------------------------------------------------------------
# Record / compare


def baseline_path(directory, scenario: str) -> Path:
    return Path(directory) / f"{scenario}.json"


def record(
    directory=DEFAULT_BASELINE_DIR,
    scenarios: Optional[Iterable[str]] = None,
) -> List[Path]:
    """Snapshot the scenarios' metrics into ``directory``."""
    import json

    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for name in names:
        payload = {
            "schema": BASELINE_SCHEMA,
            "chain_schema": CHAIN_SCHEMA,
            "scenario": name,
            "tolerance": {
                "rel_default": DEFAULT_REL_TOLERANCE,
                "abs_default": DEFAULT_ABS_TOLERANCE,
            },
            "metrics": run_scenario(name),
        }
        path = baseline_path(directory, name)
        with path.open("w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


@dataclass(frozen=True)
class MetricDiff:
    """One out-of-tolerance metric."""

    metric: str
    expected: float
    actual: float

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.expected), 1e-30)
        return abs(self.actual - self.expected) / scale

    def render(self) -> str:
        return (
            f"{self.metric}: expected {self.expected!r}, got "
            f"{self.actual!r} (rel err {self.rel_error:.3g})"
        )


@dataclass
class ScenarioComparison:
    """Comparison outcome for one scenario."""

    scenario: str
    diffs: List[MetricDiff] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    extra: List[str] = field(default_factory=list)
    error: Optional[str] = None
    n_checked: int = 0

    @property
    def ok(self) -> bool:
        return not (self.diffs or self.missing or self.error)

    def render(self) -> str:
        if self.ok:
            note = f"{self.n_checked} metrics within tolerance"
            if self.extra:
                note += f"; {len(self.extra)} new metric(s) not in baseline"
            return f"ok   {self.scenario}: {note}"
        lines = [f"FAIL {self.scenario}:"]
        if self.error:
            lines.append(f"  error: {self.error}")
        for name in self.missing:
            lines.append(f"  missing metric (in baseline, not produced): {name}")
        for diff in self.diffs:
            lines.append(f"  {diff.render()}")
        return "\n".join(lines)


@dataclass
class BaselineReport:
    """All scenario comparisons from one ``compare`` call."""

    comparisons: List[ScenarioComparison]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    def render(self) -> str:
        lines = [c.render() for c in self.comparisons]
        verdict = "regress: OK" if self.ok else "regress: FAILED"
        return "\n".join(lines + [verdict])


def compare_metrics(
    expected: Dict[str, float],
    actual: Dict[str, float],
    scenario: str,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    abs_tolerance: float = DEFAULT_ABS_TOLERANCE,
) -> ScenarioComparison:
    """Diff two flat metric dicts under the tolerance policy."""
    comparison = ScenarioComparison(scenario=scenario)
    for name, want in sorted(expected.items()):
        if name not in actual:
            comparison.missing.append(name)
            continue
        got = actual[name]
        comparison.n_checked += 1
        if abs(got - want) > abs_tolerance + rel_tolerance * abs(want):
            comparison.diffs.append(
                MetricDiff(metric=name, expected=want, actual=got)
            )
    comparison.extra = sorted(set(actual) - set(expected))
    return comparison


def compare(
    directory=DEFAULT_BASELINE_DIR,
    scenarios: Optional[Iterable[str]] = None,
) -> BaselineReport:
    """Re-run the scenarios and diff them against the recorded baselines."""
    import json

    directory = Path(directory)
    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    comparisons: List[ScenarioComparison] = []
    for name in names:
        path = baseline_path(directory, name)
        if not path.exists():
            comparisons.append(
                ScenarioComparison(
                    scenario=name,
                    error=(
                        f"no baseline at {path}; run the record mode "
                        "(python -m repro regress --record) and commit it"
                    ),
                )
            )
            continue
        with path.open() as handle:
            recorded = json.load(handle)
        if recorded.get("chain_schema") != CHAIN_SCHEMA:
            comparisons.append(
                ScenarioComparison(
                    scenario=name,
                    error=(
                        f"baseline recorded for chain schema "
                        f"{recorded.get('chain_schema')!r} but the code is "
                        f"{CHAIN_SCHEMA!r}; re-record after the schema bump"
                    ),
                )
            )
            continue
        tolerance = recorded.get("tolerance", {})
        comparisons.append(
            compare_metrics(
                recorded.get("metrics", {}),
                run_scenario(name),
                scenario=name,
                rel_tolerance=tolerance.get(
                    "rel_default", DEFAULT_REL_TOLERANCE
                ),
                abs_tolerance=tolerance.get(
                    "abs_default", DEFAULT_ABS_TOLERANCE
                ),
            )
        )
    return BaselineReport(comparisons=comparisons)
