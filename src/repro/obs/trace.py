"""Structured stage tracing: JSONL span and point events.

Observability counterpart of :mod:`repro.exec.timing`: where the timing
collector answers "how long did each stage take in aggregate", the
tracer answers "what actually happened, in order" - one JSON object per
line, safe to ``tail -f`` while a long batch runs and trivial to load
into pandas afterwards.

Event shape
-----------
Every event carries ``ts`` (seconds since the tracer opened, per
process), ``pid`` and ``event``; the rest depends on the kind::

    {"ts": 0.031, "pid": 412, "event": "span", "name": "pmu",
     "duration_s": 0.012, "key": "9f31c2d4a0b1", "cache": "miss",
     "rng": "1c9a7e0d44f2"}
    {"ts": 0.044, "pid": 412, "event": "cache", "op": "get",
     "key": "9f31c2d4a0b1", "hit": true}
    {"ts": 0.002, "pid": 412, "event": "warning",
     "kind": "pool-serial-fallback", ...}

``chain.py`` emits one span per analog stage (with the stage's cache
key prefix, hit/miss disposition and an RNG-state digest), the cache
emits get/put events, the pool emits fan-out spans and fallback
warnings, and the experiment runner brackets each experiment.

The tracer lives in a :mod:`contextvars` variable; every emit helper is
a single ``ContextVar.get`` + ``None`` check when tracing is off, so
the instrumented hot paths cost nothing in normal runs.  Worker
processes buffer their events (:func:`collect_events`) and the pool
merges them into the parent's tracer, preserving each event's own
per-process timeline.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

_tracer: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_tracer", default=None
)

#: Hex digits kept when abbreviating a 64-char cache key for an event.
KEY_PREFIX_LEN = 12

#: Every span name the code base may open.  ``repro.lint`` rule TRACE001
#: checks each ``span("...")`` call site against this registry, so a
#: typo'd or ad-hoc span name is a lint error, not a silently unfilterable
#: trace stream.  Add the name here (alphabetical) when introducing a new
#: span kind.
REGISTERED_SPANS = frozenset(
    {
        "batch.chain",
        "batch.decode",
        "batch.execute",
        "batch.kernel",
        "dither",
        "emission",
        "mux.group",
        "mux.run",
        "mux.tick",
        "parallel_map",
        "pmu",
        "propagation",
        "scenario",
        "scenario.component",
        "scenario.run",
        "scenario.setup",
        "scenario.teardown",
        "sdr",
        "stream.chunk",
        "sweep.group",
        "sweep.plan",
        "sweep.trial",
        "vrm",
    }
)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other strays into JSON-friendly types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return repr(value)


class Tracer:
    """Writes events to a sink: a file handle or a buffering list."""

    def __init__(self, sink: Union[Any, List[dict]]):
        self._buffer = sink if isinstance(sink, list) else None
        self._handle = None if self._buffer is not None else sink
        self._t0 = time.perf_counter()
        self._pid = os.getpid()

    def emit(self, event: Dict[str, Any]) -> None:
        """Record one event, stamping ``ts`` and ``pid``."""
        record = {
            "ts": round(time.perf_counter() - self._t0, 6),
            "pid": self._pid,
        }
        record.update({k: _jsonable(v) for k, v in event.items()})
        self._write(record)

    def emit_raw(self, record: Dict[str, Any]) -> None:
        """Record an already-stamped event (merging worker buffers)."""
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._buffer is not None:
            self._buffer.append(record)
            return
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()  # keep `tail -f` live mid-batch


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is off."""
    return _tracer.get()


def tracing_active() -> bool:
    return _tracer.get() is not None


@contextmanager
def tracing_scope(path_or_handle: Union[str, os.PathLike, Any]) -> Iterator[Tracer]:
    """Install a tracer writing JSONL to ``path_or_handle``.

    A string/path argument opens (and closes) the file; anything else is
    treated as a writable handle owned by the caller.
    """
    handle = None
    if isinstance(path_or_handle, (str, os.PathLike)):
        handle = open(path_or_handle, "w")
        sink = handle
    else:
        sink = path_or_handle
    tracer = Tracer(sink)
    token = _tracer.set(tracer)
    try:
        yield tracer
    finally:
        _tracer.reset(token)
        if handle is not None:
            handle.close()


@contextmanager
def collect_events() -> Iterator[List[dict]]:
    """Buffer events into a list (worker side of the process boundary)."""
    buffer: List[dict] = []
    token = _tracer.set(Tracer(buffer))
    try:
        yield buffer
    finally:
        _tracer.reset(token)


def merge_events(events: List[dict]) -> None:
    """Replay a worker's buffered events into the active tracer."""
    tracer = _tracer.get()
    if tracer is None:
        return
    for record in events:
        tracer.emit_raw(record)


def trace_event(event: str, **fields: Any) -> None:
    """Emit a point event; free when tracing is off."""
    tracer = _tracer.get()
    if tracer is None:
        return
    payload: Dict[str, Any] = {"event": event}
    payload.update(fields)
    tracer.emit(payload)


@contextmanager
def span(
    name: str,
    attrs: Optional[Dict[str, Any]] = None,
    lazy: Optional[Callable[[], Dict[str, Any]]] = None,
) -> Iterator[None]:
    """Emit a span event covering the body's duration.

    ``attrs`` are attached as-is; ``lazy`` is called only when tracing
    is active (after the body runs), for attributes that are expensive
    to compute, such as an RNG-state digest.
    """
    tracer = _tracer.get()
    if tracer is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        payload: Dict[str, Any] = {
            "event": "span",
            "name": name,
            "duration_s": round(time.perf_counter() - started, 6),
        }
        if attrs:
            payload.update(attrs)
        if lazy is not None:
            payload.update(lazy())
        tracer.emit(payload)


def key_prefix(key: Optional[str]) -> Optional[str]:
    """Abbreviate a cache key for event payloads (None passes through)."""
    if key is None:
        return None
    return key[:KEY_PREFIX_LEN]


def rng_digest(rng) -> str:
    """Short stable digest of a Generator's current state.

    Spans carry this so a trace shows exactly where two runs' stochastic
    histories diverge (the same property the chain cache keys on).
    """
    # Local import: exec.cache imports this module for event emission.
    from ..exec.cache import fingerprint

    return fingerprint(rng.bit_generator.state)[:KEY_PREFIX_LEN]
