"""Signal-quality metrics: a registry plus taps at every chain stage.

PR 1 fixed two silent physics bugs (dropped fractional-tail charge,
dropped final-sample bursts) that no test caught because nothing
recorded what the analog chain actually produced.  This module closes
that gap: each stage reports a small set of physically meaningful
numbers - activity duty cycle, bursts per switching period, phase-shed
fraction, emission RMS, post-propagation SNR, SDR clipping rate, the
receiver's Y[n] bimodal contrast and edge count - into an ambient
registry.  The numbers feed three consumers:

* experiment manifests (:mod:`repro.obs.manifest`), so every table row
  is accompanied by the signal conditions that produced it;
* the baseline regression gate (:mod:`repro.obs.baseline`), which turns
  any drift in these numbers into a red ``make regress``;
* cross-channel comparison against the related current/frequency
  side channels in PAPERS.md, which report the same kinds of figures.

Like the timing collector, the registry lives in a ``ContextVar``;
every tap is one ``get`` + ``None`` check when no registry is active,
so the chain costs nothing extra in un-instrumented runs.  Worker
processes snapshot their registry and the pool merges it into the
parent's (:meth:`MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional

import numpy as np

_registry: ContextVar[Optional["MetricsRegistry"]] = ContextVar(
    "repro_metrics", default=None
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Running summary of observed values: count/mean/min/max.

    Stored as mergeable moments rather than buckets - enough for the
    regression gate and manifests, and exact under worker merging.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            inst = self._histograms[name] = Histogram()
            return inst

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Typed, JSON-friendly view of every instrument."""
        out: Dict[str, dict] = {}
        for name, c in self._counters.items():
            out[name] = {"type": "counter", "value": c.value}
        for name, g in self._gauges.items():
            out[name] = {"type": "gauge", "value": g.value}
        for name, h in self._histograms.items():
            out[name] = {
                "type": "histogram",
                "count": h.count,
                "total": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "mean": h.mean,
            }
        return out

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters and histograms combine exactly; a gauge takes the
        worker's value (last write wins, as within one process).
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                if entry["count"]:
                    h.count += entry["count"]
                    h.total += entry["total"]
                    h.min = min(h.min, entry["min"])
                    h.max = max(h.max, entry["max"])


def flatten(snapshot: Dict[str, dict]) -> Dict[str, float]:
    """Reduce a snapshot to scalar ``{metric: value}`` pairs.

    Counters/gauges keep their name; histograms expand to
    ``name.count`` / ``name.mean`` / ``name.min`` / ``name.max``.  This
    is the form baselines are recorded and compared in.
    """
    flat: Dict[str, float] = {}
    for name, entry in sorted(snapshot.items()):
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            if entry["value"] is not None:
                flat[name] = float(entry["value"])
        elif kind == "histogram" and entry["count"]:
            flat[f"{name}.count"] = float(entry["count"])
            flat[f"{name}.mean"] = float(entry["mean"])
            flat[f"{name}.min"] = float(entry["min"])
            flat[f"{name}.max"] = float(entry["max"])
    return flat


def get_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or None when metrics are off."""
    return _registry.get()


def metrics_active() -> bool:
    return _registry.get() is not None


@contextmanager
def metrics_scope() -> Iterator[MetricsRegistry]:
    """Collect metrics recorded anywhere inside this scope."""
    registry = MetricsRegistry()
    token = _registry.set(registry)
    try:
        yield registry
    finally:
        _registry.reset(token)


# ---------------------------------------------------------------------------
# Chain-stage taps.  Each is called from the signal path with the
# stage's natural intermediate and is a no-op unless a registry is
# active, so the uninstrumented chain pays one ContextVar read per tap.


def tap_activity(activity) -> None:
    """Software side: fraction of the trace that is (level-weighted) busy."""
    reg = _registry.get()
    if reg is None:
        return
    duration = max(activity.duration, 1e-30)
    reg.histogram("chain.activity.duty_cycle").observe(
        activity.busy_time / duration
    )


def tap_bursts(bursts) -> None:
    """VRM side: burst rate and how hard phase shedding is working."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("chain.vrm.bursts").inc(bursts.count)
    periods = bursts.duration / max(bursts.switching_period, 1e-30)
    if periods > 0:
        per_period = bursts.count / periods
        reg.histogram("chain.vrm.bursts_per_period").observe(per_period)
        reg.histogram("chain.vrm.shed_fraction").observe(
            max(1.0 - per_period, 0.0)
        )


def tap_emission(wave: np.ndarray) -> None:
    """Emitted waveform energy (the quantity PR 1's bugs silently lost)."""
    reg = _registry.get()
    if reg is None:
        return
    rms = float(np.sqrt(np.mean(np.square(wave)))) if wave.size else 0.0
    reg.histogram("chain.emission.rms").observe(rms)


def tap_propagation(emission: np.ndarray, received: np.ndarray, scenario) -> None:
    """Post-propagation SNR: scaled emission vs. everything added to it."""
    reg = _registry.get()
    if reg is None:
        return
    signal = emission * scenario.link_gain()
    noise = received - signal
    p_sig = float(np.mean(np.square(signal))) if signal.size else 0.0
    p_noise = float(np.mean(np.square(noise))) if noise.size else 0.0
    snr_db = 10.0 * math.log10(max(p_sig, 1e-30) / max(p_noise, 1e-30))
    reg.histogram("chain.propagation.snr_db").observe(snr_db)


def tap_capture(capture, adc_bits: int) -> None:
    """SDR side: fraction of IQ samples pinned at the ADC rails."""
    reg = _registry.get()
    if reg is None:
        return
    samples = capture.samples
    if samples.size == 0:
        reg.histogram("chain.sdr.clip_rate").observe(0.0)
        return
    levels = 2 ** (adc_bits - 1)
    top = (levels - 1) / levels
    re, im = samples.real, samples.imag
    clipped = (re >= top) | (re <= -1.0) | (im >= top) | (im <= -1.0)
    reg.histogram("chain.sdr.clip_rate").observe(
        float(np.count_nonzero(clipped)) / samples.size
    )


def tap_receiver(powers: np.ndarray, n_edges: int) -> None:
    """Receiver side: Y[n] bimodal contrast and detected edge count.

    Contrast is ``(hi - lo) / (hi + lo)`` of the per-bit average powers
    split at their bimodal threshold - near 1 for a clean on-off-keyed
    envelope, near 0 when the two levels have collapsed.
    """
    reg = _registry.get()
    if reg is None:
        return
    reg.histogram("rx.edges.count").observe(float(n_edges))
    powers = np.asarray(powers, dtype=float)
    if powers.size < 2:
        return
    from ..dsp.detection import bimodal_threshold

    thr = bimodal_threshold(powers)
    hi = powers[powers > thr]
    lo = powers[powers <= thr]
    if hi.size == 0 or lo.size == 0:
        contrast = 0.0
    else:
        mean_hi, mean_lo = float(hi.mean()), float(lo.mean())
        contrast = (mean_hi - mean_lo) / max(mean_hi + mean_lo, 1e-30)
    reg.histogram("rx.envelope.bimodal_contrast").observe(contrast)


# ---------------------------------------------------------------------------
# Streaming-receiver taps (repro.stream).  Same contract as the chain
# taps: one ContextVar read and out when no registry is active.


def tap_stream_chunk(lag_s: float, occupancy: float) -> None:
    """One serviced chunk: its processing lag and the buffer fill level."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("stream.chunks").inc()
    reg.histogram("stream.lag_s").observe(lag_s)
    reg.histogram("stream.buffer.occupancy").observe(occupancy)


def tap_stream_drop(n_chunks: int, n_samples: int) -> None:
    """Chunks evicted by the ring buffer (drop-oldest overflow)."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("stream.dropped.chunks").inc(n_chunks)
    reg.counter("stream.dropped.samples").inc(n_samples)


def tap_stream_degraded(n_chunks: int, n_samples: int) -> None:
    """Chunks shed at ingest by graceful degradation (decimation)."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("stream.degraded.chunks").inc(n_chunks)
    reg.counter("stream.degraded.samples").inc(n_samples)


def tap_stream_event(latency_s: float) -> None:
    """One online receiver event and its decode latency."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("stream.events").inc()
    reg.histogram("stream.event_latency_s").observe(latency_s)


def tap_stream_summary(events_per_s: float, high_watermark: int) -> None:
    """End-of-run levels: event rate and peak buffer occupancy."""
    reg = _registry.get()
    if reg is None:
        return
    reg.gauge("stream.events_per_s").set(events_per_s)
    reg.gauge("stream.buffer.high_watermark").set(float(high_watermark))


# ---------------------------------------------------------------------------
# Fleet-multiplexer taps (repro.mux).  Aggregate, not per-stream: a
# 10k-stream fleet must not mint 10k metric names, so the mux reports
# fleet-wide counters/histograms and leaves per-stream detail to
# MuxStreamStats (manifests) and the interactive inspect API.


def tap_mux_tick(n_streams: int, n_chunks: int, n_samples: int) -> None:
    """One scheduler tick: streams serviced, chunks and samples moved."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("mux.ticks").inc()
    reg.counter("mux.chunks").inc(n_chunks)
    reg.counter("mux.samples").inc(n_samples)
    reg.histogram("mux.tick.streams").observe(float(n_streams))


def tap_mux_group(n_streams: int, n_frames: int, seconds: float) -> None:
    """One cross-stream batched DSP kernel call (one config group)."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("mux.group.calls").inc()
    reg.histogram("mux.group.streams").observe(float(n_streams))
    reg.histogram("mux.group.frames").observe(float(n_frames))
    reg.histogram("mux.group.seconds").observe(seconds)


def tap_mux_shed(n_chunks: int, n_samples: int) -> None:
    """Chunks shed at ingest (scheduler backpressure / injection)."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("mux.shed.chunks").inc(n_chunks)
    reg.counter("mux.shed.samples").inc(n_samples)


def tap_mux_drop(n_chunks: int, n_samples: int) -> None:
    """Chunks evicted from pool-backed stream queues (drop-oldest)."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("mux.dropped.chunks").inc(n_chunks)
    reg.counter("mux.dropped.samples").inc(n_samples)


def tap_mux_summary(
    n_streams: int,
    events: int,
    shed_fraction: float,
    slab_high_watermark: int,
) -> None:
    """End-of-run fleet levels."""
    reg = _registry.get()
    if reg is None:
        return
    reg.gauge("mux.streams").set(float(n_streams))
    reg.gauge("mux.events").set(float(events))
    reg.gauge("mux.shed_fraction").set(shed_fraction)
    reg.gauge("mux.pool.high_watermark").set(float(slab_high_watermark))


# ---------------------------------------------------------------------------
# Sweep-engine tap (repro.sweep)


def tap_sweep(stats) -> None:
    """One finished sweep: how much chain work the key-DAG plan saved.

    ``dedup_ratio`` is the naive-to-planned stage-run ratio (1.0 means
    nothing was shared); ``stages_saved`` the absolute count of chain
    stages the plan avoided recomputing.
    """
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("sweep.runs").inc()
    reg.counter("sweep.trials").inc(float(stats.get("trials", 0.0)))
    reg.counter("sweep.trials.executed").inc(float(stats.get("executed", 0.0)))
    reg.counter("sweep.trials.resumed").inc(float(stats.get("resumed", 0.0)))
    reg.counter("sweep.stages_saved").inc(
        float(stats.get("stages_saved", 0.0))
    )
    reg.gauge("sweep.dedup_ratio").set(float(stats.get("sharing_factor", 1.0)))
    reg.gauge("sweep.warm_groups").set(float(stats.get("warm_groups", 0.0)))


# ---------------------------------------------------------------------------
# Batch-path taps (repro.batch / repro.exec.executor)


def tap_batch_kernel(
    kernel: str, batch: int, bytes_moved: int, seconds: float
) -> None:
    """One trial-major kernel invocation: how much it fused and moved."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("batch.kernels").inc()
    reg.counter(f"batch.kernel.{kernel}.calls").inc()
    reg.histogram(f"batch.kernel.{kernel}.size").observe(float(batch))
    reg.counter(f"batch.kernel.{kernel}.bytes").inc(float(bytes_moved))
    reg.histogram(f"batch.kernel.{kernel}.seconds").observe(seconds)


def tap_batch_executor(decision) -> None:
    """The adaptive executor's scheduling decision for one fan-out."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter(f"batch.executor.{decision.mode}").inc()
    reg.gauge("batch.executor.jobs").set(float(decision.jobs))
    reg.gauge("batch.executor.bytes_per_task").set(
        float(decision.bytes_per_task)
    )


def tap_batch_run(trials: int, groups: int) -> None:
    """One batched sweep pass: trials routed and unique chain groups."""
    reg = _registry.get()
    if reg is None:
        return
    reg.counter("batch.runs").inc()
    reg.counter("batch.trials").inc(float(trials))
    reg.counter("batch.groups").inc(float(groups))
