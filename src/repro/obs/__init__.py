"""Observability layer: tracing, metrics, manifests, regression gate.

Four cooperating modules that make the analog chain *inspectable* and
its physics *guarded*:

* :mod:`repro.obs.trace` - span-based structured tracing.  Every chain
  stage, cache probe and pool event can emit a JSONL record; the CLI's
  ``--trace FILE`` turns it on.  Free (one ContextVar read) when off.
* :mod:`repro.obs.metrics` - counters/gauges/histograms plus taps at
  each chain stage recording signal-quality figures (duty cycle, burst
  rate, shed fraction, emission RMS, SNR, clipping, Y[n] contrast,
  edge count).
* :mod:`repro.obs.manifest` - a per-run manifest (config fingerprint,
  seeds, profile snapshot, timings, metrics, schema tags) attached to
  every :class:`~repro.experiments.common.ExperimentResult` and written
  next to experiment outputs.
* :mod:`repro.obs.baseline` - ``make regress``: fixed-seed scenarios
  whose metrics are recorded into ``baselines/*.json`` and compared
  with per-metric tolerances on every run.

``trace`` and ``metrics`` are imported eagerly (they depend on nothing
above :mod:`numpy`); ``manifest`` and ``baseline`` are loaded lazily via
module ``__getattr__`` because they import :mod:`repro.exec`, which
itself emits trace events - an eager import here would be circular.
"""

from .metrics import (
    MetricsRegistry,
    flatten,
    get_metrics,
    metrics_active,
    metrics_scope,
)
from .trace import (
    Tracer,
    collect_events,
    get_tracer,
    merge_events,
    rng_digest,
    span,
    trace_event,
    tracing_active,
    tracing_scope,
)

_MANIFEST_NAMES = {
    "MANIFEST_SCHEMA",
    "build_manifest",
    "config_fingerprint",
    "manifest_path",
    "read_manifest",
    "write_manifest",
}
_BASELINE_NAMES = {
    "BaselineReport",
    "ScenarioComparison",
    "compare",
    "compare_metrics",
    "record",
    "run_scenario",
}

__all__ = sorted(
    {
        "MetricsRegistry",
        "Tracer",
        "collect_events",
        "flatten",
        "get_metrics",
        "get_tracer",
        "merge_events",
        "metrics_active",
        "metrics_scope",
        "rng_digest",
        "span",
        "trace_event",
        "tracing_active",
        "tracing_scope",
    }
    | _MANIFEST_NAMES
    | _BASELINE_NAMES
)


def __getattr__(name):
    if name in _MANIFEST_NAMES:
        from . import manifest

        return getattr(manifest, name)
    if name in _BASELINE_NAMES:
        from . import baseline

        return getattr(baseline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
