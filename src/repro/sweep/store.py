"""Incremental JSONL result store with resume.

One JSON object per line, appended and flushed per trial, so a killed
sweep loses at most the line being written.  ``load`` skips torn or
foreign lines instead of failing - that *is* the resume-after-kill path:
the re-planned sweep simply re-runs whichever trials have no intact
record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

#: Bump when the record layout changes; stale records are ignored on
#: load (and therefore re-run), never misread.
STORE_SCHEMA = "sweep-result-v1"


class ResultStore:
    """Append-only per-trial records, keyed by trial id.

    With ``path=None`` the store is memory-only (no resume), which lets
    the engine use one code path either way.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, dict] = {}

    def load(self) -> Dict[str, dict]:
        """Read every intact record from disk; returns id -> record."""
        self._records = {}
        if self.path is None or not self.path.exists():
            return {}
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a killed run
                if (
                    not isinstance(record, dict)
                    or record.get("schema") != STORE_SCHEMA
                    or "trial_id" not in record
                ):
                    continue
                self._records[record["trial_id"]] = record
        return dict(self._records)

    def append(self, record: Dict[str, Any]) -> None:
        """Record one finished trial (flushed immediately when on disk)."""
        self._records[record["trial_id"]] = record
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()

    def get(self, trial_id: str) -> Optional[dict]:
        return self._records.get(trial_id)

    def __contains__(self, trial_id: str) -> bool:
        return trial_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records.values())
