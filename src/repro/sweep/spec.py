"""Sweep descriptions: a parameter grid over covert-link trials.

A :class:`TrialSpec` is one trial of a sweep, expressed as plain
JSON-able data (names and dicts, not live objects), so a whole sweep can
be written down, hashed, stored next to its results, and re-planned by a
later process for resume.  :class:`SweepSpec` expands a base trial plus
grid / zip / override axes into the ordered trial list the planner
consumes.

The split mirrors the chain's cache-key layers: everything in a trial
that shapes the *digital* half (machine, profile, seed, payload, rate,
framing flags) determines the activity trace and chain-entry RNG state,
and therefore the whole analog prefix; the scenario picks the capture
key; the receiver never touches the chain at all.  ``digital_prefix_id``
names the first group, which is what lets the planner prepare each
distinct digital prefix exactly once.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..chain import paper_tuned_frequency_hz, tuned_frequency_hz
from ..core.acquisition import AcquisitionConfig
from ..core.decoder import DecoderConfig
from ..core.edges import EdgeConfig
from ..countermeasures import VrmDithering
from ..covert.link import CovertLink
from ..em.environment import (
    Scenario,
    distance_scenario,
    near_field_scenario,
    through_wall_scenario,
)
from ..exec.cache import fingerprint
from ..params import SimProfile, get_profile
from ..systems.laptops import Machine, by_name

#: Bump when TrialSpec semantics change, so stored trial ids can never
#: alias trials with different meanings.
SWEEP_SCHEMA = "sweep-v1"


@dataclass(frozen=True)
class TrialSpec:
    """One trial, as data.

    ``scenario`` / ``dithering`` / ``receiver`` are dicts of constructor
    arguments (see :func:`build_scenario`, :func:`build_dithering`,
    :func:`build_decoder`); ``None`` means the library default.
    ``profile`` is a stock profile name or a dict of
    :class:`~repro.params.SimProfile` fields.

    The payload is not stored: it is re-derived from ``payload_seed`` /
    ``payload_index`` / ``bits`` exactly as the pre-sweep harnesses drew
    it (``payload_index`` sequential draws into the seeded stream), so a
    ported experiment reproduces its historical payloads bit-for-bit.
    """

    machine: str = "Dell Inspiron 15-3537"
    profile: Union[str, Mapping[str, Any]] = "tiny"
    seed: int = 0
    bits: int = 100
    payload_seed: int = 1234
    payload_index: int = 0
    rate_scale: float = 1.0
    allow_c_states: bool = True
    allow_p_states: bool = True
    background: bool = False
    use_ecc: bool = False
    scenario: Optional[Mapping[str, Any]] = None
    dithering: Optional[Mapping[str, Any]] = None
    receiver: Optional[Mapping[str, Any]] = None
    label: str = ""


_TRIAL_FIELDS = tuple(f.name for f in dataclasses.fields(TrialSpec))

#: The fields that determine the digital half of a run - the framed
#: bits, the activity trace, and the RNG state at chain entry.  Trials
#: agreeing on these share their whole analog key chain up to wherever
#: the remaining fields (scenario, dithering, BIOS flags) split them.
_DIGITAL_FIELDS = (
    "machine",
    "profile",
    "seed",
    "bits",
    "payload_seed",
    "payload_index",
    "rate_scale",
    "background",
    "use_ecc",
)


def trial_id(trial: TrialSpec) -> str:
    """Stable identity of a trial's *physics* (everything but the label).

    The label is presentation only, so relabelling a sweep neither
    invalidates stored results nor re-runs anything on resume.  Two
    trials differing only in label are therefore the *same* trial; the
    planner rejects such duplicates.
    """
    payload = dataclasses.asdict(trial)
    payload.pop("label")
    return fingerprint(SWEEP_SCHEMA, "trial", payload)


def digital_prefix_id(trial: TrialSpec) -> str:
    """Identity of the trial's digital prefix (see ``_DIGITAL_FIELDS``)."""
    payload = {name: getattr(trial, name) for name in _DIGITAL_FIELDS}
    return fingerprint(SWEEP_SCHEMA, "digital", payload)


# ---------------------------------------------------------------------------
# Builders: data -> live objects


def resolve_profile(spec: Union[str, Mapping[str, Any], SimProfile]) -> SimProfile:
    if isinstance(spec, SimProfile):
        return spec
    if isinstance(spec, str):
        return get_profile(spec)
    return SimProfile(**dict(spec))


def profile_fields(profile: SimProfile) -> Dict[str, Any]:
    """A profile as TrialSpec data (round-trips any custom profile)."""
    return dataclasses.asdict(profile)


def build_scenario(
    spec: Optional[Mapping[str, Any]], machine: Machine, profile: SimProfile
) -> Optional[Scenario]:
    """A scenario dict -> live :class:`Scenario`, band-tuned for the
    machine/profile exactly as the pre-sweep harnesses tuned it.

    ``{"kind": "near_field" | "distance" | "through_wall", ...}`` with
    the remaining keys passed to the matching builder.
    """
    if spec is None:
        return None
    spec = dict(spec)
    kind = spec.pop("kind")
    band = tuned_frequency_hz(machine, profile)
    physics = paper_tuned_frequency_hz(machine)
    if kind == "near_field":
        return near_field_scenario(band, physics_frequency_hz=physics, **spec)
    if kind == "distance":
        return distance_scenario(
            band_center_hz=band, physics_frequency_hz=physics, **spec
        )
    if kind == "through_wall":
        return through_wall_scenario(band, physics_frequency_hz=physics, **spec)
    raise ValueError(f"unknown scenario kind {kind!r}")


def build_decoder(spec: Optional[Mapping[str, Any]]) -> DecoderConfig:
    """A receiver dict -> :class:`DecoderConfig`.

    Nested ``acquisition`` / ``edges`` dicts become their config
    dataclasses; remaining keys (``batch_bits``, ``skip_fraction``,
    ``auto_window``) pass through.
    """
    if spec is None:
        return DecoderConfig()
    spec = dict(spec)
    kwargs: Dict[str, Any] = {}
    acquisition = spec.pop("acquisition", None)
    if acquisition is not None:
        acq = dict(acquisition)
        if "harmonics" in acq:
            acq["harmonics"] = tuple(acq["harmonics"])
        kwargs["acquisition"] = AcquisitionConfig(**acq)
    edges = spec.pop("edges", None)
    if edges is not None:
        kwargs["edges"] = EdgeConfig(**dict(edges))
    kwargs.update(spec)
    return DecoderConfig(**kwargs)


def build_dithering(spec: Optional[Mapping[str, Any]]) -> Optional[VrmDithering]:
    if spec is None:
        return None
    return VrmDithering(**dict(spec))


def build_link(trial: TrialSpec) -> CovertLink:
    """Materialise the live link a trial describes."""
    machine = by_name(trial.machine)
    profile = resolve_profile(trial.profile)
    return CovertLink(
        machine=machine,
        profile=profile,
        seed=trial.seed,
        scenario=build_scenario(trial.scenario, machine, profile),
        decoder_config=build_decoder(trial.receiver),
        allow_c_states=trial.allow_c_states,
        allow_p_states=trial.allow_p_states,
        background=trial.background,
        use_ecc=trial.use_ecc,
        rate_scale=trial.rate_scale,
        vrm_dithering=build_dithering(trial.dithering),
    )


def trial_payload(trial: TrialSpec) -> np.ndarray:
    """The trial's payload bits.

    Draw ``payload_index + 1`` sequential payloads from the seeded
    stream and keep the last - the exact consumption pattern of
    :func:`repro.covert.evaluate.evaluate_link`, so ported multi-run
    harnesses get their historical payloads back bit-for-bit.
    """
    rng = np.random.default_rng(trial.payload_seed)
    payload = rng.integers(0, 2, size=trial.bits)
    for _ in range(trial.payload_index):
        payload = rng.integers(0, 2, size=trial.bits)
    return payload


# ---------------------------------------------------------------------------
# The grid


def _check_fields(names: Iterable[str], where: str) -> None:
    for name in names:
        if name not in _TRIAL_FIELDS:
            known = ", ".join(_TRIAL_FIELDS)
            raise ValueError(
                f"unknown trial field {name!r} in {where}; known: {known}"
            )


@dataclass
class SweepSpec:
    """A parameter grid over :class:`TrialSpec` fields.

    * ``base`` - fields shared by every trial.
    * ``grid`` - ``{field: [values...]}``; axes combine as a cross
      product, in insertion order (first axis varies slowest).
    * ``zips`` - a list of zip blocks, each ``{field: [values...]}``
      with equal-length lists advancing in lockstep (e.g. a seed that
      tracks a payload index).  Each block is one more product axis,
      appended after the grid axes - so a trailing runs block is the
      fastest-varying axis and per-configuration runs stay contiguous.
    * ``overrides`` - ``[{"where": {field: value}, "set": {field:
      value}}...]`` patches applied to every expanded trial whose fields
      match ``where`` (an override without ``where`` matches all).

    ``trials()`` expands deterministically; the same spec always yields
    the same trials in the same order.
    """

    name: str = "sweep"
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    zips: Sequence[Mapping[str, Sequence[Any]]] = field(default_factory=list)
    overrides: Sequence[Mapping[str, Any]] = field(default_factory=list)

    def trials(self) -> List[TrialSpec]:
        _check_fields(self.base, "base")
        axes: List[List[Dict[str, Any]]] = []
        for name, values in self.grid.items():
            _check_fields([name], "grid")
            values = list(values)
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
            axes.append([{name: value} for value in values])
        for block in self.zips:
            if not block:
                continue
            _check_fields(block, "zip")
            lengths = {len(list(values)) for values in block.values()}
            if len(lengths) != 1:
                raise ValueError(
                    f"zip block fields must share a length, got {sorted(block)}"
                )
            n = lengths.pop()
            axes.append(
                [{name: list(block[name])[i] for name in block} for i in range(n)]
            )
        trials: List[TrialSpec] = []
        for combo in itertools.product(*axes):
            fields_ = dict(self.base)
            for patch in combo:
                fields_.update(patch)
            trial = TrialSpec(**fields_)
            for override in self.overrides:
                where = dict(override.get("where", {}))
                patch = dict(override.get("set", {}))
                _check_fields(where, "override where")
                _check_fields(patch, "override set")
                if all(getattr(trial, k) == v for k, v in where.items()):
                    trial = dataclasses.replace(trial, **patch)
            trials.append(trial)
        return trials

    # -- JSON round trip ---------------------------------------------------

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "zip": [dict(block) for block in self.zips],
            "overrides": [dict(o) for o in self.overrides],
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SweepSpec":
        zips = data.get("zip", data.get("zips", []))
        if isinstance(zips, Mapping):
            zips = [zips]
        return cls(
            name=data.get("name", "sweep"),
            base=dict(data.get("base", {})),
            grid={k: list(v) for k, v in data.get("grid", {}).items()},
            zips=[dict(block) for block in zips],
            overrides=[dict(o) for o in data.get("overrides", [])],
        )
