"""Named sweeps for the CLI (``repro sweep <name>``).

``receiver-grid`` is the canonical cache-topology showcase: eight
receiver configurations over one capture, so the whole analog chain runs
once and eight cheap decoder tails fan out.  The ``table2`` / ``table3``
/ ``fig7`` presets are the paper harnesses' own sweeps (the experiment
modules build them; imported lazily to keep ``repro.sweep`` free of an
import cycle with ``repro.experiments``).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..params import TINY
from .spec import SweepSpec, profile_fields

#: The eight acquisition variants of the receiver-only showcase grid.
RECEIVER_GRID = [
    {"acquisition": {"fft_size": 256, "hop": 24}},
    {"acquisition": {"fft_size": 256, "hop": 32}},
    {"acquisition": {"fft_size": 256, "hop": 48}},
    {"acquisition": {"fft_size": 256, "hop": 64}},
    {"acquisition": {"fft_size": 512, "hop": 48}},
    {"acquisition": {"fft_size": 512, "hop": 64}},
    {"acquisition": {"fft_size": 128, "hop": 16}},
    {"acquisition": {"fft_size": 128, "hop": 32}},
]


def receiver_grid(seed: int = 0, quick: bool = True) -> SweepSpec:
    return SweepSpec(
        name="receiver-grid",
        base={
            "machine": "Dell Inspiron 15-3537",
            "profile": profile_fields(TINY),
            "seed": seed,
            "bits": 120 if quick else 400,
            "payload_seed": seed + 1234,
        },
        zips=[
            {
                "receiver": RECEIVER_GRID,
                "label": [
                    "M={fft_size} hop={hop}".format(**r["acquisition"])
                    for r in RECEIVER_GRID
                ],
            }
        ],
    )


def _table2(seed: int = 0, quick: bool = True) -> SweepSpec:
    from ..experiments.table2_near_field import sweep_spec

    return sweep_spec(TINY, quick, seed)


def _table3(seed: int = 0, quick: bool = True) -> SweepSpec:
    from ..experiments.table3_distance import sweep_spec

    return sweep_spec(TINY, quick, seed)


def _fig7(seed: int = 0, quick: bool = True) -> SweepSpec:
    from ..experiments.fig7_threshold import sweep_spec

    return sweep_spec(TINY, quick, seed)


PRESETS: Dict[str, Callable[..., SweepSpec]] = {
    "receiver-grid": receiver_grid,
    "table2-tiny": _table2,
    "table3-tiny": _table3,
    "fig7-tiny": _fig7,
}


def get_preset(name: str, seed: int = 0, quick: bool = True) -> SweepSpec:
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown sweep preset {name!r}; known: {known}")
    return factory(seed=seed, quick=quick)
