"""Cache-topology-aware sweeps.

The three layers, in the order they run:

* :mod:`repro.sweep.spec` - a sweep as data (:class:`SweepSpec` ->
  :class:`TrialSpec` list);
* :mod:`repro.sweep.plan` - fingerprint every trial's chain-cache key
  chain without running it and fold the chains into a prefix-sharing
  DAG (:class:`SweepPlan`);
* :mod:`repro.sweep.engine` - warm each shared stage node exactly once
  (deepest shared prefix last, so warms always hit their own prefix),
  then fan the per-trial tails over the process pool, with results
  appended to a resumable JSONL store.

Results are bit-identical to running every trial naively - see
DESIGN.md §12.
"""

from .engine import SweepOutcome, pooled_metrics, run_sweep
from .plan import StageNode, SweepPlan, TrialPlan, plan_sweep
from .presets import PRESETS, get_preset, receiver_grid
from .spec import SweepSpec, TrialSpec, build_link, trial_id, trial_payload
from .store import ResultStore

__all__ = [
    "PRESETS",
    "ResultStore",
    "StageNode",
    "SweepOutcome",
    "SweepPlan",
    "SweepSpec",
    "TrialPlan",
    "TrialSpec",
    "build_link",
    "get_preset",
    "plan_sweep",
    "pooled_metrics",
    "receiver_grid",
    "run_sweep",
    "trial_id",
    "trial_payload",
]
