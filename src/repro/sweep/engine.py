"""Cache-topology-aware sweep executor.

Scheduling policy (DESIGN.md §12): after planning, shared stage nodes
are warmed in chain order - every ``vrm`` group first, then ``emission``
groups, then ``capture`` groups - each phase fanned out over the
process pool.  A deeper warm therefore always finds its own prefix
already published, so each shared stage is computed exactly once across
the whole sweep.  The per-trial tails then fan out and hit their
deepest warmed key; the shared capture travels to the workers as a
cache key into the shared disk layer, never as a pickled array.

Correctness bar: a trial's record is bit-identical whether it runs here
(any jobs count, cold or warm cache, resumed or not) or via a plain
``link.run(payload)``.  That falls out of the chain cache's RNG
entry/exit-state discipline - the engine adds scheduling, not new
physics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
import tempfile
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..chain import render_bursts, render_emission
from ..core.align import ChannelMetrics
from ..dsp.detection import histogram_modes
from ..exec.context import execution_scope, get_execution_config
from ..exec.executor import choose_executor
from ..exec.pool import parallel_map, resolve_jobs
from ..obs.metrics import tap_sweep
from ..obs.trace import key_prefix, rng_digest, span, trace_event
from .plan import SweepPlan, TrialPlan, plan_sweep
from .spec import SweepSpec, TrialSpec, build_link, trial_payload
from .store import STORE_SCHEMA, ResultStore


@dataclass
class SweepOutcome:
    """Everything one :func:`run_sweep` call produced."""

    plan: SweepPlan
    records: List[dict]  # plan order; resumed records included
    executed: int
    resumed: int
    naive: bool
    elapsed_s: float
    stats: Dict[str, float] = field(default_factory=dict)

    def record_for(self, trial_id: str) -> Optional[dict]:
        for record in self.records:
            if record["trial_id"] == trial_id:
                return record
        return None


def pooled_metrics(records: List[dict]) -> ChannelMetrics:
    """Pool per-trial alignment counts (integer sums - exact)."""
    pooled = ChannelMetrics(0, 0, 0, 0, 0)
    for record in records:
        r = record["result"]
        pooled = pooled.combined(
            ChannelMetrics(
                bit_errors=r["bit_errors"],
                insertions=r["insertions"],
                deletions=r["deletions"],
                transmitted=r["transmitted"],
                received=r["received"],
            )
        )
    return pooled


def _bits_digest(bits: np.ndarray) -> str:
    data = np.ascontiguousarray(np.asarray(bits), dtype=np.uint8)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def _execute_trial(tp: TrialPlan) -> dict:
    """One full trial; module-level so it crosses the process boundary.

    With a warmed cache the analog stages all hit, so this is just the
    digital prepare plus the receiver tail.
    """
    trial = tp.trial
    link = build_link(trial)
    started = time.perf_counter()
    prepared = link.prepare(trial_payload(trial))
    with span(
        "sweep.trial",
        {"trial": key_prefix(tp.trial_id), "label": trial.label},
    ):
        result = link.run_prepared(prepared)
    decode = result.decode
    m = result.metrics
    threshold = (
        float(decode.thresholds[0]) if decode.thresholds else float("nan")
    )
    lo_mode = hi_mode = float("nan")
    if decode.powers.size:
        _, _, modes = histogram_modes(decode.powers)
        lo_mode = float(min(modes[:2])) if modes.size >= 2 else float(modes[0])
        hi_mode = float(max(modes[:2])) if modes.size >= 2 else float(modes[0])
    return {
        "schema": STORE_SCHEMA,
        "trial_id": tp.trial_id,
        "label": trial.label,
        "trial": dataclasses.asdict(trial),
        "keys": {stage: key_prefix(key) for stage, key in tp.keys.stages()},
        "result": {
            "bit_errors": int(m.bit_errors),
            "insertions": int(m.insertions),
            "deletions": int(m.deletions),
            "transmitted": int(m.transmitted),
            "received": int(m.received),
            "ber": float(m.ber),
            "ip": float(m.insertion_probability),
            "dp": float(m.deletion_probability),
            "tr_bps": float(result.transmission_rate_bps),
            "duration_s": float(result.duration_s),
            "n_bits": int(decode.bits.size),
            "bits_sha": _bits_digest(decode.bits),
            "tx_sha": _bits_digest(result.tx_bits),
            "rng": rng_digest(prepared.rng),
            "threshold": threshold,
            "power_modes": [lo_mode, hi_mode],
        },
        "elapsed_s": round(time.perf_counter() - started, 6),
    }


def _warm_node(task: Tuple[TrialPlan, str, str, int]) -> dict:
    """Compute one shared stage node (through its representative trial).

    Runs the representative's chain *down to* the node's stage via the
    stage-wise entry points, publishing every prefix key on the way; the
    value lands in the (shared) cache, never in the return payload.
    """
    tp, stage_name, key, fan_out = task
    trial = tp.trial
    link = build_link(trial)
    prepared = link.prepare(trial_payload(trial))
    started = time.perf_counter()
    with span(
        "sweep.group",
        {"stage": stage_name, "key": key_prefix(key), "fan_out": fan_out},
    ):
        if stage_name == "vrm":
            # The *raw* train is the shared value: trials diverge at the
            # dither stage, which each tail applies itself.
            render_bursts(
                link.machine,
                prepared.activity,
                link.profile,
                prepared.rng,
                allow_c_states=link.allow_c_states,
                allow_p_states=link.allow_p_states,
                vrm_dithering=None,
            )
        elif stage_name == "emission":
            render_emission(
                link.machine,
                prepared.activity,
                link.profile,
                prepared.rng,
                allow_c_states=link.allow_c_states,
                allow_p_states=link.allow_p_states,
                vrm_dithering=link.vrm_dithering,
            )
        elif stage_name == "capture":
            link.render_capture(prepared.activity, prepared.rng)
        else:  # pragma: no cover - planner only emits WARMABLE stages
            raise ValueError(f"cannot warm stage {stage_name!r}")
    return {
        "stage": stage_name,
        "key": key_prefix(key),
        "elapsed_s": round(time.perf_counter() - started, 6),
    }


def run_sweep(
    spec: Union[SweepSpec, List[TrialSpec]],
    *,
    plan: Optional[SweepPlan] = None,
    results_path: Optional[os.PathLike] = None,
    resume: bool = True,
    naive: bool = False,
    jobs: Optional[int] = None,
    batch: str = "auto",
) -> SweepOutcome:
    """Plan and execute a sweep.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` (or explicit trial list); ignored when a
        pre-computed ``plan`` is supplied.
    results_path:
        Optional JSONL store.  With ``resume`` (the default), trials
        whose intact records are already on disk are skipped entirely -
        they never reach the pool, and their shared prefixes are not
        warmed unless a pending trial still needs them.
    naive:
        Run every trial independently with the chain cache disabled -
        the reference path the engine must match bit-for-bit (and the
        baseline the speedup benchmarks compare against).
    jobs:
        Worker count; ``None`` reads the active execution config.
    batch:
        ``"auto"`` (default) routes pending trials through the
        trial-major batched runner (:mod:`repro.batch`) whenever the
        adaptive executor decides one process should do all the work
        (single CPU, or fork cost dwarfing compute); multi-CPU hosts
        keep the process-pool scalar path.  ``"on"`` forces the batched
        runner, ``"off"`` forces the scalar path.  Records are
        bit-identical either way.
    """
    started = time.perf_counter()
    if batch not in ("auto", "on", "off"):
        raise ValueError(f"batch must be 'auto', 'on' or 'off', got {batch!r}")
    if plan is None:
        plan = plan_sweep(spec)
    store = ResultStore(results_path)
    existing = store.load() if resume else {}
    resumed = {
        tp.trial_id: existing[tp.trial_id]
        for tp in plan.trials
        if tp.trial_id in existing
    }
    pending = [tp for tp in plan.trials if tp.trial_id not in resumed]
    config = get_execution_config()
    engine = not naive and config.cache_enabled
    warm_groups = 0
    use_batch = batch == "on"
    if batch == "auto" and engine and pending:
        decision = choose_executor(
            len(pending), jobs=resolve_jobs(jobs), batchable=True
        )
        use_batch = decision.mode == "batched-serial"
    if use_batch and any(tp.keys.capture is None for tp in pending):
        # Emission-only trials have no capture node to batch.
        use_batch = False
    with ExitStack() as stack:
        if naive:
            # Reference semantics: every trial owns its full chain.
            stack.enter_context(execution_scope(cache_enabled=False))
            use_batch = False
        elif use_batch:
            # One process, trial-major: the batched runner warms and
            # fans out internally (same events, same records).  Lazy
            # import: repro.batch pulls in this package's siblings.
            from ..batch.runner import run_trials_batched

            new_records, warm_groups = run_trials_batched(plan, pending)
        elif not engine:
            stack.enter_context(execution_scope(cache_enabled=False))
        else:
            n_jobs = min(resolve_jobs(jobs), max(len(pending), 1))
            if n_jobs > 1 and config.cache_dir is None:
                # Workers cannot share a memory-only cache, and a shared
                # capture must travel by key, not by pickled value - so
                # multi-process sweeps get a scratch disk layer.
                scratch = tempfile.mkdtemp(prefix="repro-sweep-cache-")
                stack.callback(shutil.rmtree, scratch, ignore_errors=True)
                stack.enter_context(execution_scope(cache_dir=scratch))
            pending_ids = {tp.trial_id for tp in pending}
            by_id = {tp.trial_id: tp for tp in plan.trials}
            for stage_name in ("vrm", "emission", "capture"):
                nodes = [
                    node
                    for node in plan.warm_nodes()
                    if node.stage == stage_name
                    and any(t in pending_ids for t in node.trial_ids)
                ]
                if not nodes:
                    continue
                warm_groups += len(nodes)
                trace_event(
                    "sweep.warm", stage=stage_name, groups=len(nodes)
                )
                parallel_map(
                    _warm_node,
                    [
                        (
                            by_id[node.representative],
                            node.stage,
                            node.key,
                            len(node.children),
                        )
                        for node in nodes
                    ],
                    jobs=jobs,
                )
        if not use_batch:
            new_records = parallel_map(_execute_trial, pending, jobs=jobs)
    for record in new_records:
        store.append(record)
    elapsed = time.perf_counter() - started
    records = [
        resumed.get(tp.trial_id) or store.get(tp.trial_id)
        for tp in plan.trials
    ]
    stats = {
        "trials": float(plan.n_trials),
        "executed": float(len(pending)),
        "resumed": float(len(resumed)),
        "naive_stage_runs": float(plan.naive_stage_runs),
        "planned_stage_runs": float(plan.planned_stage_runs),
        "stages_saved": float(plan.stages_saved),
        "sharing_factor": plan.sharing_factor,
        "warm_groups": float(warm_groups),
        "batch": 1.0 if use_batch else 0.0,
        "elapsed_s": elapsed,
    }
    tap_sweep(stats)
    trace_event(
        "sweep.done",
        sweep=plan.name,
        naive=bool(naive),
        **{k: round(v, 4) for k, v in stats.items()},
    )
    return SweepOutcome(
        plan=plan,
        records=records,
        executed=len(pending),
        resumed=len(resumed),
        naive=bool(naive),
        elapsed_s=elapsed,
        stats=stats,
    )
