"""Key-DAG planner: group a sweep's trials by shared chain prefix.

The chain cache names every stage of a trial by a content-addressed key
(:func:`repro.chain.capture_chain_keys`), and two trials that agree on a
prefix of their key chains would compute byte-identical intermediates.
The planner exploits that *before* anything runs: it fingerprints every
trial's chain (paying only for the cheap digital half, once per distinct
digital prefix), folds the chains into a DAG of stage nodes, and marks
the shared fan-in points the executor should warm exactly once.

Only ``vrm`` / ``emission`` / ``capture`` nodes are warm candidates:
``pmu`` and the absent-dither case have exactly one child by
construction (their key is a pure hash of the parent's), so warming the
child warms them for free; a ``dither`` node likewise feeds exactly one
emission.  A node is worth warming only when it actually fans out
(``len(children) > 1``) - otherwise its sole consumer computes it
in-line at the same cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..chain import ChainKeys, capture_chain_keys
from ..exec.cache import get_chain_cache
from ..obs.trace import key_prefix, span
from .spec import (
    SweepSpec,
    TrialSpec,
    build_link,
    digital_prefix_id,
    trial_id,
    trial_payload,
)

#: Chain order of stage nodes; ``capture`` covers propagation + sdr.
STAGE_ORDER = ("pmu", "vrm", "dither", "emission", "capture")

#: Stages with a stage-wise warm entry point (see module docstring).
WARMABLE = ("vrm", "emission", "capture")


@dataclass(frozen=True)
class TrialPlan:
    """One trial with its identities and chain keys resolved."""

    trial: TrialSpec
    trial_id: str
    digital_id: str
    keys: ChainKeys


@dataclass(frozen=True)
class StageNode:
    """One node of the sweep's key DAG.

    ``children`` are the next-stage keys reached from this node - or,
    for the deepest stage, the ids of the trials that consume it.
    ``representative`` is a trial whose chain passes through the node;
    warming replays that trial's chain down to this stage (any member
    yields the same bytes - that is what sharing the key means).
    """

    stage: str
    key: str
    trial_ids: Tuple[str, ...]
    children: Tuple[str, ...]
    representative: str

    @property
    def shared(self) -> bool:
        return len(self.children) > 1


@dataclass
class SweepPlan:
    """The inspectable output of :func:`plan_sweep`."""

    name: str
    trials: List[TrialPlan]
    nodes: List[StageNode]

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def naive_stage_runs(self) -> int:
        """Stage executions a trial-at-a-time cold run would pay."""
        return sum(len(tp.keys.stages()) for tp in self.trials)

    @property
    def planned_stage_runs(self) -> int:
        """Distinct stage nodes - what a cold engine run pays."""
        return len(self.nodes)

    @property
    def stages_saved(self) -> int:
        return self.naive_stage_runs - self.planned_stage_runs

    @property
    def sharing_factor(self) -> float:
        """Naive-to-planned stage-run ratio (1.0 = nothing shared)."""
        if self.planned_stage_runs == 0:
            return 1.0
        return self.naive_stage_runs / self.planned_stage_runs

    def warm_nodes(self) -> List[StageNode]:
        """The nodes the executor warms, in chain order (shallow first,
        so a deeper warm always finds its own prefix already cached)."""
        return [n for n in self.nodes if n.stage in WARMABLE and n.shared]

    def trial_groups(self) -> List[Tuple[StageNode, List[TrialPlan]]]:
        """Trials grouped by the deepest chain node they share, in node
        order.  Unlike the warm/fan-out accounting (which only cares
        about nodes with more than one consumer), every group is
        reported - a grid that expands to a single trial is one
        singleton group, not nothing."""
        by_key: Dict[Tuple[str, str], List[TrialPlan]] = {}
        for tp in self.trials:
            by_key.setdefault(tp.keys.stages()[-1], []).append(tp)
        groups: List[Tuple[StageNode, List[TrialPlan]]] = []
        for node in self.nodes:
            members = by_key.get((node.stage, node.key))
            if members is not None:
                groups.append((node, members))
        return groups

    def predicted_hits(self) -> Dict[str, int]:
        """How many nodes the *current* cache already holds, per layer."""
        cache = get_chain_cache()
        hits: Dict[str, int] = {"memory": 0, "disk": 0}
        if cache is None:
            return hits
        for node in self.nodes:
            layer = cache.probe(node.key)
            if layer is not None:
                hits[layer] += 1
        return hits

    def describe(self) -> str:
        """Human-readable plan summary for ``repro sweep --plan``."""
        lines = [
            f"sweep {self.name!r}: {self.n_trials} trials, "
            f"{self.naive_stage_runs} naive stage runs -> "
            f"{self.planned_stage_runs} planned "
            f"({self.sharing_factor:.2f}x sharing, "
            f"{self.stages_saved} saved)"
        ]
        hits = self.predicted_hits()
        if any(hits.values()):
            lines.append(
                f"  cache already holds {hits['memory']} node(s) in memory, "
                f"{hits['disk']} on disk"
            )
        for node in self.nodes:
            marks = []
            if node.shared and node.stage in WARMABLE:
                marks.append("warm")
            mark = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"  {node.stage:<10} {key_prefix(node.key)}  "
                f"trials={len(node.trial_ids)} fan-out={len(node.children)}"
                f"{mark}"
            )
        for node, members in self.trial_groups():
            labels = ", ".join(
                tp.trial.label or tp.trial_id[:12] for tp in members
            )
            lines.append(
                f"  group {node.stage} {key_prefix(node.key)}: "
                f"{len(members)} trial(s): {labels}"
            )
        return "\n".join(lines)


def plan_sweep(
    spec: Union[SweepSpec, Sequence[TrialSpec]],
    name: Optional[str] = None,
) -> SweepPlan:
    """Fingerprint every trial's key chain and fold them into a DAG.

    Nothing from the analog chain runs here: per distinct digital
    prefix, the trial's cheap digital half is prepared once
    (:meth:`~repro.covert.link.CovertLink.prepare`) to obtain the
    activity trace and chain-entry RNG state, from which every stage key
    follows by hashing alone.
    """
    if isinstance(spec, SweepSpec):
        trials = spec.trials()
        name = name if name is not None else spec.name
    else:
        trials = list(spec)
        name = name if name is not None else "sweep"
    info: Dict[str, object] = {}
    with span("sweep.plan", {"sweep": name}, lazy=lambda: dict(info)):
        prepared: Dict[str, dict] = {}
        plans: List[TrialPlan] = []
        seen: Dict[str, TrialSpec] = {}
        for trial in trials:
            tid = trial_id(trial)
            if tid in seen:
                raise ValueError(
                    f"sweep {name!r} expands to duplicate trials "
                    f"({trial} vs {seen[tid]}); labels do not "
                    f"distinguish trials - their physics must differ"
                )
            seen[tid] = trial
            link = build_link(trial)
            did = digital_prefix_id(trial)
            if did not in prepared:
                prep = link.prepare(trial_payload(trial))
                prepared[did] = {
                    "activity": prep.activity,
                    "rng_state": prep.rng.bit_generator.state,
                }
            digital = prepared[did]
            rng = np.random.default_rng(0)
            rng.bit_generator.state = digital["rng_state"]
            keys = capture_chain_keys(
                link.machine,
                digital["activity"],
                link.scenario,
                link.profile,
                rng,
                allow_c_states=link.allow_c_states,
                allow_p_states=link.allow_p_states,
                vrm_dithering=link.vrm_dithering,
            )
            plans.append(TrialPlan(trial, tid, did, keys))
        nodes = _build_nodes(plans)
        plan = SweepPlan(name=name, trials=plans, nodes=nodes)
        info.update(
            trials=plan.n_trials,
            nodes=plan.planned_stage_runs,
            naive_stage_runs=plan.naive_stage_runs,
            stages_saved=plan.stages_saved,
            sharing_factor=round(plan.sharing_factor, 3),
        )
    return plan


def _build_nodes(plans: Iterable[TrialPlan]) -> List[StageNode]:
    """Fold trial key chains into unique stage nodes with fan-out."""
    table: "Dict[Tuple[str, str], dict]" = {}
    for tp in plans:
        stages = tp.keys.stages()
        for i, (stage_name, key) in enumerate(stages):
            entry = table.setdefault(
                (stage_name, key),
                {"trials": [], "children": {}, "rep": tp.trial_id},
            )
            entry["trials"].append(tp.trial_id)
            # Leaf nodes fan out into the trials that consume them.
            child = stages[i + 1][1] if i + 1 < len(stages) else tp.trial_id
            entry["children"][child] = None  # ordered set
    ordered = sorted(
        table.items(), key=lambda item: STAGE_ORDER.index(item[0][0])
    )
    return [
        StageNode(
            stage=stage_name,
            key=key,
            trial_ids=tuple(entry["trials"]),
            children=tuple(entry["children"]),
            representative=entry["rep"],
        )
        for (stage_name, key), entry in ordered
    ]
