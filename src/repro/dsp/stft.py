"""Short-time Fourier transform utilities.

The receiver's acquisition step (paper Eq. 1) is a sliding FFT over the
IQ stream; the keylogging detector (Section V-C) uses non-overlapping
5 ms windows.  Both are served by :func:`stft`, which frames with an
arbitrary hop.  Frames are materialised with stride tricks, so hop << M
is memory-cheap until the FFT output itself.

Framing is defined once, by :func:`frame_count` / :func:`frame_times`:
frame ``i`` covers samples ``[i * hop, i * hop + fft_size)`` and a
trailing partial window (fewer than ``fft_size`` samples past the last
complete frame) is dropped.  The batch path here and the chunked path in
:mod:`repro.stream.demod` both build on these helpers, so a capture
split at any chunk boundary frames identically to the monolithic call -
including the awkward tail lengths the regression tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .windows import get_window


@dataclass
class Spectrogram:
    """STFT magnitudes and their axes.

    Attributes
    ----------
    magnitudes:
        Array of shape ``(n_frames, n_bins)`` of spectral magnitudes.
    times:
        Centre time of each frame, in seconds.
    frequencies:
        Frequency of each bin, in Hz.  For complex input these span
        ``[-fs/2, fs/2)`` (fftshifted); for real input ``[0, fs/2]``.
    hop:
        Hop size in samples.
    fft_size:
        FFT length M.
    sample_rate:
        Input sample rate.
    """

    magnitudes: np.ndarray
    times: np.ndarray
    frequencies: np.ndarray
    hop: int
    fft_size: int
    sample_rate: float

    @property
    def frame_rate(self) -> float:
        """Frames per second of the time axis."""
        return self.sample_rate / self.hop

    def band_indices(self, low_hz: float, high_hz: float) -> np.ndarray:
        """Bin indices whose frequency lies in ``[low_hz, high_hz]``."""
        return np.nonzero(
            (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        )[0]

    def nearest_bin(self, frequency_hz: float) -> int:
        """Index of the bin closest to ``frequency_hz``."""
        return int(np.argmin(np.abs(self.frequencies - frequency_hz)))

    def band_energy(self, bins: np.ndarray) -> np.ndarray:
        """Sum of magnitudes over the given bins, per frame (Eq. 1 form)."""
        return self.magnitudes[:, bins].sum(axis=1)


def frame_count(n_samples: int, fft_size: int, hop: int) -> int:
    """Number of complete STFT frames in ``n_samples``.

    Frame ``i`` starts at ``i * hop`` and needs ``fft_size`` samples, so
    the count is ``floor((n - fft_size) / hop) + 1`` (zero when the
    input is shorter than one window).  This is the single definition of
    the capture-tail behaviour: samples past the last complete frame are
    dropped, never padded into a partial frame.
    """
    if fft_size < 2:
        raise ValueError("fft_size must be >= 2")
    if hop < 1:
        raise ValueError("hop must be >= 1")
    if n_samples < fft_size:
        return 0
    return (n_samples - fft_size) // hop + 1


def frame_times(
    first_frame: int, n_frames: int, fft_size: int, hop: int, sample_rate: float
) -> np.ndarray:
    """Centre times of frames ``first_frame .. first_frame + n_frames``.

    Kept as one function so the chunked path stamps exactly the same
    float values as the batch path for the same global frame index.
    """
    indices = np.arange(first_frame, first_frame + n_frames)
    return (indices * hop + fft_size / 2) / sample_rate


def stft(
    samples: np.ndarray,
    sample_rate: float,
    fft_size: int = 1024,
    hop: int = 32,
    window: str = "hann",
) -> Spectrogram:
    """Compute an STFT magnitude spectrogram.

    Complex input produces a two-sided (fftshifted) frequency axis, which
    is what the SDR IQ path needs; real input produces a one-sided axis.
    """
    samples = np.asarray(samples)
    n_frames = frame_count(samples.size, fft_size, hop)
    if n_frames == 0:
        raise ValueError(
            f"need at least fft_size={fft_size} samples, got {samples.size}"
        )
    win = get_window(window, fft_size)
    frames = sliding_window_view(samples, fft_size)[::hop][:n_frames]
    complex_input = np.iscomplexobj(samples)
    if complex_input:
        spectra = np.fft.fft(frames * win, axis=1)
        spectra = np.fft.fftshift(spectra, axes=1)
        freqs = np.fft.fftshift(np.fft.fftfreq(fft_size, d=1.0 / sample_rate))
    else:
        spectra = np.fft.rfft(frames * win, axis=1)
        freqs = np.fft.rfftfreq(fft_size, d=1.0 / sample_rate)
    mags = np.abs(spectra)
    times = frame_times(0, n_frames, fft_size, hop, sample_rate)
    return Spectrogram(
        magnitudes=mags,
        times=times,
        frequencies=freqs,
        hop=hop,
        fft_size=fft_size,
        sample_rate=sample_rate,
    )
