"""Peak and level detection helpers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import signal as sps


def local_maxima(
    x: np.ndarray,
    min_distance: int = 1,
    min_height: Optional[float] = None,
    min_prominence: Optional[float] = None,
) -> np.ndarray:
    """Indices of local maxima, thinned by distance/height/prominence."""
    if min_distance < 1:
        raise ValueError("min_distance must be >= 1")
    peaks, _ = sps.find_peaks(
        x,
        distance=min_distance,
        height=min_height,
        prominence=min_prominence,
    )
    return peaks


def histogram_modes(
    values: np.ndarray, bins: int = 64, smooth: int = 5
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smoothed histogram and its mode locations.

    Returns ``(centers, counts, mode_centers)`` where ``mode_centers``
    are the bin-centre values at the local maxima of the smoothed
    histogram, sorted by descending count.  Used by the paper's
    threshold-selection step (Figure 7), which places the decision
    threshold midway between the two dominant modes of the per-bit
    average-power distribution.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot analyse an empty sample")
    counts, edges = np.histogram(values, bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2
    if smooth > 1:
        kernel = np.ones(smooth) / smooth
        smoothed = np.convolve(counts.astype(float), kernel, mode="same")
    else:
        smoothed = counts.astype(float)
    # Zero-pad so modes sitting in the first/last bin (common when one
    # lobe of a bimodal distribution is very tight) still count as peaks;
    # find_peaks never reports boundary samples otherwise.
    padded = np.concatenate([[0.0], smoothed, [0.0]])
    peaks, props = sps.find_peaks(padded, height=smoothed.max() * 0.02)
    peaks = peaks - 1
    if peaks.size == 0:
        peaks = np.array([int(np.argmax(smoothed))])
        heights = smoothed[peaks]
    else:
        heights = props["peak_heights"]
    order = np.argsort(heights)[::-1]
    return centers, smoothed, centers[peaks[order]]


def bimodal_threshold(values: np.ndarray, bins: int = 64) -> float:
    """Decision threshold between the two dominant modes of ``values``.

    Implements the paper's Figure 7 selection: find the two tallest
    separated peaks of the distribution and return their midpoint.  If
    the distribution is effectively unimodal, falls back to the midpoint
    between the 10th and 90th percentile, which degrades gracefully for
    all-zeros or all-ones batches.
    """
    values = np.asarray(values, dtype=float)
    _, _, modes = histogram_modes(values, bins=bins)
    if modes.size >= 2:
        spread = values.max() - values.min()
        # Take the tallest mode, then the tallest mode at least 10% of
        # the range away from it, so histogram ripple on one lobe does
        # not masquerade as the second lobe.
        first = modes[0]
        for candidate in modes[1:]:
            if abs(candidate - first) > 0.1 * spread:
                return float((first + candidate) / 2)
    lo, hi = np.percentile(values, [10, 90])
    return float((lo + hi) / 2)
