"""Signal-processing substrate: STFT, filters, detection, resampling."""

from .detection import bimodal_threshold, histogram_modes, local_maxima
from .filters import edge_kernel, lowpass, moving_average
from .render import ascii_lane, ascii_spectrogram, sparkline
from .resample import block_reduce, linear_resample
from .stft import Spectrogram, frame_count, frame_times, stft
from .windows import get_window, hann, rectangular

__all__ = [
    "Spectrogram",
    "ascii_lane",
    "ascii_spectrogram",
    "bimodal_threshold",
    "block_reduce",
    "edge_kernel",
    "frame_count",
    "frame_times",
    "get_window",
    "hann",
    "histogram_modes",
    "linear_resample",
    "local_maxima",
    "lowpass",
    "moving_average",
    "rectangular",
    "sparkline",
    "stft",
]
