"""Analysis windows for spectral processing."""

from __future__ import annotations

import numpy as np


def hann(length: int) -> np.ndarray:
    """Periodic Hann window (suitable for overlapping STFT frames)."""
    if length < 1:
        raise ValueError("window length must be >= 1")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2 * np.pi * n / length)


def rectangular(length: int) -> np.ndarray:
    """Rectangular window (what a bare sliding FFT uses)."""
    if length < 1:
        raise ValueError("window length must be >= 1")
    return np.ones(length)


def get_window(name: str, length: int) -> np.ndarray:
    """Window lookup by name ('hann' or 'rect')."""
    if name == "hann":
        return hann(length)
    if name in ("rect", "rectangular", "boxcar"):
        return rectangular(length)
    raise ValueError(f"unknown window {name!r}")
