"""Rate conversion helpers."""

from __future__ import annotations

import numpy as np


def linear_resample(x: np.ndarray, n_out: int) -> np.ndarray:
    """Resample a real sequence to ``n_out`` points by linear interpolation.

    Used for display/report paths where exact band-limited resampling is
    unnecessary.
    """
    if n_out < 1:
        raise ValueError("n_out must be >= 1")
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("cannot resample an empty sequence")
    if x.size == 1:
        return np.full(n_out, x[0])
    src = np.linspace(0.0, 1.0, x.size)
    dst = np.linspace(0.0, 1.0, n_out)
    return np.interp(dst, src, x)


def block_reduce(x: np.ndarray, block: int, reduce=np.mean) -> np.ndarray:
    """Reduce consecutive blocks of ``block`` samples with ``reduce``.

    Trailing samples that do not fill a block are dropped.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    x = np.asarray(x)
    n = (x.size // block) * block
    if n == 0:
        return np.empty(0, dtype=float)
    return reduce(x[:n].reshape(-1, block), axis=1)
