"""Small filtering helpers used across the receiver."""

from __future__ import annotations

import numpy as np
from scipy import signal as sps


def moving_average(x: np.ndarray, length: int) -> np.ndarray:
    """Centered moving average with edge-shrinking normalisation."""
    if length < 1:
        raise ValueError("length must be >= 1")
    if length == 1:
        return np.asarray(x, dtype=float).copy()
    kernel = np.ones(length)
    num = np.convolve(x, kernel, mode="same")
    den = np.convolve(np.ones(len(x)), kernel, mode="same")
    return num / den


def lowpass(x: np.ndarray, cutoff_rel: float, numtaps: int = 65) -> np.ndarray:
    """Zero-delay FIR low-pass; ``cutoff_rel`` is relative to Nyquist."""
    if not 0.0 < cutoff_rel < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    taps = sps.firwin(numtaps, cutoff_rel)
    return sps.fftconvolve(x, taps, mode="same")


def edge_kernel(length: int) -> np.ndarray:
    """The paper's derivative-mimicking kernel (Section IV-B2).

    A vector of length ``l_d`` whose first half is +1 and second half is
    -1; convolving it with the envelope peaks at rising edges.  Returned
    so that convolution output is positive on *rising* edges.
    """
    if length < 2:
        raise ValueError("edge kernel needs length >= 2")
    half = length // 2
    kernel = np.empty(2 * half)
    kernel[:half] = 1.0
    kernel[half:] = -1.0
    return kernel
