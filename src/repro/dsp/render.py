"""Terminal rendering of signals and spectrograms.

The paper communicates its core observations through spectrograms
(Figures 2 and 11).  These helpers render the same views as ASCII so
experiments and examples can show them in a terminal and in logged
reports, without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from .stft import Spectrogram

#: Intensity ramp used for all renderings (dark -> bright).
LEVELS = " .:-=+*#%@"


def ascii_lane(
    values: np.ndarray,
    width: int = 72,
    normalise="max",
) -> str:
    """One signal lane as a width-limited intensity string.

    ``normalise``: ``"max"`` (default) scales by the lane maximum so a
    constant-high lane renders as a solid wall; ``"minmax"`` stretches
    to full range (amplifies texture); ``False`` expects values already
    in [0, 1].
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return " " * width
    blocks = np.array_split(values, width)
    levels = np.array([b.mean() if b.size else 0.0 for b in blocks])
    if normalise == "minmax" or normalise is True:
        lo, hi = levels.min(), levels.max()
        levels = (levels - lo) / max(hi - lo, 1e-12)
    elif normalise == "max":
        levels = levels / max(levels.max(), 1e-12)
    levels = np.clip(levels, 0.0, 1.0)
    return "".join(LEVELS[int(v * (len(LEVELS) - 1))] for v in levels)


def ascii_spectrogram(
    spec: Spectrogram,
    low_hz: float,
    high_hz: float,
    width: int = 72,
    height: int = 12,
    db_floor: float = -50.0,
) -> str:
    """A frequency-band spectrogram as multi-line ASCII art.

    Rows are frequency (highest on top, like the paper's figures),
    columns are time; intensity is log-magnitude clipped at
    ``db_floor`` below the peak.
    """
    bins = spec.band_indices(low_hz, high_hz)
    if bins.size == 0:
        raise ValueError("no spectrogram bins in the requested band")
    mags = spec.magnitudes[:, bins]
    with np.errstate(divide="ignore"):
        db = 20.0 * np.log10(np.maximum(mags, 1e-20))
    db -= db.max()
    db = np.clip(db, db_floor, 0.0)
    intensity = (db - db_floor) / (-db_floor)
    # Reduce to the requested raster.
    n_rows = min(height, bins.size)
    rows = np.array_split(np.arange(bins.size), n_rows)
    lines = []
    for row_bins in rows[::-1]:  # highest frequency on top
        lane = intensity[:, row_bins].mean(axis=1)
        lines.append(ascii_lane(lane, width=width, normalise=False))
    freqs = spec.frequencies[bins]
    header = f"{freqs.max():,.0f} Hz"
    footer = f"{freqs.min():,.0f} Hz"
    return "\n".join([header] + [f"|{line}|" for line in lines] + [footer])


def sparkline(values: np.ndarray, width: int = 40) -> str:
    """A compact single-line rendering (for table cells/notes)."""
    return ascii_lane(values, width=width)
