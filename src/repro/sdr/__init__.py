"""Software-defined radio substrate."""

from .frontend import decimate, mix_to_baseband
from .rtlsdr import RtlSdrV3

__all__ = ["RtlSdrV3", "decimate", "mix_to_baseband"]
