"""RTL-SDR v3 receiver model.

The paper's $25 receiver: 8-bit IQ samples at up to 2.4 MS/s with an
imperfect crystal.  The model applies the front-end mixing/decimation,
receiver thermal noise, an automatic gain stage, and 8-bit quantisation.
Quantisation matters: at long range the signal occupies few codes, which
contributes to the BER floor in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..types import IQCapture
from .frontend import decimate, mix_to_baseband


@dataclass
class RtlSdrV3:
    """An RTL-SDR v3 dongle.

    Attributes
    ----------
    sample_rate:
        Output complex sample rate (paper: 2.4 MS/s, the device maximum).
    bits:
        ADC resolution (8 for the RTL2832U).
    ppm_error:
        Crystal frequency error in parts-per-million.
    noise_floor:
        RMS of receiver-added noise, in antenna-voltage units, referred
        to the input.
    agc_target:
        Full-scale fraction the AGC drives the signal RMS toward.
    """

    sample_rate: float
    bits: int = 8
    ppm_error: float = 15.0
    noise_floor: float = 5e-5
    agc_target: float = 0.2

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        if not 2 <= self.bits <= 16:
            raise ValueError("ADC resolution out of range")

    def capture(
        self,
        antenna_voltage: np.ndarray,
        input_rate: float,
        center_frequency: float,
        rng: Optional[np.random.Generator] = None,
    ) -> IQCapture:
        """Digitise an antenna waveform into complex baseband IQ.

        Parameters
        ----------
        antenna_voltage:
            Real waveform at ``input_rate`` samples/s.
        input_rate:
            Rate of the incoming waveform; must be an integer multiple
            of the device sample rate.
        center_frequency:
            Tuned RF frequency in Hz.
        """
        rng = rng if rng is not None else np.random.default_rng(5)
        factor = input_rate / self.sample_rate
        if abs(factor - round(factor)) > 1e-6:
            raise ValueError(
                f"input rate {input_rate} is not an integer multiple of "
                f"device rate {self.sample_rate}"
            )
        factor = int(round(factor))
        noisy = antenna_voltage + self.noise_floor * rng.standard_normal(
            antenna_voltage.size
        )
        offset_hz = center_frequency * self.ppm_error * 1e-6
        baseband = mix_to_baseband(
            noisy, input_rate, center_frequency, oscillator_offset_hz=offset_hz
        )
        baseband = decimate(baseband, factor)
        quantised = self._agc_and_quantise(baseband, rng)
        return IQCapture(
            samples=quantised.astype(np.complex64),
            sample_rate=self.sample_rate,
            center_frequency=center_frequency,
        )

    def _agc_and_quantise(
        self, baseband: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Scale into the ADC range and round to the code grid."""
        rms = float(np.sqrt(np.mean(np.abs(baseband) ** 2)))
        if rms <= 0:
            rms = 1.0
        scale = self.agc_target / rms
        levels = 2 ** (self.bits - 1)
        i = np.clip(np.round(baseband.real * scale * levels), -levels, levels - 1)
        q = np.clip(np.round(baseband.imag * scale * levels), -levels, levels - 1)
        return (i + 1j * q) / levels
