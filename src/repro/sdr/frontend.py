"""SDR front-end signal path: mixing and decimation.

A direct-conversion receiver model: the real antenna voltage is mixed
with a complex local oscillator at the tuned frequency, low-pass
filtered, and decimated to the output sample rate.  Kept separate from
the RTL-SDR device model so alternative receivers can reuse it.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps


def mix_to_baseband(
    waveform: np.ndarray,
    sample_rate: float,
    center_frequency: float,
    oscillator_offset_hz: float = 0.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Complex-downconvert a real waveform.

    Parameters
    ----------
    waveform:
        Real-valued antenna voltage samples.
    sample_rate:
        Input sample rate in Hz.
    center_frequency:
        Frequency translated to DC.
    oscillator_offset_hz:
        LO error (e.g. crystal ppm offset); shifts the whole spectrum.
    """
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    n = np.arange(waveform.size)
    lo_freq = center_frequency + oscillator_offset_hz
    lo = np.exp(-2j * np.pi * lo_freq * n / sample_rate + 1j * phase)
    return waveform.astype(np.float64) * lo


def decimate(
    baseband: np.ndarray, factor: int, numtaps: int = 129
) -> np.ndarray:
    """Low-pass filter and decimate complex baseband by ``factor``.

    Uses a linear-phase FIR with cutoff at 80% of the output Nyquist so
    adjacent-band energy (e.g. the image of the VRM's second harmonic)
    is suppressed before downsampling.
    """
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    if factor == 1:
        return baseband
    cutoff = 0.8 / factor
    taps = sps.firwin(numtaps, cutoff)
    filtered = sps.fftconvolve(baseband, taps, mode="same")
    return filtered[::factor]
