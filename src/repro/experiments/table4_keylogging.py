"""Table IV: keylogging accuracy at three distances.

Character detection TPR/FPR plus word-length precision/recall at
10 cm (coil probe), 2 m (loop antenna) and 1.5 m through the wall, on
the Dell Precision laptop as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..chain import paper_tuned_frequency_hz, tuned_frequency_hz
from ..em.environment import (
    distance_scenario,
    near_field_scenario,
    through_wall_scenario,
)
from ..keylog.evaluate import KeylogExperiment, run_sessions
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION
from .common import ExperimentResult, register

#: Paper's Table IV for side-by-side reporting.
PAPER_TABLE_IV = {
    "10 cm": {"TPR": 1.00, "FPR": 0.03, "precision": 0.71, "recall": 1.00},
    "2 m": {"TPR": 0.99, "FPR": 0.018, "precision": 0.70, "recall": 1.00},
    "1.5 m (wall)": {"TPR": 0.97, "FPR": 0.007, "precision": 0.70, "recall": 0.98},
}


@register("table4")
def run(
    profile: SimProfile = KEYLOG,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    machine = DELL_PRECISION
    n_words = 25 if quick else 120
    n_sessions = 2 if quick else 3
    band = tuned_frequency_hz(machine, profile)
    physics = paper_tuned_frequency_hz(machine)
    setups = [
        ("10 cm", near_field_scenario(band, physics_frequency_hz=physics)),
        ("2 m", distance_scenario(2.0, band, physics_frequency_hz=physics)),
        (
            "1.5 m (wall)",
            through_wall_scenario(band, physics_frequency_hz=physics),
        ),
    ]
    # One independent trial per (distance, session) cell, fanned out
    # together so jobs > n_sessions still helps.
    experiments = [
        KeylogExperiment(
            machine=machine,
            scenario=scenario,
            profile=profile,
            seed=seed + 13 * session,
        )
        for _, scenario in setups
        for session in range(n_sessions)
    ]
    results = run_sessions(experiments, n_words=n_words)
    rows = []
    for i, (label, _) in enumerate(setups):
        cell = results[i * n_sessions : (i + 1) * n_sessions]
        scores = [
            (
                res.true_positive_rate,
                res.false_positive_rate,
                res.word_precision,
                res.word_recall,
            )
            for res in cell
        ]
        mean = np.mean(scores, axis=0)
        paper = PAPER_TABLE_IV[label]
        rows.append(
            {
                "distance": label,
                "char_TPR": float(mean[0]),
                "char_FPR": float(mean[1]),
                "word_precision": float(mean[2]),
                "word_recall": float(mean[3]),
                "paper_TPR": paper["TPR"],
                "paper_precision": paper["precision"],
            }
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Keylogging accuracy vs distance",
        rows=rows,
        notes=[
            "paper: TPR stays 97-100%, FPR a few percent and falling "
            "with distance; word precision ~70%, recall ~100%",
        ],
    )
