"""Figure 9: transmission-rate comparison against prior covert channels.

Each baseline's achievable rate comes from its mechanistic model (see
:mod:`repro.baselines`); our channel's rate is measured on the fastest
Table II configuration.  The paper's claim: >3x the fastest prior
physical covert channel (GSMem).
"""

from __future__ import annotations

import numpy as np

from ..baselines import all_baselines
from ..covert.evaluate import evaluate_link
from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from ..systems.laptops import MACBOOK_2015
from .common import ExperimentResult, register


@register("fig9")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
    target_ber: float = 0.01,
) -> ExperimentResult:
    n_bits = 120 if quick else 400
    mc_bits = 1500 if quick else 6000
    link = CovertLink(machine=MACBOOK_2015, profile=profile, seed=seed)
    ours = evaluate_link(link, bits_per_run=n_bits, n_runs=1 if quick else 3)
    rows = [
        {
            "channel": "This work (PMU-EM)",
            "rate_bps": ours.transmission_rate_bps,
            "mechanism": "VRM phase shedding OOK",
        }
    ]
    rates = {}
    for ch in all_baselines():
        rate = ch.max_rate(
            target_ber=target_ber,
            rng=np.random.default_rng(seed + 31),
            n_bits=mc_bits,
        )
        rates[ch.name] = rate
        rows.append(
            {"channel": ch.name, "rate_bps": rate, "mechanism": ch.citation}
        )
    fastest_baseline = max(rates.values())
    rows.append(
        {
            "channel": "speedup vs fastest prior",
            "rate_bps": ours.transmission_rate_bps / fastest_baseline,
            "mechanism": f"paper claims >3x over GSMem",
        }
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Transmission-rate comparison with the state of the art",
        rows=rows,
        notes=["rates in bits/s; log-scale bar chart in the paper"],
    )
