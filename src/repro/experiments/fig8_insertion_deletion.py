"""Figure 8: bit deletions and insertions from system activity.

Injects a much heavier interrupt population than normal and shows the
two error mechanisms the paper illustrates: long bursts suppress bit
edges (deletions), spurious bursts during sleeps create false edges
(insertions).  Also demonstrates the paper's countermeasure - the
single-error-correcting parity code - recovering the payload.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.coding import hamming_decode
from ..core.sync import strip_header
from ..covert.link import CovertLink
from ..osmodel.interrupts import InterruptProfile
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register

#: A deliberately hostile interrupt environment.
STORM = InterruptProfile(
    routine_rate_hz=1200.0,
    routine_duration_s=35e-6,
    heavy_rate_hz=25.0,
    heavy_duration_s=450e-6,
)


@register("fig8")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    n_bits = 96 if quick else 400
    rng = np.random.default_rng(seed + 100)
    payload = rng.integers(0, 2, size=n_bits)
    rows = []
    for label, machine in (
        ("normal interrupts", DELL_INSPIRON),
        ("interrupt storm", replace(DELL_INSPIRON, interrupt_profile=STORM)),
    ):
        link = CovertLink(machine=machine, profile=profile, seed=seed, use_ecc=True)
        result = link.run(payload)
        m = result.metrics
        # ECC recovery: strip the frame header and decode Hamming(7,4).
        recovered = strip_header(result.decode.bits, link.frame_format)
        if recovered is not None:
            data, corrected = hamming_decode(recovered)
            n = min(data.size, payload.size)
            payload_errors = int(np.count_nonzero(data[:n] != payload[:n]))
            payload_errors += payload.size - n
        else:
            corrected = 0
            payload_errors = payload.size
        rows.append(
            {
                "condition": label,
                "raw_BER": m.ber,
                "insertions": m.insertions,
                "deletions": m.deletions,
                "ecc_corrected": corrected,
                "payload_bit_errors": payload_errors,
            }
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Insertions/deletions under interrupt activity + ECC recovery",
        rows=rows,
        notes=[
            "paper: interrupts suppress or fake bit edges; deletion "
            "probability stays low (<0.2%) and simple parity coding "
            "repairs the stream",
        ],
    )
