"""Figure 2: spectrogram of the active/idle alternation micro-benchmark.

Runs the Figure 1 micro-benchmark through the analog chain and checks
the signature the paper shows: spectral spikes at the PMU frequency
(and its first harmonic) that appear during active periods and vanish
during idle ones, with spike timing matching t1/t2.
"""

from __future__ import annotations

import numpy as np

from ..chain import render_capture, tuned_frequency_hz
from ..dsp.stft import stft
from ..em.environment import near_field_scenario
from ..params import SimProfile, TINY
from ..power.workload import alternating_workload
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("fig2")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
    active_s: float = 500e-6,
    idle_s: float = 500e-6,
) -> ExperimentResult:
    machine = DELL_INSPIRON
    rng = np.random.default_rng(seed)
    n_cycles = 12 if quick else 60
    duration = profile.dilate((active_s + idle_s) * n_cycles)
    workload = alternating_workload(
        duration,
        profile.dilate(active_s),
        profile.dilate(idle_s),
        jitter=0.03,
        rng=rng,
    )
    scenario = near_field_scenario(
        tuned_frequency_hz(machine, profile),
        physics_frequency_hz=1.5 * machine.vrm_frequency_hz,
    )
    capture = render_capture(machine, workload, scenario, profile, rng)
    spec = stft(capture.samples, capture.sample_rate, fft_size=1024, hop=128)

    f0 = machine.vrm_frequency_hz / profile.total_freq_divisor
    rows = []
    for harmonic in (1, 2):
        offset = capture.baseband_offset(harmonic * f0)
        lane = spec.magnitudes[:, spec.nearest_bin(offset)]
        off_lane = spec.magnitudes[
            :, spec.nearest_bin(offset + 0.23 * f0)
        ]  # quiet reference bin between lines
        hi = float(np.percentile(lane, 85))
        lo = float(np.percentile(lane, 15))
        rows.append(
            {
                "component": f"{harmonic}*f0",
                "frequency_hz_paper_scale": harmonic * machine.vrm_frequency_hz,
                "spike_on_level": hi,
                "spike_off_level": lo,
                "on_off_contrast": hi / max(lo, 1e-12),
                "line_to_background": float(np.median(lane))
                / max(float(np.median(off_lane)), 1e-12),
            }
        )
    # Spike alternation period from the envelope autocorrelation.
    lane = spec.magnitudes[:, spec.nearest_bin(capture.baseband_offset(f0))]
    lane = lane - lane.mean()
    ac = np.correlate(lane, lane, mode="full")[lane.size - 1 :]
    min_lag = 4
    peak = min_lag + int(np.argmax(ac[min_lag : lane.size // 2]))
    frame_s = spec.hop / capture.sample_rate
    measured_period = peak * frame_s / profile.time_scale
    rows.append(
        {
            "component": "alternation",
            "frequency_hz_paper_scale": 1.0 / (active_s + idle_s),
            "spike_on_level": float("nan"),
            "spike_off_level": float("nan"),
            "on_off_contrast": float("nan"),
            "line_to_background": float("nan"),
            "measured_period_s_paper_scale": measured_period,
            "expected_period_s_paper_scale": active_s + idle_s,
        }
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Spectrogram spikes under active/idle alternation",
        rows=rows,
        notes=[
            "paper: strong spikes at ~970 kHz and first harmonic during "
            "active periods, absent when idle; spike length follows t1/t2",
        ],
    )
