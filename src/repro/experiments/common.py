"""Experiment harness shared infrastructure.

Every table/figure in the paper has a module here exposing

    run(profile: SimProfile = ..., quick: bool = True, seed: int = 0)
        -> ExperimentResult

``quick`` trades statistical weight (bits per run, number of runs,
words typed) for speed; benchmarks and tests use quick mode, the CLI's
``--full`` flag turns it off.  Results render as aligned text tables so
``python -m repro run <experiment>`` reproduces the paper's artifact
as terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exec.timing import format_timings


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    rows: List[dict]
    notes: List[str] = field(default_factory=list)
    #: Wall-clock seconds per chain stage (pmu/vrm/emission/...), as
    #: collected by the runner; includes time spent in worker processes.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Flattened signal-quality metrics collected during the run
    #: (see :mod:`repro.obs.metrics`); filled in by the runner.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: The run manifest (see :mod:`repro.obs.manifest`); filled in by
    #: the runner and written next to ``--output`` when requested.
    manifest: Optional[dict] = None

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        """Plain-text table in the paper's row order."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        cols = self.columns()
        if self.rows:
            formatted = [
                {c: _format(row.get(c, "")) for c in cols} for row in self.rows
            ]
            widths = {
                c: max(len(c), *(len(r[c]) for r in formatted)) for c in cols
            }
            header = "  ".join(c.ljust(widths[c]) for c in cols)
            lines.append(header)
            lines.append("-" * len(header))
            for r in formatted:
                lines.append("  ".join(r[c].ljust(widths[c]) for c in cols))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.timings:
            lines.append(f"stage timings: {format_timings(self.timings)}")
        return "\n".join(lines)


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100000:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


#: Registry of experiment id -> run callable, populated by the modules.
REGISTRY: Dict[str, Callable] = {}


def register(experiment_id: str):
    """Class/function decorator adding a run() callable to the registry."""

    def wrap(fn):
        REGISTRY[experiment_id] = fn
        return fn

    return wrap


def list_experiments() -> List[str]:
    """All registered experiment ids (import side effects included)."""
    from . import (  # noqa: F401  (imported for registration side effects)
        background_activity,
        countermeasures,
        fig2_spectrogram,
        fig4_envelope,
        fig5_edges,
        fig6_pulsewidth,
        fig7_threshold,
        fig8_insertion_deletion,
        fig9_comparison,
        fig11_keylog_spectrogram,
        fingerprint_websites,
        sec3_state_disable,
        table2_near_field,
        table3_distance,
        table4_keylogging,
    )

    return sorted(REGISTRY)


def get_experiment(experiment_id: str) -> Callable:
    list_experiments()
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
