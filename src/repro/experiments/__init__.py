"""Per-table / per-figure regeneration harness (see DESIGN.md index)."""

from .common import (
    REGISTRY,
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
)

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "get_experiment",
    "list_experiments",
    "register",
]
