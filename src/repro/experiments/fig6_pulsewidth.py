"""Figure 6: pulse-width (signalling time) distribution.

The distances between detected bit starts follow a positively skewed,
Rayleigh-like distribution; the receiver's signalling time is the
CDF=0.5 point.  This experiment fits the distribution and checks the
skew.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.timing import analyze_pulse_widths, signaling_time
from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("fig6")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    n_bits = 120 if quick else 600
    rng = np.random.default_rng(seed + 100)
    payload = rng.integers(0, 2, size=n_bits)
    link = CovertLink(machine=DELL_INSPIRON, profile=profile, seed=seed)
    result = link.run(payload)
    decode = result.decode
    pw = analyze_pulse_widths(decode.starts)
    frame_rate = decode.envelope.frame_rate
    widths_s = pw.widths / frame_rate / profile.time_scale
    # Kolmogorov-Smirnov distance of the fitted Rayleigh against the data.
    loc, scale = stats.rayleigh.fit(widths_s)
    ks = stats.kstest(widths_s, "rayleigh", args=(loc, scale)).statistic
    rows = [
        {"statistic": "n widths", "value": int(pw.widths.size)},
        {
            "statistic": "median width (paper-scale s)",
            "value": float(np.median(widths_s)),
        },
        {
            "statistic": "signaling time (paper-scale s)",
            "value": signaling_time(decode.starts) / frame_rate / profile.time_scale,
        },
        {"statistic": "skewness (positive expected)", "value": pw.skewness},
        {"statistic": "rayleigh scale (paper-scale s)", "value": float(scale)},
        {"statistic": "rayleigh KS distance", "value": float(ks)},
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Pulse-width distribution (Rayleigh-like, positive skew)",
        rows=rows,
        notes=[
            "paper: signal time has a Rayleigh-shaped, positively skewed "
            "distribution; median (CDF=0.5) is used as the signaling time",
        ],
    )
