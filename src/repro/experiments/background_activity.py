"""Section IV-C2: effect of resource-intensive background activity.

The paper reports that with a heavy competing process, holding the
Table II BER requires lowering the transmission rate by ~15% on
average (worst case 21%) on the Unix/macOS laptops.  This experiment
measures BER with background load at full rate and at a reduced rate.
"""

from __future__ import annotations

from ..covert.evaluate import evaluate_link
from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON, LENOVO_THINKPAD
from .common import ExperimentResult, register


@register("background")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    bits = 150 if quick else 400
    runs = 2 if quick else 5
    machines = [DELL_INSPIRON] if quick else [DELL_INSPIRON, LENOVO_THINKPAD]
    rows = []
    for machine in machines:
        for label, background, rate_scale in (
            ("quiet, full rate", False, 1.0),
            ("background, full rate", True, 1.0),
            ("background, rate -15%", True, 0.85),
        ):
            link = CovertLink(
                machine=machine,
                profile=profile,
                seed=seed,
                background=background,
                rate_scale=rate_scale,
            )
            ev = evaluate_link(link, bits_per_run=bits, n_runs=runs)
            rows.append(
                {
                    "laptop": machine.name,
                    "condition": label,
                    "BER": ev.ber,
                    "TR_bps": ev.transmission_rate_bps,
                    "IP": ev.insertion_probability,
                    "DP": ev.deletion_probability,
                }
            )
    return ExperimentResult(
        experiment_id="background",
        title="Transmission under resource-intensive background activity",
        rows=rows,
        notes=[
            "paper: ~15% TR reduction (worst case 21%) restores the "
            "quiet-system BER under heavy background load",
        ],
    )
