"""Figure 7: per-bit average-power distribution and threshold selection.

Verifies the bimodal structure (a zero-power lobe and a one-power lobe)
and that the adaptive threshold falls between the two modes.

Executed through the sweep engine as a receiver-only sweep over a
*single* capture: the default receiver reproduces the historical
Figure 7 rows bit-for-bit, and three alternative acquisition windows
ride along on the same analog chain (one PMU/VRM/emission/SDR pass for
all four), showing the threshold's stability across receiver settings.
"""

from __future__ import annotations

from ..params import SimProfile, TINY
from ..sweep import SweepSpec
from ..sweep.spec import profile_fields
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register

#: (label, receiver dict); the first entry is the paper's default
#: receiver and sources the headline rows.
RECEIVER_VARIANTS = [
    ("default", None),
    ("M=256 hop=16", {"acquisition": {"fft_size": 256, "hop": 16}}),
    ("M=512 hop=32", {"acquisition": {"fft_size": 512, "hop": 32}}),
    ("M=512 hop=64", {"acquisition": {"fft_size": 512, "hop": 64}}),
]


def sweep_spec(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> SweepSpec:
    n_bits = 120 if quick else 600
    return SweepSpec(
        name="fig7",
        base={
            "machine": DELL_INSPIRON.name,
            "profile": profile_fields(profile),
            "seed": seed,
            "bits": n_bits,
            "payload_seed": seed + 100,
        },
        zips=[
            {
                "label": [label for label, _ in RECEIVER_VARIANTS],
                "receiver": [receiver for _, receiver in RECEIVER_VARIANTS],
            }
        ],
    )


@register("fig7")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    from ..scenario.engine import run_components
    from ..scenario.ports.sweeps import fig7_components

    outcome = run_components(
        "fig7", fig7_components(profile, quick, seed), seed=seed, quick=quick
    )
    base = outcome.records[0]["result"]
    lo_mode, hi_mode = base["power_modes"]
    threshold = base["threshold"]
    rows = [
        {"quantity": "low-power mode (zeros)", "value": lo_mode},
        {"quantity": "high-power mode (ones)", "value": hi_mode},
        {"quantity": "selected threshold", "value": float(threshold)},
        {
            "quantity": "threshold between modes",
            "value": bool(lo_mode < threshold < hi_mode),
        },
        {
            "quantity": "mode separation (hi/lo)",
            "value": hi_mode / max(lo_mode, 1e-12),
        },
    ]
    for record in outcome.records[1:]:
        rows.append(
            {
                "quantity": f"threshold [{record['label']}]",
                "value": float(record["result"]["threshold"]),
            }
        )
    rows.append(
        {
            "quantity": "chain stage runs (plan, 4 receivers)",
            "value": int(outcome.metrics["sweep.plan.stage_runs"]),
        }
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Average-power distribution: two modes, midpoint threshold",
        rows=rows,
        notes=[
            "paper: two peaks correspond to bit-zero and bit-one power; "
            "the threshold is the midpoint between them",
            "all receiver variants decode one shared capture (the sweep "
            "plan runs the analog chain once)",
        ],
    )
