"""Figure 7: per-bit average-power distribution and threshold selection.

Verifies the bimodal structure (a zero-power lobe and a one-power lobe)
and that the adaptive threshold falls between the two modes.
"""

from __future__ import annotations

import numpy as np

from ..dsp.detection import histogram_modes
from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("fig7")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    n_bits = 120 if quick else 600
    rng = np.random.default_rng(seed + 100)
    payload = rng.integers(0, 2, size=n_bits)
    link = CovertLink(machine=DELL_INSPIRON, profile=profile, seed=seed)
    result = link.run(payload)
    decode = result.decode
    powers = decode.powers
    centers, counts, modes = histogram_modes(powers)
    threshold = decode.thresholds[0] if decode.thresholds else float("nan")
    lo_mode = float(min(modes[:2])) if modes.size >= 2 else float(modes[0])
    hi_mode = float(max(modes[:2])) if modes.size >= 2 else float(modes[0])
    rows = [
        {"quantity": "low-power mode (zeros)", "value": lo_mode},
        {"quantity": "high-power mode (ones)", "value": hi_mode},
        {"quantity": "selected threshold", "value": float(threshold)},
        {
            "quantity": "threshold between modes",
            "value": bool(lo_mode < threshold < hi_mode),
        },
        {
            "quantity": "mode separation (hi/lo)",
            "value": hi_mode / max(lo_mode, 1e-12),
        },
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="Average-power distribution: two modes, midpoint threshold",
        rows=rows,
        notes=[
            "paper: two peaks correspond to bit-zero and bit-one power; "
            "the threshold is the midpoint between them",
        ],
    )
