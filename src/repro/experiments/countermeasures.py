"""Section VI countermeasures, evaluated against the covert channel.

Not a paper table - the paper only *proposes* these mitigations - but
DESIGN.md lists them as the natural extension experiment: measure how
each proposal degrades the attacker.
"""

from __future__ import annotations

from ..countermeasures import VrmDithering, shielded_scenario
from ..covert.evaluate import evaluate_link
from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from .common import ExperimentResult, register


@register("countermeasures")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    bits = 100 if quick else 300
    runs = 1 if quick else 3
    rows = []

    def measure(label, link):
        ev = evaluate_link(link, bits_per_run=bits, n_runs=runs, label=label)
        rows.append(
            {
                "countermeasure": label,
                "BER": ev.ber,
                "IP": ev.insertion_probability,
                "DP": ev.deletion_probability,
                "channel_usable": ev.ber + ev.insertion_probability
                + ev.deletion_probability
                < 0.05,
            }
        )

    measure("none (baseline)", CovertLink(profile=profile, seed=seed))
    measure(
        "disable P+C states",
        CovertLink(
            profile=profile,
            seed=seed,
            allow_c_states=False,
            allow_p_states=False,
        ),
    )
    for spread in (0.02, 0.05):
        measure(
            f"VRM dithering +/-{spread:.0%}",
            CovertLink(
                profile=profile,
                seed=seed,
                vrm_dithering=VrmDithering(spread_rel=spread),
            ),
        )
    base = CovertLink(profile=profile, seed=seed)
    for db in (20, 40):
        measure(
            f"EMI shield {db} dB",
            CovertLink(
                profile=profile,
                seed=seed,
                scenario=shielded_scenario(base.scenario, db),
            ),
        )
    return ExperimentResult(
        experiment_id="countermeasures",
        title="Section VI countermeasures vs the covert channel",
        rows=rows,
        notes=[
            "paper proposes: disabling P/C-states (energy cost), "
            "randomising the PMU/VRM, and EMI shielding; all three are "
            "modeled here and all degrade or kill the channel",
        ],
    )
