"""Figure 5: the edge-detection convolution and detected bit starts.

Verifies that the +1/-1 derivative-kernel convolution peaks at bit
starting points: detected starts land within a small fraction of a
symbol period of the true transmitter bit boundaries.
"""

from __future__ import annotations

import numpy as np

from ..core.edges import edge_response
from ..covert.link import CovertLink
from ..covert.transmitter import frame_payload
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("fig5")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    n_bits = 40 if quick else 160
    rng = np.random.default_rng(seed + 100)
    payload = rng.integers(0, 2, size=n_bits)
    link = CovertLink(machine=DELL_INSPIRON, profile=profile, seed=seed)

    # Re-run the transmitter alone to know the true bit boundaries.
    tx_rng = np.random.default_rng(link.seed)
    tx_bits = frame_payload(payload, link.frame_format, link.use_ecc)
    transmitter = link.transmitter(tx_rng)
    activity = transmitter.transmit(tx_bits)
    true_starts_s = np.array([iv.start for iv in activity.intervals])

    result = link.run(payload)
    decode = result.decode
    env = decode.envelope
    frame_rate = env.frame_rate

    # Where do detected starts fall relative to the nearest true start?
    # The detector has a constant group delay (kernel alignment + STFT
    # warm-up), which is irrelevant to decoding - remove the median
    # signed offset before scoring.
    detected_s = decode.starts / frame_rate
    signed = np.array(
        [true_starts_s[np.argmin(np.abs(true_starts_s - d))] - d for d in detected_s]
    )
    signed -= np.median(signed)
    offsets = np.abs(signed)
    period_s = decode.period_frames / frame_rate
    kernel_len = max(int(decode.period_frames * 0.5), 2)
    response = edge_response(env, kernel_len)
    rows = [
        {
            "quantity": "detected starts",
            "value": int(decode.starts.size),
            "reference": int(tx_bits.size),
        },
        {
            "quantity": "median |offset| / symbol period",
            "value": float(np.median(offsets) / period_s),
            "reference": 0.25,
        },
        {
            "quantity": "starts within 0.3 period of a true edge",
            "value": float(np.mean(offsets < 0.3 * period_s)),
            "reference": 0.9,
        },
        {
            "quantity": "convolution peak-to-rms",
            "value": float(response.max() / max(response.std(), 1e-12)),
            "reference": 2.0,
        },
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="Edge-detection convolution alignment",
        rows=rows,
        notes=[
            "paper: convolution output peaks at the edges of Y[n], "
            "marking the starting point of each transmitted bit",
        ],
    )
