"""Table II: near-field covert-channel results on the six Table I laptops.

Executed through the sweep engine: the harness *is* a sweep (six
machines x N runs), expressed as a :class:`~repro.sweep.SweepSpec` whose
expansion reproduces the historical trial derivation exactly - per-run
seeds ``seed + 1000*(i+1)`` zipped against sequential payload draws from
the shared payload stream - so the reported rows are bit-identical to
the pre-engine ``evaluate_link`` harness.
"""

from __future__ import annotations

import numpy as np

from ..params import SimProfile, TINY
from ..sweep import SweepSpec, pooled_metrics
from ..sweep.spec import profile_fields
from ..systems.laptops import TABLE_I
from .common import ExperimentResult, register

#: The paper's Table II, for side-by-side reporting.
PAPER_TABLE_II = {
    "Dell Precision 7290": {"BER": 2e-3, "TR": 982, "IP": 0.0, "DP": 0.0},
    "MacBookPro-2015": {"BER": 3e-2, "TR": 3700, "IP": 0.0, "DP": 3e-3},
    "Dell Inspiron 15-3537": {"BER": 8e-3, "TR": 3162, "IP": 4.5e-3, "DP": 6.3e-3},
    "MacBookPro-2018": {"BER": 2.8e-2, "TR": 3640, "IP": 0.0, "DP": 2.9e-3},
    "Lenovo Thinkpad": {"BER": 5e-3, "TR": 3020, "IP": 0.0, "DP": 1e-3},
    "Sony Ultrabook": {"BER": 4e-3, "TR": 974, "IP": 0.0, "DP": 5e-3},
}


def sweep_spec(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> SweepSpec:
    """Table II as a sweep: machines (slow axis) x runs (fast axis)."""
    bits = 150 if quick else 400
    runs = 2 if quick else 5
    return SweepSpec(
        name="table2",
        base={
            "profile": profile_fields(profile),
            "bits": bits,
            "payload_seed": 1234,
        },
        grid={"machine": [machine.name for machine in TABLE_I]},
        zips=[
            {
                "seed": [seed + 1000 * (i + 1) for i in range(runs)],
                "payload_index": list(range(runs)),
            }
        ],
    )


@register("table2")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    from ..scenario.engine import run_components
    from ..scenario.ports.sweeps import table2_components

    outcome = run_components(
        "table2", table2_components(profile, quick, seed), seed=seed, quick=quick
    )
    rows = []
    for machine in TABLE_I:
        records = [
            r for r in outcome.records if r["trial"]["machine"] == machine.name
        ]
        pooled = pooled_metrics(records)
        rates = [r["result"]["tr_bps"] for r in records]
        paper = PAPER_TABLE_II[machine.name]
        rows.append(
            {
                "laptop": machine.name,
                "OS": machine.os_name,
                "BER": pooled.ber,
                "TR_bps": float(np.mean(rates)),
                "IP": pooled.insertion_probability,
                "DP": pooled.deletion_probability,
                "paper_BER": paper["BER"],
                "paper_TR": paper["TR"],
            }
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Near-field covert channel: BER/TR/IP/DP per laptop",
        rows=rows,
        notes=[
            "shape targets: Unix laptops 3-4 kbps, Windows laptops below "
            "1 kbps; BER in the 1e-3..3e-2 band; IP/DP at or below 1e-2",
        ],
    )
