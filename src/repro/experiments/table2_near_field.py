"""Table II: near-field covert-channel results on the six Table I laptops."""

from __future__ import annotations

from typing import Tuple

from ..covert.evaluate import evaluate_link
from ..covert.link import CovertLink
from ..exec.pool import parallel_map
from ..params import SimProfile, TINY
from ..systems.laptops import Machine, TABLE_I
from .common import ExperimentResult, register

#: The paper's Table II, for side-by-side reporting.
PAPER_TABLE_II = {
    "Dell Precision 7290": {"BER": 2e-3, "TR": 982, "IP": 0.0, "DP": 0.0},
    "MacBookPro-2015": {"BER": 3e-2, "TR": 3700, "IP": 0.0, "DP": 3e-3},
    "Dell Inspiron 15-3537": {"BER": 8e-3, "TR": 3162, "IP": 4.5e-3, "DP": 6.3e-3},
    "MacBookPro-2018": {"BER": 2.8e-2, "TR": 3640, "IP": 0.0, "DP": 2.9e-3},
    "Lenovo Thinkpad": {"BER": 5e-3, "TR": 3020, "IP": 0.0, "DP": 1e-3},
    "Sony Ultrabook": {"BER": 4e-3, "TR": 974, "IP": 0.0, "DP": 5e-3},
}


def _evaluate_row(task: Tuple[Machine, SimProfile, int, int, int]) -> dict:
    """One Table II row (one laptop); runs in a worker at ``jobs > 1``."""
    machine, profile, seed, bits, runs = task
    link = CovertLink(machine=machine, profile=profile, seed=seed)
    ev = evaluate_link(link, bits_per_run=bits, n_runs=runs)
    paper = PAPER_TABLE_II[machine.name]
    return {
        "laptop": machine.name,
        "OS": machine.os_name,
        "BER": ev.ber,
        "TR_bps": ev.transmission_rate_bps,
        "IP": ev.insertion_probability,
        "DP": ev.deletion_probability,
        "paper_BER": paper["BER"],
        "paper_TR": paper["TR"],
    }


@register("table2")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    bits = 150 if quick else 400
    runs = 2 if quick else 5
    rows = parallel_map(
        _evaluate_row,
        [(machine, profile, seed, bits, runs) for machine in TABLE_I],
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Near-field covert channel: BER/TR/IP/DP per laptop",
        rows=rows,
        notes=[
            "shape targets: Unix laptops 3-4 kbps, Windows laptops below "
            "1 kbps; BER in the 1e-3..3e-2 band; IP/DP at or below 1e-2",
        ],
    )
