"""Table III: distance and through-wall covert-channel results.

LoS rows use the 30 cm loop antenna at 1/1.5/2.5 m; the NLoS row is the
Figure 10 setup (1.5 m including a 35 cm wall, with appliance
interference).  Following the paper, the transmission rate is reduced
with distance to hold the BER roughly constant; the ``rate_scale``
values are the ratios of the paper's Table III TRs to its near-field
TR.

Executed through the sweep engine as two zipped axes - setups (slow) x
runs (fast) - reproducing the pre-engine per-run seed and payload
derivation exactly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..params import SimProfile, TINY
from ..sweep import SweepSpec, pooled_metrics
from ..sweep.spec import profile_fields
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register

#: (label, distance_m, rate_scale, paper_TR, paper_BER, through_wall)
TABLE_III_ROWS: List[Tuple[str, float, float, float, float, bool]] = [
    ("1 m (full rate)", 1.0, 1.00, 1872, 9e-3, False),
    ("1 m", 1.0, 0.59, 1645, 9e-4, False),
    ("1.5 m", 1.5, 0.46, 1454, 5e-3, False),
    ("2.5 m", 2.5, 0.35, 1110, 8e-3, False),
    ("1.5 m + wall (NLoS)", 1.5, 0.26, 821, 6e-3, True),
]


def sweep_spec(
    profile: SimProfile = TINY, quick: bool = True, seed: int = 0
) -> SweepSpec:
    bits = 150 if quick else 400
    runs = 2 if quick else 5
    setups = {
        "label": [row[0] for row in TABLE_III_ROWS],
        "scenario": [
            {
                "kind": "through_wall" if wall else "distance",
                "distance_m": dist,
            }
            for _, dist, _, _, _, wall in TABLE_III_ROWS
        ],
        "rate_scale": [row[2] for row in TABLE_III_ROWS],
    }
    return SweepSpec(
        name="table3",
        base={
            "machine": DELL_INSPIRON.name,
            "profile": profile_fields(profile),
            "bits": bits,
            "payload_seed": 1234,
        },
        zips=[
            setups,
            {
                "seed": [seed + 1000 * (i + 1) for i in range(runs)],
                "payload_index": list(range(runs)),
            },
        ],
    )


@register("table3")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    from ..scenario.engine import run_components
    from ..scenario.ports.sweeps import table3_components

    outcome = run_components(
        "table3", table3_components(profile, quick, seed), seed=seed, quick=quick
    )
    rows = []
    for label, _, _, paper_tr, paper_ber, _ in TABLE_III_ROWS:
        records = [r for r in outcome.records if r["label"] == label]
        pooled = pooled_metrics(records)
        rates = [r["result"]["tr_bps"] for r in records]
        rows.append(
            {
                "setup": label,
                "BER": pooled.ber,
                "TR_bps": float(np.mean(rates)),
                "IP": pooled.insertion_probability,
                "DP": pooled.deletion_probability,
                "paper_TR": paper_tr,
                "paper_BER": paper_ber,
            }
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Covert channel vs distance (loop antenna), incl. through-wall",
        rows=rows,
        notes=[
            "paper reduces TR with distance to hold BER nearly constant; "
            "the channel still works at 2.5 m and through a 35 cm wall",
        ],
    )
