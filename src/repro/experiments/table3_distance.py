"""Table III: distance and through-wall covert-channel results.

LoS rows use the 30 cm loop antenna at 1/1.5/2.5 m; the NLoS row is the
Figure 10 setup (1.5 m including a 35 cm wall, with appliance
interference).  Following the paper, the transmission rate is reduced
with distance to hold the BER roughly constant; the ``rate_scale``
values are the ratios of the paper's Table III TRs to its near-field
TR.
"""

from __future__ import annotations

from typing import List, Tuple

from ..chain import paper_tuned_frequency_hz, tuned_frequency_hz
from ..covert.evaluate import evaluate_link
from ..covert.link import CovertLink
from ..em.environment import distance_scenario, through_wall_scenario
from ..exec.pool import parallel_map
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register

#: (label, distance_m, rate_scale, paper_TR, paper_BER, through_wall)
TABLE_III_ROWS: List[Tuple[str, float, float, float, float, bool]] = [
    ("1 m (full rate)", 1.0, 1.00, 1872, 9e-3, False),
    ("1 m", 1.0, 0.59, 1645, 9e-4, False),
    ("1.5 m", 1.5, 0.46, 1454, 5e-3, False),
    ("2.5 m", 2.5, 0.35, 1110, 8e-3, False),
    ("1.5 m + wall (NLoS)", 1.5, 0.26, 821, 6e-3, True),
]


def _evaluate_row(task) -> dict:
    """One Table III row (one distance/wall setup)."""
    row_spec, profile, seed, bits, runs = task
    label, dist, rate_scale, paper_tr, paper_ber, wall = row_spec
    machine = DELL_INSPIRON
    band = tuned_frequency_hz(machine, profile)
    physics = paper_tuned_frequency_hz(machine)
    if wall:
        scenario = through_wall_scenario(
            band, distance_m=dist, physics_frequency_hz=physics
        )
    else:
        scenario = distance_scenario(dist, band, physics_frequency_hz=physics)
    link = CovertLink(
        machine=machine,
        profile=profile,
        seed=seed,
        scenario=scenario,
        rate_scale=rate_scale,
    )
    ev = evaluate_link(link, bits_per_run=bits, n_runs=runs, label=label)
    return {
        "setup": label,
        "BER": ev.ber,
        "TR_bps": ev.transmission_rate_bps,
        "IP": ev.insertion_probability,
        "DP": ev.deletion_probability,
        "paper_TR": paper_tr,
        "paper_BER": paper_ber,
    }


@register("table3")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    bits = 150 if quick else 400
    runs = 2 if quick else 5
    rows = parallel_map(
        _evaluate_row,
        [(spec, profile, seed, bits, runs) for spec in TABLE_III_ROWS],
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Covert channel vs distance (loop antenna), incl. through-wall",
        rows=rows,
        notes=[
            "paper reduces TR with distance to hold BER nearly constant; "
            "the channel still works at 2.5 m and through a 35 cm wall",
        ],
    )
