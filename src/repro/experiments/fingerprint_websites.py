"""Website fingerprinting through the PMU emission.

Not a paper table - Section III only sketches this use of the channel
("by measuring how long it takes to load a webpage, the attacker can
infer which website was loaded") - but it is the natural third
application and completes the attack-model coverage.
"""

from __future__ import annotations

from ..chain import paper_tuned_frequency_hz, tuned_frequency_hz
from ..em.environment import through_wall_scenario
from ..fingerprint import FingerprintExperiment, default_catalog
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION
from .common import ExperimentResult, register


@register("fingerprint")
def run(
    profile: SimProfile = KEYLOG,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    loads = 4 if quick else 10
    catalog = default_catalog()
    rows = []
    band = tuned_frequency_hz(DELL_PRECISION, profile)
    physics = paper_tuned_frequency_hz(DELL_PRECISION)
    setups = [("near field (10 cm)", None)]
    if not quick:
        setups.append(
            (
                "through wall (1.5 m)",
                through_wall_scenario(band, physics_frequency_hz=physics),
            )
        )
    for label, scenario in setups:
        exp = FingerprintExperiment(
            machine=DELL_PRECISION,
            scenario=scenario,
            profile=profile,
            catalog=catalog,
            seed=seed,
        )
        result = exp.run(loads_per_site=loads, train_fraction=0.5)
        rows.append(
            {
                "setup": label,
                "sites": len(catalog),
                "loads_per_site": loads,
                "accuracy": result.accuracy,
                "chance": 1.0 / len(catalog),
            }
        )
    return ExperimentResult(
        experiment_id="fingerprint",
        title="Website fingerprinting from activity-shape features",
        rows=rows,
        notes=[
            "Section III attack model (ii-b): activity durations leak "
            "which page is loading; accuracy far above chance with a "
            "handful of training loads",
        ],
    )
