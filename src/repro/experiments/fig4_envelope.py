"""Figure 4: the Eq. 1 envelope Y[n] with the transmitted bits overlaid.

Transmits a short known pattern and verifies the paper's observations:
the envelope rises sharply at every bit start (even zeros), and the
per-bit magnitudes separate ones from zeros.
"""

from __future__ import annotations

import numpy as np

from ..covert.link import CovertLink
from ..params import SimProfile, TINY
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("fig4")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    n_bits = 40 if quick else 160
    rng = np.random.default_rng(seed + 100)
    payload = rng.integers(0, 2, size=n_bits)
    link = CovertLink(machine=DELL_INSPIRON, profile=profile, seed=seed)
    result = link.run(payload)
    decode = result.decode
    powers = decode.powers
    bits = decode.bits
    ones = powers[bits == 1]
    zeros = powers[bits == 0]
    rows = [
        {
            "quantity": "per-bit average power (ones)",
            "mean": float(ones.mean()) if ones.size else float("nan"),
            "std": float(ones.std()) if ones.size else float("nan"),
            "count": int(ones.size),
        },
        {
            "quantity": "per-bit average power (zeros)",
            "mean": float(zeros.mean()) if zeros.size else float("nan"),
            "std": float(zeros.std()) if zeros.size else float("nan"),
            "count": int(zeros.size),
        },
        {
            "quantity": "one/zero separation",
            "mean": float(ones.mean() / max(zeros.mean(), 1e-12))
            if ones.size and zeros.size
            else float("nan"),
            "std": float("nan"),
            "count": int(powers.size),
        },
    ]
    # The "sharp increase at every bit" observation: envelope derivative
    # at detected starts vs elsewhere.
    y = decode.envelope.samples
    dy = np.diff(y, prepend=y[0])
    at_starts = []
    for s in decode.starts:
        lo, hi = max(s - 2, 0), min(s + 3, dy.size)
        if hi > lo:
            at_starts.append(dy[lo:hi].max())
    rows.append(
        {
            "quantity": "envelope rise at bit starts vs overall p95",
            "mean": float(np.median(at_starts)) if at_starts else float("nan"),
            "std": float(np.percentile(dy, 95)),
            "count": len(at_starts),
        }
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Eq.1 envelope magnitudes and bit overlay",
        rows=rows,
        notes=[
            "paper: sharp envelope increase at every transmitted bit "
            "(including zeros); one/zero magnitudes clearly separated",
        ],
    )
