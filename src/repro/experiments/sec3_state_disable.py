"""Section III: disabling P-states and/or C-states in the BIOS.

The paper's causal experiment: the side-channel needs at least one
high-power and one low-power state.  With C-states or P-states (but
not both) disabled the spikes still alternate; with *both* disabled the
spikes are stronger but continuously present, killing the modulation.
"""

from __future__ import annotations

import numpy as np

from ..chain import render_capture, tuned_frequency_hz
from ..em.environment import near_field_scenario
from ..core.acquisition import AcquisitionConfig, acquire
from ..params import SimProfile, TINY
from ..power.workload import alternating_workload
from ..systems.laptops import DELL_INSPIRON
from .common import ExperimentResult, register


@register("sec3")
def run(
    profile: SimProfile = TINY,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    machine = DELL_INSPIRON
    n_cycles = 6 if quick else 30
    # Half-period chosen above the OS governor's 10 ms sampling period so
    # P-state-only modulation (C-states disabled) can engage.
    period = 25e-3
    scenario = near_field_scenario(
        tuned_frequency_hz(machine, profile),
        physics_frequency_hz=1.5 * machine.vrm_frequency_hz,
    )
    configs = [
        ("C+P enabled", True, True),
        ("C disabled", False, True),
        ("P disabled", True, False),
        ("C+P disabled", False, False),
    ]
    rows = []
    for label, allow_c, allow_p in configs:
        rng = np.random.default_rng(seed)
        duration = profile.dilate(2 * period * n_cycles)
        workload = alternating_workload(
            duration, profile.dilate(period), profile.dilate(period), rng=rng
        )
        capture = render_capture(
            machine,
            workload,
            scenario,
            profile,
            rng,
            allow_c_states=allow_c,
            allow_p_states=allow_p,
        )
        envelope = acquire(
            capture,
            machine.vrm_frequency_hz / profile.total_freq_divisor,
            AcquisitionConfig(fft_size=256, hop=64),
        )
        y = envelope.samples
        hi = float(np.percentile(y, 85))
        lo = float(np.percentile(y, 15))
        rows.append(
            {
                "bios_config": label,
                "envelope_mean": float(y.mean()),
                "modulation_depth": (hi - lo) / max(hi + lo, 1e-12),
                "spikes_present": hi > 3 * lo,
            }
        )
    notes = [
        "paper: with either state family enabled the spikes alternate "
        "(channel works); with both disabled the emission is continuously "
        "strong (no modulation, channel gone)",
    ]
    return ExperimentResult(
        experiment_id="sec3",
        title="BIOS P/C-state disable experiment",
        rows=rows,
        notes=notes,
    )
