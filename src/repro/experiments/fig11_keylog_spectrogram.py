"""Figure 11: PMU emission while typing "can you hear me".

Types the paper's demo sentence and checks the spectrogram-level
signature: one distinguishable activity spike per character (spaces
included) and word grouping recoverable from inter-spike gaps.
"""

from __future__ import annotations

from ..keylog.detector import KeystrokeDetector, match_events
from ..keylog.evaluate import KeylogExperiment
from ..keylog.words import segment_words
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION
from .common import ExperimentResult, register

SENTENCE = "can you hear me"


@register("fig11")
def run(
    profile: SimProfile = KEYLOG,
    quick: bool = True,
    seed: int = 0,
    streaming: bool = False,
) -> ExperimentResult:
    exp = KeylogExperiment(machine=DELL_PRECISION, profile=profile, seed=seed)
    live = None
    if streaming:
        # Live mode: same capture replayed chunk by chunk through the
        # streaming detector (repro.stream); the finalised detection
        # matches the batch one, and each keystroke additionally gets a
        # detection-latency stamp from its online event.
        live = exp.run_streaming(SENTENCE)
        detection = live.result.detection
        # Typing is seed-deterministic, so regenerating the session
        # yields the exact keystrokes the streaming run detected.
        keystrokes, capture = exp.type_and_capture(SENTENCE)
    else:
        keystrokes, capture = exp.type_and_capture(SENTENCE)
        detector = KeystrokeDetector(
            DELL_PRECISION.vrm_frequency_hz / profile.total_freq_divisor,
            exp.detector_config,
        )
        detection = detector.detect(capture)
    tp, fp, fn = match_events(detection.events, keystrokes)
    seg = segment_words(detection.events)
    true_lengths = [len(w) for w in SENTENCE.split(" ")]
    rows = [
        {"quantity": "characters typed (incl. spaces)", "value": len(SENTENCE)},
        {"quantity": "spikes detected", "value": detection.count},
        {"quantity": "true positives", "value": tp},
        {"quantity": "false positives", "value": fp},
        {"quantity": "missed", "value": fn},
        {"quantity": "true word lengths", "value": str(true_lengths)},
        {"quantity": "recovered word lengths", "value": str(seg.word_lengths)},
    ]
    notes = [
        "paper: each character (including whitespace) produces a "
        "distinguishable spike; word grouping follows from gaps",
    ]
    if live is not None:
        rows.append(
            {
                "quantity": "online detection latency (mean ms)",
                "value": round(live.mean_detection_latency_s * 1e3, 1),
            }
        )
        rows.append(
            {
                "quantity": "online detection latency (max ms)",
                "value": round(live.max_detection_latency_s * 1e3, 1),
            }
        )
        notes.append(
            "streaming mode: detection ran live over "
            f"{live.stats.chunks_processed} chunk(s); latencies are "
            "keystroke-end to online-event emission"
        )
    return ExperimentResult(
        experiment_id="fig11",
        title='Keylogging spectrogram for "can you hear me"',
        rows=rows,
        notes=notes,
    )
