"""Figure 11: PMU emission while typing "can you hear me".

Types the paper's demo sentence and checks the spectrogram-level
signature: one distinguishable activity spike per character (spaces
included) and word grouping recoverable from inter-spike gaps.
"""

from __future__ import annotations

from ..keylog.detector import KeystrokeDetector, match_events
from ..keylog.evaluate import KeylogExperiment
from ..keylog.words import segment_words
from ..params import KEYLOG, SimProfile
from ..systems.laptops import DELL_PRECISION
from .common import ExperimentResult, register

SENTENCE = "can you hear me"


@register("fig11")
def run(
    profile: SimProfile = KEYLOG,
    quick: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    exp = KeylogExperiment(machine=DELL_PRECISION, profile=profile, seed=seed)
    keystrokes, capture = exp.type_and_capture(SENTENCE)
    detector = KeystrokeDetector(
        DELL_PRECISION.vrm_frequency_hz / profile.total_freq_divisor,
        exp.detector_config,
    )
    detection = detector.detect(capture)
    tp, fp, fn = match_events(detection.events, keystrokes)
    seg = segment_words(detection.events)
    true_lengths = [len(w) for w in SENTENCE.split(" ")]
    rows = [
        {"quantity": "characters typed (incl. spaces)", "value": len(SENTENCE)},
        {"quantity": "spikes detected", "value": detection.count},
        {"quantity": "true positives", "value": tp},
        {"quantity": "false positives", "value": fp},
        {"quantity": "missed", "value": fn},
        {"quantity": "true word lengths", "value": str(true_lengths)},
        {"quantity": "recovered word lengths", "value": str(seg.word_lengths)},
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title='Keylogging spectrogram for "can you hear me"',
        rows=rows,
        notes=[
            "paper: each character (including whitespace) produces a "
            "distinguishable spike; word grouping follows from gaps",
        ],
    )
