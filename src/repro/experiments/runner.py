"""Batch experiment runner used by the CLI and the bench harness."""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

from ..exec.context import execution_scope
from ..exec.timing import collect_timings, format_timings
from ..params import SimProfile
from .common import ExperimentResult, get_experiment, list_experiments


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    profile: Optional[SimProfile] = None,
    quick: bool = True,
    seed: int = 0,
    echo=print,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run a set of experiments and echo their rendered tables.

    ``experiment_ids`` of None runs everything in the registry.  Each
    experiment picks its own default profile when ``profile`` is None
    (keystroke experiments use frequency scaling, the rest use time
    dilation).

    ``jobs`` / ``use_cache`` / ``cache_dir`` override the execution
    configuration for the duration of the batch; None inherits the
    active config.  Trial fan-out happens *inside* each experiment
    (rows, repetitions, page loads), so progress still streams one
    experiment at a time and a fixed seed gives bit-identical tables at
    any worker count.
    """
    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if use_cache is not None:
        overrides["cache_enabled"] = use_cache
    if cache_dir is not None:
        overrides["cache_dir"] = cache_dir
    results: List[ExperimentResult] = []
    with execution_scope(**overrides):
        for eid in ids:
            fn = get_experiment(eid)
            started = time.perf_counter()
            with collect_timings() as timings:
                if profile is None:
                    result = fn(quick=quick, seed=seed)
                else:
                    result = fn(profile=profile, quick=quick, seed=seed)
            elapsed = time.perf_counter() - started
            result.timings = dict(timings)
            results.append(result)
            echo(result.render())
            summary = f"[{eid} finished in {elapsed:.1f}s"
            stage_total = sum(timings.values())
            if timings:
                summary += (
                    f"; {stage_total:.1f}s in chain stages "
                    f"({format_timings(timings)})"
                )
            echo(summary + "]")
            echo("")
    return results
