"""Batch experiment runner used by the CLI and the bench harness."""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

from ..params import SimProfile
from .common import ExperimentResult, get_experiment, list_experiments


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    profile: Optional[SimProfile] = None,
    quick: bool = True,
    seed: int = 0,
    echo=print,
) -> List[ExperimentResult]:
    """Run a set of experiments and echo their rendered tables.

    ``experiment_ids`` of None runs everything in the registry.  Each
    experiment picks its own default profile when ``profile`` is None
    (keystroke experiments use frequency scaling, the rest use time
    dilation).
    """
    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    results: List[ExperimentResult] = []
    for eid in ids:
        fn = get_experiment(eid)
        started = time.perf_counter()
        if profile is None:
            result = fn(quick=quick, seed=seed)
        else:
            result = fn(profile=profile, quick=quick, seed=seed)
        elapsed = time.perf_counter() - started
        results.append(result)
        echo(result.render())
        echo(f"[{eid} finished in {elapsed:.1f}s]")
        echo("")
    return results
