"""Batch experiment runner used by the CLI and the bench harness."""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import Iterable, List, Optional

from ..exec.context import execution_scope
from ..exec.timing import collect_timings, format_timings
from ..obs.metrics import flatten, metrics_scope
from ..obs.trace import trace_event, tracing_scope
from ..params import SimProfile
from .common import ExperimentResult, get_experiment, list_experiments


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    profile: Optional[SimProfile] = None,
    quick: bool = True,
    seed: int = 0,
    echo=print,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    trace: Optional[str] = None,
    manifest_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run a set of experiments and echo their rendered tables.

    ``experiment_ids`` of None runs everything in the registry.  Each
    experiment picks its own default profile when ``profile`` is None
    (keystroke experiments use frequency scaling, the rest use time
    dilation).

    ``jobs`` / ``use_cache`` / ``cache_dir`` override the execution
    configuration for the duration of the batch; None inherits the
    active config.  Trial fan-out happens *inside* each experiment
    (rows, repetitions, page loads), so progress still streams one
    experiment at a time and a fixed seed gives bit-identical tables at
    any worker count.

    ``trace`` names a JSONL file collecting structured stage/cache/pool
    events for the whole batch (:mod:`repro.obs.trace`).  Every result
    carries a run manifest and the flattened signal-quality metrics
    collected during its run; ``manifest_dir`` additionally writes each
    manifest as ``<dir>/<experiment>.manifest.json``.
    """
    from ..obs.manifest import build_manifest, manifest_path, write_manifest

    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if use_cache is not None:
        overrides["cache_enabled"] = use_cache
    if cache_dir is not None:
        overrides["cache_dir"] = cache_dir
    results: List[ExperimentResult] = []
    with ExitStack() as stack:
        stack.enter_context(execution_scope(**overrides))
        if trace is not None:
            stack.enter_context(tracing_scope(trace))
        for eid in ids:
            fn = get_experiment(eid)
            trace_event("experiment", phase="start", experiment=eid, seed=seed)
            started = time.perf_counter()
            with collect_timings() as timings, metrics_scope() as registry:
                if profile is None:
                    result = fn(quick=quick, seed=seed)
                else:
                    result = fn(profile=profile, quick=quick, seed=seed)
            elapsed = time.perf_counter() - started
            snapshot = registry.snapshot()
            result.timings = dict(timings)
            result.metrics = flatten(snapshot)
            result.manifest = build_manifest(
                experiment_id=eid,
                title=result.title,
                profile=profile,
                seed=seed,
                quick=quick,
                rows=result.rows,
                timings=result.timings,
                metrics_snapshot=snapshot,
                elapsed_s=elapsed,
            )
            if manifest_dir is not None:
                path = write_manifest(
                    result.manifest, manifest_path(manifest_dir, eid)
                )
                echo(f"[manifest written to {path}]")
            trace_event(
                "experiment",
                phase="end",
                experiment=eid,
                elapsed_s=round(elapsed, 3),
                n_rows=len(result.rows),
            )
            results.append(result)
            echo(result.render())
            summary = f"[{eid} finished in {elapsed:.1f}s"
            stage_total = sum(timings.values())
            if timings:
                summary += (
                    f"; {stage_total:.1f}s in chain stages "
                    f"({format_timings(timings)})"
                )
            echo(summary + "]")
            echo("")
    return results
