"""Report generation: experiment results to Markdown.

``python -m repro run ... --output report.md`` writes the regenerated
tables into a single Markdown document, so a full reproduction run
leaves a reviewable artifact next to EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence

from .experiments.common import ExperimentResult, _format


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a Markdown section with a pipe table."""
    lines = [f"## {result.experiment_id}: {result.title}", ""]
    cols = result.columns()
    if result.rows:
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in result.rows:
            lines.append(
                "| "
                + " | ".join(_format(row.get(c, "")) for c in cols)
                + " |"
            )
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
        lines.append("")
    footer = _reproducibility_footer(result)
    if footer:
        lines.append(footer)
        lines.append("")
    return "\n".join(lines)


def _reproducibility_footer(result: ExperimentResult) -> str:
    """One-line provenance trailer built from the run manifest.

    Deliberately limited to deterministic fields (no timings, no
    timestamps): reports must stay bit-identical across worker counts
    and reruns, the guarantee the determinism check diffs on.
    """
    manifest = result.manifest
    if not manifest:
        return ""
    parts = [
        f"config `{manifest.get('config_fingerprint', '?')}`",
        f"chain `{manifest.get('chain_schema', '?')}`",
        f"seed {manifest.get('seed', '?')}",
    ]
    if "result_fingerprint" in manifest:
        parts.append(f"rows `{manifest['result_fingerprint']}`")
    return "<sub>reproducibility: " + ", ".join(parts) + "</sub>"


def results_to_markdown(
    results: Sequence[ExperimentResult],
    title: str = "Reproduction report",
    preamble: str = "",
) -> str:
    """A full report document for a batch of experiments."""
    parts: List[str] = [f"# {title}", ""]
    if preamble:
        parts.extend([preamble, ""])
    for result in results:
        parts.append(result_to_markdown(result))
    return "\n".join(parts)


def write_report(
    results: Sequence[ExperimentResult],
    path: str,
    title: str = "Reproduction report",
    preamble: str = "",
) -> None:
    """Write the Markdown report to ``path``."""
    with open(path, "w") as handle:
        handle.write(results_to_markdown(results, title, preamble))
        handle.write("\n")
