"""USBee (Guri et al., 2016).

Turns a plain USB device into an RF transmitter by crafting data
patterns on the USB wires; a nearby SDR receives the emission.  The
rate limiter is USB's own timing: bulk transfers are scheduled per
1 ms USB frame, so the on-air keying granularity is the frame, and a
reliable bit needs on the order of one to two frames.  USBee reported
~80 bytes/s (640 bps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class USBeeChannel(BaselineChannel):
    """OOK over USB-frame-aligned emission bursts."""

    frame_s: float = 1e-3
    guard_s: float = 0.6e-3
    snr_per_sqrt_second: float = 150.0
    scheduling_jitter_prob: float = 0.006

    name: str = "USBee"
    citation: str = "Guri et al., 2016"

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        if bit_period < self.frame_s:
            # Sub-frame bits cannot be scheduled at all.
            return 0.5
        usable = bit_period - self.guard_s
        snr = self.snr_per_sqrt_second * np.sqrt(usable)
        bits = rng.integers(0, 2, size=n_bits)
        stat = bits * snr + rng.standard_normal(n_bits)
        decided = (stat > snr / 2).astype(int)
        # Host scheduling occasionally displaces a burst by a frame,
        # corrupting the bit regardless of SNR.
        displaced = rng.random(n_bits) < self.scheduling_jitter_prob
        decided[displaced] = rng.integers(0, 2, size=int(displaced.sum()))
        return float(np.mean(decided != bits))
