"""Baseline covert channels for the Figure 9 comparison.

The paper compares its transmission rate against seven prior physical
covert channels.  Rather than hard-coding the numbers from those
papers, each baseline here is a small *mechanistic* simulation of the
attack's rate-limiting physics (thermal time constants, USB frame
timing, DVFS transition latency, ...): random bits are pushed through
the channel model at a candidate rate, the resulting BER is measured,
and the achievable rate is found by bisection against a BER target.
The *ordering* and rough ratios of Figure 9 then emerge from the
mechanisms instead of being asserted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np


class BaselineChannel(ABC):
    """One prior-work covert channel.

    Subclasses implement :meth:`ber_at_rate`, a Monte-Carlo estimate of
    the bit-error rate when signalling at ``rate_bps``.
    """

    #: Short label used on the Figure 9 axis.
    name: str = "baseline"
    #: The attack's venue/year, for the report.
    citation: str = ""
    #: Search bracket for the achievable rate (bps).
    rate_bracket: tuple = (0.1, 20000.0)

    @abstractmethod
    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        """Measured BER when transmitting at ``rate_bps``."""

    def max_rate(
        self,
        target_ber: float = 0.01,
        rng: Optional[np.random.Generator] = None,
        n_bits: int = 2000,
        iterations: int = 18,
    ) -> float:
        """Highest rate with BER <= target, via bisection.

        BER is monotone (noisily) in rate for all these mechanisms, so
        bisection on a log scale converges quickly; residual Monte-Carlo
        noise only wiggles the answer by a few percent.
        """
        rng = rng if rng is not None else np.random.default_rng(17)
        lo, hi = self.rate_bracket
        if self.ber_at_rate(lo, rng, n_bits) > target_ber:
            return lo
        if self.ber_at_rate(hi, rng, n_bits) <= target_ber:
            return hi
        for _ in range(iterations):
            mid = float(np.sqrt(lo * hi))
            if self.ber_at_rate(mid, rng, n_bits) <= target_ber:
                lo = mid
            else:
                hi = mid
        return lo


def ook_monte_carlo(
    bits: np.ndarray,
    snr_amplitude: float,
    rng: np.random.Generator,
) -> float:
    """Generic on-off-keying detection: BER for a given per-bit SNR.

    The detection statistic for each bit is ``bit * snr + n`` with
    ``n ~ N(0, 1)``; the threshold sits midway.  This is the common
    final stage of several baselines once their mechanism has set the
    per-bit SNR.
    """
    stat = bits * snr_amplitude + rng.standard_normal(bits.size)
    decided = (stat > snr_amplitude / 2).astype(int)
    return float(np.mean(decided != bits))
