"""Acoustic covert mesh (Hanspach & Goetz, 2013).

Near-ultrasonic audio (~18-21 kHz) between laptop speakers and
microphones.  The rate limiter is the room: reverberation smears
symbols (tens of milliseconds of decay), and the usable band between
"adults can hear it" and "consumer speakers roll off" is only a few
kilohertz, shared with heavy environmental noise.  Reported covert
mesh rates are ~20 bits/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class AcousticChannel(BaselineChannel):
    """Near-ultrasonic FSK limited by reverberation ISI."""

    reverb_decay_s: float = 45e-3
    tone_snr_per_sqrt_second: float = 40.0
    ambient_burst_prob: float = 0.01

    name: str = "Acoustic"
    citation: str = "Hanspach & Goetz, 2013"
    rate_bracket: tuple = (0.5, 2000.0)

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        bits = rng.integers(0, 2, size=n_bits)
        snr = self.tone_snr_per_sqrt_second * np.sqrt(bit_period)
        # Reverberation: the previous symbol's tone is still ringing,
        # raising the wrong matched filter by a decayed copy.
        leak = float(np.exp(-bit_period / self.reverb_decay_s)) * snr
        prev_bits = np.concatenate([[0], bits[:-1]])
        s0 = (1 - bits) * snr + (1 - prev_bits) * leak + rng.standard_normal(n_bits)
        s1 = bits * snr + prev_bits * leak + rng.standard_normal(n_bits)
        decided = (s1 > s0).astype(int)
        burst = rng.random(n_bits) < self.ambient_burst_prob
        decided[burst] = rng.integers(0, 2, size=int(burst.sum()))
        return float(np.mean(decided != bits))
