"""DFS covert channel (Alagappan et al., VLSI-SoC 2017).

Covert communication through the processor's dynamic frequency
scaling: the sender modulates load so the governor raises or lowers the
clock; the receiver reads the observable frequency.  The rate limiter
is the governor's own response: frequency decisions happen on the
governor's sampling period (milliseconds to tens of milliseconds) and
transitions take additional time, so bits far faster than the governor
simply never reach the frequency register.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class DfsChannel(BaselineChannel):
    """Frequency-register signalling through the DVFS governor."""

    governor_period_s: float = 10e-3
    transition_s: float = 2e-3
    read_noise_rel: float = 0.08
    swing_rel: float = 0.5

    name: str = "DFS"
    citation: str = "Alagappan et al., VLSI-SoC 2017"
    rate_bracket: tuple = (0.5, 2000.0)

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        bits = rng.integers(0, 2, size=n_bits)
        # The governor only commits a frequency change at its sampling
        # edges; a bit shorter than (period + transition) may end before
        # the frequency ever moved.
        latency = self.governor_period_s * rng.random(n_bits) + self.transition_s
        reached = latency < bit_period
        levels = np.where(reached, bits * self.swing_rel, np.nan)
        # Unreached bits leave the previous frequency in place.
        prev = 0.0
        out = np.empty(n_bits)
        for i in range(n_bits):
            if np.isnan(levels[i]):
                out[i] = prev
            else:
                out[i] = levels[i]
                prev = levels[i]
        readings = out + self.read_noise_rel * rng.standard_normal(n_bits)
        decided = (readings > self.swing_rel / 2).astype(int)
        return float(np.mean(decided != bits))
