"""AirHopper (Guri et al., MALWARE 2014).

Video-cable FM radio exfiltration to a nearby mobile phone's FM
receiver.  Data is encoded as audio-band FM (tones / A-FSK over the FM
subcarrier); the rate limiter is the phone FM receiver's audio path:
tone symbols need several cycles plus settle time inside a ~20 kHz
audio bandwidth with heavy multipath/interference margin.  AirHopper
reported 104-480 bits/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class AirHopperChannel(BaselineChannel):
    """A-FSK over an FM audio channel.

    ``tone_snr_per_sqrt_second`` is the demodulated audio-tone SNR per
    unit integration; ``settle_s`` is the per-symbol dead time while the
    FM demodulator and tone detector settle (the dominant limiter).
    """

    tone_snr_per_sqrt_second: float = 125.0
    settle_s: float = 1.3e-3
    fading_prob: float = 0.012

    name: str = "AirHopper"
    citation: str = "Guri et al., MALWARE 2014"

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        usable = bit_period - self.settle_s
        if usable <= 0:
            return 0.5
        snr = self.tone_snr_per_sqrt_second * np.sqrt(usable)
        bits = rng.integers(0, 2, size=n_bits)
        # Binary FSK: two orthogonal tones; detection picks the larger
        # matched-filter output.  Fading occasionally wipes a symbol.
        s0 = (1 - bits) * snr + rng.standard_normal(n_bits)
        s1 = bits * snr + rng.standard_normal(n_bits)
        decided = (s1 > s0).astype(int)
        faded = rng.random(n_bits) < self.fading_prob
        decided[faded] = rng.integers(0, 2, size=int(faded.sum()))
        return float(np.mean(decided != bits))
