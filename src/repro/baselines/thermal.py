"""Thermal covert channel (Masti et al., USENIX Security 2015).

One core heats the package; another core (or an adjacent machine's
sensor) reads the temperature.  The rate limiter is brutal: the
package's thermal time constant is on the order of seconds, so the
"channel filter" is a slow RC low-pass and symbols blur into each
other (ISI) long before sensor noise matters.  Reported rates are a
few bits per second at best (1-8 bps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class ThermalChannel(BaselineChannel):
    """First-order thermal RC channel with sensor quantisation."""

    time_constant_s: float = 0.6
    swing_c: float = 8.0
    sensor_noise_c: float = 0.35
    sensor_resolution_c: float = 1.0

    name: str = "Thermal"
    citation: str = "Masti et al., USENIX Security 2015"
    rate_bracket: tuple = (0.05, 500.0)

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        bits = rng.integers(0, 2, size=n_bits)
        # Exact first-order response sampled at each bit end: the
        # temperature relaxes toward swing*bit with rate 1/tau.
        alpha = float(np.exp(-bit_period / self.time_constant_s))
        temp = np.empty(n_bits)
        t = 0.0
        targets = bits * self.swing_c
        for i in range(n_bits):
            t = targets[i] + (t - targets[i]) * alpha
            temp[i] = t
        readings = temp + self.sensor_noise_c * rng.standard_normal(n_bits)
        if self.sensor_resolution_c > 0:
            readings = (
                np.round(readings / self.sensor_resolution_c)
                * self.sensor_resolution_c
            )
        decided = (readings > self.swing_c / 2).astype(int)
        return float(np.mean(decided != bits))
