"""Prior-work covert channels modeled for the Figure 9 comparison."""

from .acoustic import AcousticChannel
from .airhopper import AirHopperChannel
from .base import BaselineChannel, ook_monte_carlo
from .dfs import DfsChannel
from .gsmem import GSMemChannel
from .powert import PowertChannel
from .thermal import ThermalChannel
from .usbee import USBeeChannel
from .usbfunthenna import FuntennaChannel


def all_baselines():
    """All Figure 9 comparators, fastest mechanism first."""
    return [
        GSMemChannel(),
        USBeeChannel(),
        AirHopperChannel(),
        PowertChannel(),
        DfsChannel(),
        FuntennaChannel(),
        AcousticChannel(),
        ThermalChannel(),
    ]


__all__ = [
    "AcousticChannel",
    "AirHopperChannel",
    "BaselineChannel",
    "DfsChannel",
    "FuntennaChannel",
    "GSMemChannel",
    "PowertChannel",
    "ThermalChannel",
    "USBeeChannel",
    "all_baselines",
    "ook_monte_carlo",
]
