"""Funtenna-style GPIO/peripheral RF channel (Cui, Black Hat 2015).

Software toggles a peripheral's GPIO/interface lines at RF-harmonic
rates, turning the traces into a crude transmitter.  The rate limiter
is the toggling interface itself: GPIO writes go through slow
peripheral buses, so the achievable keying rate is low and the emitted
power is tiny, forcing long integration per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class FuntennaChannel(BaselineChannel):
    """GPIO-toggling RF channel with slow peripheral-bus access."""

    gpio_write_s: float = 2e-3
    writes_per_bit: int = 4
    snr_per_sqrt_second: float = 28.0

    name: str = "Funtenna"
    citation: str = "Cui, Black Hat 2015"
    rate_bracket: tuple = (0.5, 2000.0)

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        setup = self.gpio_write_s * self.writes_per_bit
        usable = bit_period - setup
        if usable <= 0:
            return 0.5
        snr = self.snr_per_sqrt_second * np.sqrt(usable)
        bits = rng.integers(0, 2, size=n_bits)
        stat = bits * snr + rng.standard_normal(n_bits)
        decided = (stat > snr / 2).astype(int)
        return float(np.mean(decided != bits))
