"""GSMem (Guri et al., USENIX Security 2015).

Exfiltration from air-gapped computers over GSM frequencies: the
transmitter generates memory-bus activity bursts whose EM emission a
nearby (rootkitted) phone's baseband receives.  The rate limiter is the
receiver's narrow effective bandwidth and the weak bus emission: each
bit must integrate bus-burst energy long enough to clear the baseband's
noise floor.  GSMem reported up to 1000 bps with a dedicated receiver -
the fastest physical covert channel prior to the PMU channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class GSMemChannel(BaselineChannel):
    """Memory-bus EM burst channel.

    ``snr_per_sqrt_second`` calibrates the receiver: the amplitude SNR
    accumulated by integrating bus-burst emission for one second with
    the dedicated GSM receiver hardware at close range.
    """

    snr_per_sqrt_second: float = 158.0
    bus_contention_rel: float = 0.04

    name: str = "GSMem"
    citation: str = "Guri et al., USENIX Security 2015"

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        # Memory-bus bursts suffer contention from normal system traffic,
        # which both adds noise and dilutes the on-level.
        snr = self.snr_per_sqrt_second * np.sqrt(bit_period)
        snr *= 1.0 - self.bus_contention_rel
        bits = rng.integers(0, 2, size=n_bits)
        # Contending traffic occasionally lights up "off" bits.
        contended = rng.random(n_bits) < self.bus_contention_rel
        levels = np.where(contended & (bits == 0), 0.2, bits.astype(float))
        stat = levels * snr + rng.standard_normal(n_bits)
        decided = (stat > snr / 2).astype(int)
        return float(np.mean(decided != bits))
