"""POWERT channels (Khatamifard et al., HPCA 2019).

A *digital* covert channel through the shared power budget: the source
either burns power or idles; the sink infers the bit by timing its own
known workload, whose speed is modulated by the power-management unit's
budget allocation.  The rate limiter is indirection: the sink's
performance samples are noisy (scheduling, microarchitectural
variation) and the budget reallocation itself has a response time, so
each bit needs many performance samples.  The PMU-EM paper reports a
>20x rate advantage over POWERT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaselineChannel


@dataclass
class PowertChannel(BaselineChannel):
    """Power-budget modulation sensed through self-performance timing."""

    sample_s: float = 0.3e-3
    modulation_depth: float = 0.06
    performance_noise_rel: float = 0.05
    budget_response_s: float = 1.0e-3

    name: str = "POWERT"
    citation: str = "Khatamifard et al., HPCA 2019"

    def ber_at_rate(
        self, rate_bps: float, rng: np.random.Generator, n_bits: int = 2000
    ) -> float:
        bit_period = 1.0 / rate_bps
        usable = bit_period - self.budget_response_s
        if usable <= self.sample_s:
            return 0.5
        n_samples = int(usable / self.sample_s)
        bits = rng.integers(0, 2, size=n_bits)
        # Sink averages n_samples performance readings per bit; readings
        # shift by modulation_depth when the source burns the budget.
        means = bits * self.modulation_depth
        noise = self.performance_noise_rel / np.sqrt(n_samples)
        readings = means + noise * rng.standard_normal(n_bits)
        decided = (readings > self.modulation_depth / 2).astype(int)
        return float(np.mean(decided != bits))
