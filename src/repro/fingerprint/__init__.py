"""Website/application fingerprinting (Section III attack model ii-b)."""

from .classifier import NearestCentroidClassifier, accuracy, confusion_matrix
from .evaluate import FingerprintExperiment, FingerprintResult
from .features import (
    FEATURE_NAMES,
    ActivityFeatureExtractor,
    features_from_events,
)
from .workloads import LoadPhase, WebsiteProfile, default_catalog

__all__ = [
    "ActivityFeatureExtractor",
    "FEATURE_NAMES",
    "FingerprintExperiment",
    "FingerprintResult",
    "LoadPhase",
    "NearestCentroidClassifier",
    "WebsiteProfile",
    "accuracy",
    "confusion_matrix",
    "default_catalog",
    "features_from_events",
]
