"""Feature extraction from PMU-emission captures for fingerprinting.

The attacker sees only the VRM band energy over time.  From it we
extract the shape features the paper's attack model suggests: how long
the processor was active, in how many bursts, and how they are spread
over the load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..keylog.detector import DetectedEvent, KeylogDetectorConfig, KeystrokeDetector
from ..types import IQCapture

#: Names of the extracted features, in vector order.
FEATURE_NAMES = (
    "total_active_s",
    "load_duration_s",
    "n_bursts",
    "mean_burst_s",
    "max_burst_s",
    "burst_std_s",
    "mean_gap_s",
    "max_gap_s",
    "duty_cycle",
    "early_activity_fraction",
)


@dataclass(frozen=True)
class ActivityFeatureExtractor:
    """Turns a capture into a feature vector via burst detection.

    Burst detection reuses the Section V-C machinery (windowed band
    energy + bimodal threshold) but with a smaller validity floor:
    page-load bursts of interest start around 20 ms.
    """

    vrm_frequency_hz: float
    min_event_s: float = 20e-3
    merge_gap_s: float = 20e-3

    def detect(self, capture: IQCapture) -> List[DetectedEvent]:
        detector = KeystrokeDetector(
            self.vrm_frequency_hz,
            KeylogDetectorConfig(
                min_event_s=self.min_event_s, merge_gap_s=self.merge_gap_s
            ),
        )
        return detector.detect(capture).events

    def features(self, capture: IQCapture) -> np.ndarray:
        """The feature vector for one capture (see FEATURE_NAMES)."""
        events = self.detect(capture)
        return features_from_events(events, capture.duration)


def features_from_events(
    events: Sequence[DetectedEvent], capture_duration: float
) -> np.ndarray:
    """Shape features of a burst sequence (also used by tests)."""
    if not events:
        return np.zeros(len(FEATURE_NAMES))
    durations = np.array([ev.duration for ev in events])
    starts = np.array([ev.start for ev in events])
    ends = np.array([ev.end for ev in events])
    gaps = starts[1:] - ends[:-1] if len(events) > 1 else np.zeros(1)
    load_duration = float(ends[-1] - starts[0])
    total_active = float(durations.sum())
    midpoint = starts[0] + load_duration / 2
    early = durations[starts < midpoint].sum()
    return np.array(
        [
            total_active,
            load_duration,
            float(len(events)),
            float(durations.mean()),
            float(durations.max()),
            float(durations.std()),
            float(gaps.mean()),
            float(gaps.max()),
            total_active / max(load_duration, 1e-9),
            early / max(total_active, 1e-9),
        ]
    )
