"""A small classifier for fingerprint feature vectors.

Nearest-centroid over z-normalised features: simple, parameter-free,
and adequate for the well-separated page-load signatures the attack
model targets (the paper suggests standard supervised classifiers once
activity durations are recovered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class NearestCentroidClassifier:
    """Z-normalised nearest-centroid classification."""

    _labels: List[str] = field(default_factory=list)
    _centroids: Optional[np.ndarray] = None
    _mean: Optional[np.ndarray] = None
    _std: Optional[np.ndarray] = None

    def fit(
        self, features: np.ndarray, labels: Sequence[str]
    ) -> "NearestCentroidClassifier":
        """Fit centroids from a (n_samples, n_features) matrix."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[0] != len(labels):
            raise ValueError("features must be (n_samples, n_features)")
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std == 0] = 1.0
        normalised = (features - self._mean) / self._std
        self._labels = sorted(set(labels))
        centroids = []
        label_arr = np.array(labels)
        for label in self._labels:
            centroids.append(normalised[label_arr == label].mean(axis=0))
        self._centroids = np.array(centroids)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._centroids is not None

    def predict(self, features: np.ndarray) -> List[str]:
        """Predict labels for a (n_samples, n_features) matrix."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        normalised = (features - self._mean) / self._std
        distances = np.linalg.norm(
            normalised[:, None, :] - self._centroids[None, :, :], axis=2
        )
        return [self._labels[i] for i in np.argmin(distances, axis=1)]

    def predict_one(self, feature_vector: np.ndarray) -> str:
        return self.predict(feature_vector[None, :])[0]


def confusion_matrix(
    true_labels: Sequence[str], predicted: Sequence[str]
) -> Tuple[np.ndarray, List[str]]:
    """Confusion counts and the label order used."""
    labels = sorted(set(true_labels) | set(predicted))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(true_labels, predicted):
        matrix[index[t], index[p]] += 1
    return matrix, labels


def accuracy(true_labels: Sequence[str], predicted: Sequence[str]) -> float:
    if not true_labels:
        return 0.0
    hits = sum(1 for t, p in zip(true_labels, predicted) if t == p)
    return hits / len(true_labels)
